//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `arg in strategy` bindings, range strategies over primitive numbers,
//! tuple strategies, `collection::vec`, and `prop_assert!` /
//! `prop_assert_eq!`. Each property runs [`CASES`] deterministic cases
//! (seeded from the test's module path) — no shrinking; a failing case
//! panics with the seed so it reproduces exactly on re-run.

use std::ops::{Range, RangeInclusive};

/// Cases per property. Real proptest defaults to 256; 64 keeps the suite
/// fast while still exploring the space (cases are deterministic anyway).
pub const CASES: usize = 64;

/// Deterministic splitmix64 stream seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` via widening multiply.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty strategy range");
        loop {
            let c = lo + rng.below((hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(c) {
                return c;
            }
        }
    }
}

macro_rules! strategy_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
strategy_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!($($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5, z in 0.0f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..2.5).contains(&z));
        }

        #[test]
        fn vec_of_tuples(items in collection::vec((0u8..3, 0.0f64..1.0), 1..20)) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            for (a, b) in &items {
                prop_assert!(*a < 3);
                prop_assert!((0.0..1.0).contains(b));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new("x");
        let mut b = TestRng::new("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Offline vendored stand-in for `rand`.
//!
//! Implements exactly the surface this workspace uses: `rngs::SmallRng`
//! (xoshiro256++, seeded via splitmix64 like the real crate on 64-bit
//! targets), `SeedableRng::seed_from_u64`, and the `RngExt` extension
//! methods `random::<f64>()` / `random_range(Range)` / `random_bool(p)`.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable from the "standard" distribution (`random::<T>()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `random_range`.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Map a raw u64 onto `[0, n)` without modulo bias (Lemire's method).
#[inline]
fn bounded(raw: u64, n: u64) -> u64 {
    ((raw as u128 * n as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (rand's `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's `SmallRng` on
    /// 64-bit platforms. Fast, small, and plenty for simulation draws.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for external persistence
        /// (checkpointing). Restoring via [`SmallRng::from_state`] continues
        /// the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by
        /// [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.random::<f64>();
            assert_eq!(x, b.random::<f64>());
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(0usize..13);
            assert_eq!(n, b.random_range(0usize..13));
            assert!(n < 13);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_covers_bounds_eventually() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

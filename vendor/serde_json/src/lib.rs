//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree. Output is
//! deterministic: object keys keep insertion order (derive emits fields in
//! declaration order) and numbers use Rust's shortest round-trip float
//! formatting with a `.0` suffix for integral floats.

pub use serde::Error;
pub use serde::Value;

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON encoding (2-space indent, like real serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::deserialize(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // Real serde_json refuses NaN/inf; emitting null keeps output valid.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{x:.1}"));
    } else {
        let _ = std::fmt::Write::write_fmt(out, format_args!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.eat_lit("null", Value::Null),
            b't' => self.eat_lit("true", Value::Bool(true)),
            b'f' => self.eat_lit("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's output; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("wc".into())),
            ("n".into(), Value::U64(16)),
            ("rate".into(), Value::F64(1.5)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"name\": \"wc\""));
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_vec_of_ints() {
        let v: Vec<i32> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(v, vec![1, -2, 3]);
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}

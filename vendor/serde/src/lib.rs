//! Offline vendored stand-in for `serde`.
//!
//! The build container has no network access and no cached registry, so the
//! workspace vendors a minimal, dependency-free implementation of the serde
//! surface this repository actually uses. Instead of serde's
//! visitor/`Serializer` architecture, [`Serialize`] produces a [`Value`]
//! tree directly and [`Deserialize`] consumes one; `serde_json` (also
//! vendored) renders and parses that tree. The `derive` feature re-exports
//! the matching derive macros from the vendored `serde_derive`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A JSON-shaped value tree: the interchange format between [`Serialize`]
/// implementations and concrete formats.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so serialized output is deterministic and matches field
/// declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (negative numbers).
    I64(i64),
    /// Unsigned integer (all non-negative integers parse/serialize here).
    U64(u64),
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in an object (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a key in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(m) => {
                if let Some(slot) = m.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    m.push((key.to_string(), value));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
    }
}

/// Error produced by deserialization (and re-used by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived `Deserialize` impls: find a field in an object.
pub fn get_field<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Map keys, rendered as JSON object keys (strings) — matching
/// serde_json's behaviour for integer-keyed maps.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::new("invalid integer map key"))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
ser_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::new("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::new("expected number"))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::new("expected array"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::new("expected array"))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::new("array length mismatch"))
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::new("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::deserialize(val)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::new("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::deserialize(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::new("expected array"))?;
                if a.len() != $len {
                    return Err(Error::new("tuple length mismatch"));
                }
                Ok(($($t::deserialize(&a[$n])?,)+))
            }
        }
    )+};
}
de_tuple! {
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D),
    (5; 0 A, 1 B, 2 C, 3 D, 4 E),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(u64::deserialize(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(String::deserialize(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(
            Vec::<i32>::deserialize(&vec![1i32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_accessors() {
        let mut v = Value::Object(vec![("a".into(), Value::U64(1))]);
        v.set("b", Value::Bool(true));
        v.set("a", Value::U64(2));
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert!(v.get("c").is_none());
    }
}

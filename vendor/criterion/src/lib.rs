//! Offline vendored stand-in for `criterion`.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface and the
//! `criterion_group!` / `criterion_main!` macros this workspace's benches
//! use. Measurement is deliberately simple: per benchmark it calibrates an
//! iteration count to fill `measurement_time / sample_size`, takes
//! `sample_size` samples, and reports the median ns/iter. `--test` (as
//! passed by `cargo bench -- --test`) runs each benchmark exactly once as
//! a smoke test; positional CLI args act as substring filters.

use std::time::{Duration, Instant};

pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Apply `cargo bench` CLI arguments (called by `criterion_group!`).
    pub fn configure_from_args(&mut self) {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo or harness conventions may pass; ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                a if a.starts_with('-') => {}
                filter => self.filters.push(filter.to_string()),
            }
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            c: self,
            name,
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.c.filters.is_empty() && !self.c.filters.iter().any(|p| full.contains(p.as_str())) {
            return self;
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.c.test_mode {
            f(&mut b);
            eprintln!("  {full}: ok (test mode)");
            return self;
        }
        // Warm-up / calibration: run with growing iteration counts until the
        // warm-up budget is spent, tracking the latest per-iter estimate.
        let warm_up = self.c.warm_up_time.max(Duration::from_millis(50));
        let start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while start.elapsed() < warm_up {
            f(&mut b);
            per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
            b.iters = (b.iters * 2).min(1 << 20);
        }
        // Sampling: split the measurement budget over sample_size samples.
        let per_sample = self.c.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        eprintln!(
            "  {full}: median {} [{} .. {}] ({} iters x {} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            iters,
            self.sample_size
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `std::hint::black_box`, re-exported under criterion's historical path.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            c.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs_closure() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2)
                .bench_function("inc", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }
}

//! Offline vendored `serde_derive`: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` implemented directly on the `proc_macro` token
//! API (the container has no `syn`/`quote`).
//!
//! The generated impls target the vendored value-tree `serde`:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::deserialize(&serde::Value) -> Result<Self, serde::Error>`.
//!
//! Encoding matches real serde's externally-tagged JSON defaults:
//! named structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit variants → `"Name"`, data variants →
//! `{"Name": ...}`. Supported field attributes: `#[serde(skip)]` and
//! `#[serde(default)]`. Generics are not supported (nothing in this
//! workspace derives on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    flags: Flags,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

/// Consume any `#[...]` attributes at `i`, accumulating serde flags.
fn parse_attrs(toks: &[TokenTree], i: &mut usize) -> Flags {
    let mut flags = Flags::default();
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = toks.get(*i + 1) else {
            break;
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            match flag.to_string().as_str() {
                                "skip" => flags.skip = true,
                                "default" => flags.default = true,
                                other => {
                                    panic!("vendored serde_derive: unsupported #[serde({other})]")
                                }
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    flags
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consume type tokens until a top-level `,` (which is also consumed) or
/// the end of the token list. Tracks `<`/`>` nesting; delimited groups are
/// single atomic token trees so only angle brackets need counting.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn ident_str(name: &str) -> String {
    name.strip_prefix("r#").unwrap_or(name).to_string()
}

/// Parse the fields of a `{ ... }` group into named fields.
fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let flags = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!(
                "vendored serde_derive: expected field name, got {:?}",
                toks.get(i)
            );
        };
        i += 1; // name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        fields.push(Field {
            name: name.to_string(),
            flags,
        });
    }
    fields
}

/// Count the fields of a `( ... )` tuple-field group.
fn count_tuple_fields(g: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        let _ = parse_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(g: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        let _ = parse_attrs(&toks, &mut i); // e.g. #[default]
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!(
                "vendored serde_derive: expected variant name, got {:?}",
                toks.get(i)
            );
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = parse_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic types are not supported ({name})");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("vendored serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("vendored serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive on `{other}` items"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_HEADER: &str =
    "#[automatically_derived]\n#[allow(clippy::all, unused_mut, unused_variables)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "{IMPL_HEADER}impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n"
    );
    match &item.shape {
        Shape::NamedStruct(fields) => {
            out.push_str("        let mut __m: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.flags.skip) {
                let key = ident_str(&f.name);
                let fname = &f.name;
                let _ = writeln!(
                    out,
                    "        __m.push((String::from(\"{key}\"), serde::Serialize::to_value(&self.{fname})));"
                );
            }
            out.push_str("        serde::Value::Object(__m)\n");
        }
        Shape::TupleStruct(1) => {
            out.push_str("        serde::Serialize::to_value(&self.0)\n");
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            let _ = writeln!(
                out,
                "        serde::Value::Array(vec![{}])",
                elems.join(", ")
            );
        }
        Shape::UnitStruct => {
            out.push_str("        serde::Value::Null\n");
        }
        Shape::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let vname = &v.name;
                let key = ident_str(vname);
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            out,
                            "            Self::{vname} => serde::Value::String(String::from(\"{key}\")),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        let _ = writeln!(
                            out,
                            "            Self::{vname}({}) => serde::Value::Object(vec![(String::from(\"{key}\"), {inner})]),",
                            binds.join(", ")
                        );
                    }
                    VariantKind::Named(fields) => {
                        let pat: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.flags.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let elems: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.flags.skip)
                            .map(|f| {
                                format!(
                                    "(String::from(\"{}\"), serde::Serialize::to_value({}))",
                                    ident_str(&f.name),
                                    f.name
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            out,
                            "            Self::{vname} {{ {} }} => serde::Value::Object(vec![(String::from(\"{key}\"), serde::Value::Object(vec![{}]))]),",
                            pat.join(", "),
                            elems.join(", ")
                        );
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

/// `match serde::get_field(...) { ... }` expression for one named field.
fn de_field_expr(map_var: &str, f: &Field, lenient_default: bool) -> String {
    if f.flags.skip {
        return "Default::default()".to_string();
    }
    let key = ident_str(&f.name);
    if f.flags.default || lenient_default {
        format!(
            "match serde::get_field({map_var}, \"{key}\") {{ Some(__x) => serde::Deserialize::deserialize(__x)?, None => Default::default() }}"
        )
    } else {
        format!(
            "serde::Deserialize::deserialize(serde::get_field({map_var}, \"{key}\").unwrap_or(&serde::Value::Null))?"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "{IMPL_HEADER}impl serde::Deserialize for {name} {{\n    fn deserialize(__v: &serde::Value) -> Result<Self, serde::Error> {{\n"
    );
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let _ = writeln!(
                out,
                "        let __m = __v.as_object().ok_or_else(|| serde::Error::new(\"expected object for {name}\"))?;"
            );
            out.push_str("        Ok(Self {\n");
            for f in fields {
                let _ = writeln!(
                    out,
                    "            {}: {},",
                    f.name,
                    de_field_expr("__m", f, false)
                );
            }
            out.push_str("        })\n");
        }
        Shape::TupleStruct(1) => {
            out.push_str("        Ok(Self(serde::Deserialize::deserialize(__v)?))\n");
        }
        Shape::TupleStruct(n) => {
            let _ = writeln!(
                out,
                "        let __a = __v.as_array().ok_or_else(|| serde::Error::new(\"expected array for {name}\"))?;"
            );
            let _ = writeln!(
                out,
                "        if __a.len() != {n} {{ return Err(serde::Error::new(\"wrong tuple length for {name}\")); }}"
            );
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::deserialize(&__a[{k}])?"))
                .collect();
            let _ = writeln!(out, "        Ok(Self({}))", elems.join(", "));
        }
        Shape::UnitStruct => {
            out.push_str("        let _ = __v;\n        Ok(Self)\n");
        }
        Shape::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let datas: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            out.push_str("        match __v {\n");
            if !units.is_empty() {
                out.push_str("            serde::Value::String(__s) => match __s.as_str() {\n");
                for v in &units {
                    let _ = writeln!(
                        out,
                        "                \"{}\" => Ok(Self::{}),",
                        ident_str(&v.name),
                        v.name
                    );
                }
                let _ = writeln!(
                    out,
                    "                __other => Err(serde::Error::new(format!(\"unknown variant {{__other}} of {name}\"))),"
                );
                out.push_str("            },\n");
            }
            if !datas.is_empty() {
                out.push_str(
                    "            serde::Value::Object(__pairs) if __pairs.len() == 1 => {\n",
                );
                out.push_str("                let (__k, __inner) = &__pairs[0];\n");
                out.push_str("                match __k.as_str() {\n");
                for v in &datas {
                    let vname = &v.name;
                    let key = ident_str(vname);
                    match &v.kind {
                        VariantKind::Tuple(1) => {
                            let _ = writeln!(
                                out,
                                "                    \"{key}\" => Ok(Self::{vname}(serde::Deserialize::deserialize(__inner)?)),"
                            );
                        }
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::deserialize(&__a[{k}])?"))
                                .collect();
                            let _ = writeln!(
                                out,
                                "                    \"{key}\" => {{ let __a = __inner.as_array().ok_or_else(|| serde::Error::new(\"expected array for {name}::{vname}\"))?; if __a.len() != {n} {{ return Err(serde::Error::new(\"wrong arity for {name}::{vname}\")); }} Ok(Self::{vname}({})) }}",
                                elems.join(", ")
                            );
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{}: {}", f.name, de_field_expr("__m", f, false)))
                                .collect();
                            let _ = writeln!(
                                out,
                                "                    \"{key}\" => {{ let __m = __inner.as_object().ok_or_else(|| serde::Error::new(\"expected object for {name}::{vname}\"))?; Ok(Self::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            );
                        }
                        VariantKind::Unit => unreachable!(),
                    }
                }
                let _ = writeln!(
                    out,
                    "                    __other => Err(serde::Error::new(format!(\"unknown variant {{__other}} of {name}\"))),"
                );
                out.push_str("                }\n            }\n");
            }
            let _ = writeln!(
                out,
                "            _ => Err(serde::Error::new(\"expected variant of {name}\")),"
            );
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("vendored serde_derive: generated Deserialize impl failed to parse")
}

set terminal pngcairo size 900,540
set output 'fig1.png'
set title "Fig. 1 — map throughput vs map slots per node"
set xlabel "map slots per node"
set ylabel "map throughput (MB/s)"
set key outside right
set grid
plot 'fig1.dat' using 1:2 with linespoints title "Terasort", \
     'fig1.dat' using 1:3 with linespoints title "TermVector", \
     'fig1.dat' using 1:4 with linespoints title "Grep"

set terminal pngcairo size 900,540
set output 'fig6.png'
set title "Fig. 6 — HistogramRatings throughput vs input size"
set xlabel "input size (GB)"
set ylabel "job throughput (MB/s)"
set key outside right
set grid
plot 'fig6.dat' using 1:2 with linespoints title "HadoopV1", \
     'fig6.dat' using 1:3 with linespoints title "YARN", \
     'fig6.dat' using 1:4 with linespoints title "SMapReduce"

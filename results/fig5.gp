set terminal pngcairo size 900,540
set output 'fig5.png'
set title "Fig. 5 — HistogramRatings map time vs configured map slots"
set xlabel "initial map slots per node"
set ylabel "map time (s)"
set key outside right
set grid
plot 'fig5.dat' using 1:2 with linespoints title "HadoopV1", \
     'fig5.dat' using 1:3 with linespoints title "YARN", \
     'fig5.dat' using 1:4 with linespoints title "SMapReduce"

//! The storage behind a telemetry session: two preallocated ring buffers
//! (spans, counter samples) and a growable list of rich instant events.
//!
//! Ring writes never allocate: the buffers are reserved at construction
//! and overwrite the oldest entries on overflow (keeping the most recent
//! window, which is what you want when profiling the tail of a long run).

use crate::ArgValue;

/// One completed span ("X" phase in Chrome trace terms).
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    pub cat: &'static str,
    pub name: &'static str,
    /// Wall-clock start, µs since the session epoch.
    pub start_us: u64,
    pub dur_us: u64,
    /// Simulated time at the span's start (ms).
    pub sim_ms: u64,
}

/// One sample of a named counter series ("C" phase).
#[derive(Debug, Clone, Copy)]
pub struct CounterSample {
    pub name: &'static str,
    pub ts_us: u64,
    pub sim_ms: u64,
    pub value: f64,
}

/// A rich instant event ("i" phase) with key/value arguments.
#[derive(Debug, Clone)]
pub struct InstantEvent {
    pub cat: &'static str,
    pub name: &'static str,
    pub ts_us: u64,
    pub sim_ms: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Fixed-capacity overwrite-oldest ring.
struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest entry once the ring is full.
    head: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        let cap = cap.max(1);
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Entries oldest → newest.
    fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    fn memory_bytes(&self) -> usize {
        self.cap * std::mem::size_of::<T>()
    }
}

pub struct Recorder {
    spans: Ring<SpanRecord>,
    counters: Ring<CounterSample>,
    instants: Vec<InstantEvent>,
}

impl Recorder {
    pub fn new(span_capacity: usize, counter_capacity: usize) -> Recorder {
        Recorder {
            spans: Ring::new(span_capacity),
            counters: Ring::new(counter_capacity),
            instants: Vec::new(),
        }
    }

    #[inline]
    pub fn push_span(&mut self, s: SpanRecord) {
        self.spans.push(s);
    }

    #[inline]
    pub fn push_counter(&mut self, c: CounterSample) {
        self.counters.push(c);
    }

    pub fn push_instant(&mut self, e: InstantEvent) {
        self.instants.push(e);
    }

    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    pub fn counter_samples(&self) -> impl Iterator<Item = &CounterSample> {
        self.counters.iter()
    }

    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    pub fn instant_count(&self) -> usize {
        self.instants.len()
    }

    pub fn dropped_spans(&self) -> u64 {
        self.spans.dropped
    }

    pub fn dropped_counter_samples(&self) -> u64 {
        self.counters.dropped
    }

    pub fn memory_bytes(&self) -> usize {
        self.spans.memory_bytes()
            + self.counters.memory_bytes()
            + self.instants.capacity() * std::mem::size_of::<InstantEvent>()
            + self
                .instants
                .iter()
                .map(|e| e.args.capacity() * std::mem::size_of::<(&str, ArgValue)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_orders_oldest_to_newest_after_wrap() {
        let mut r: Ring<u64> = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        let v: Vec<u64> = r.iter().copied().collect();
        assert_eq!(v, vec![2, 3, 4]);
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn ring_never_reallocates() {
        let mut r: Ring<u64> = Ring::new(8);
        let ptr = r.buf.as_ptr();
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.buf.as_ptr(), ptr);
        assert_eq!(r.buf.capacity(), 8);
    }
}

//! Self-contained HTML/SVG run dashboard.
//!
//! [`render_dashboard`] turns a [`DashboardSpec`] — a renderer-agnostic
//! description of one run: per-node task lanes, time-series charts,
//! decision markers, a counter table and the auditor's verdict — into a
//! single HTML string with inline CSS and inline SVG. No scripts, no
//! external assets, no dependencies: the file opens identically from a
//! results directory, a CI artifact store or an email attachment.
//!
//! The spec is deliberately generic (floats and strings, no simulator
//! types) so this crate stays below `mapreduce` in the dependency order;
//! the harness owns the conversion from a `RunReport`.

// The renderer is one long HTML template; explicit "\n" at the end of
// write! calls keeps multi-line tag bodies readable in-place.
#![allow(clippy::write_with_newline)]

use std::fmt::Write;

/// What a [`TaskSpan`] was doing: the three phases of the paper's
/// map / shuffle / reduce pipeline, each with its own colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Map,
    Shuffle,
    Reduce,
}

impl SpanKind {
    fn color(self) -> &'static str {
        match self {
            SpanKind::Map => "#3b82c4",
            SpanKind::Shuffle => "#8e6bb8",
            SpanKind::Reduce => "#d97a32",
        }
    }

    fn label(self) -> &'static str {
        match self {
            SpanKind::Map => "map",
            SpanKind::Shuffle => "shuffle",
            SpanKind::Reduce => "reduce",
        }
    }
}

/// How a [`TaskSpan`] ended. Anything but `Completed` is drawn with a red
/// outline and an ✕ glyph so kills and crashes stand out in the Gantt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    Completed,
    /// Killed by the scheduler (sibling won a speculative race, slot
    /// reclaimed) or by a node crash.
    Killed,
    /// Injected attempt failure.
    Failed,
    /// Finished after a sibling had already completed the task.
    Discarded,
    /// Still in flight when the log ends (shouldn't happen in a full run).
    Running,
}

impl SpanOutcome {
    fn is_bad(self) -> bool {
        !matches!(self, SpanOutcome::Completed)
    }

    fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::Killed => "killed",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Discarded => "discarded",
            SpanOutcome::Running => "running",
        }
    }
}

/// One task attempt's occupancy of a lane, in simulated seconds.
#[derive(Debug, Clone)]
pub struct TaskSpan {
    pub start: f64,
    pub end: f64,
    pub kind: SpanKind,
    /// Tooltip label, e.g. `"j0 m17"`.
    pub label: String,
    pub outcome: SpanOutcome,
}

/// One horizontal band of the Gantt — in practice, one node.
#[derive(Debug, Clone, Default)]
pub struct Lane {
    pub label: String,
    pub spans: Vec<TaskSpan>,
    /// `(start, end)` windows in which the node was down; drawn as a grey
    /// backdrop behind the spans.
    pub outages: Vec<(f64, f64)>,
}

/// One named polyline of a [`Chart`].
#[derive(Debug, Clone, Default)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

/// A small multi-series line chart sharing the Gantt's time axis.
#[derive(Debug, Clone, Default)]
pub struct Chart {
    pub title: String,
    /// Y-axis unit label, e.g. `"slots"` or `"fraction"`.
    pub unit: String,
    /// Fixed Y ceiling; when `None` the data's maximum is used.
    pub y_max: Option<f64>,
    /// Overlay the spec's decision markers on this chart too.
    pub show_markers: bool,
    pub series: Vec<Series>,
}

/// A vertical time marker — one policy decision record, with the signals
/// that drove it (`f`, `Rs`, `Rm`, …) in the tooltip label.
#[derive(Debug, Clone)]
pub struct Marker {
    pub t: f64,
    pub label: String,
}

/// Everything one dashboard shows. All times are simulated seconds.
#[derive(Debug, Clone, Default)]
pub struct DashboardSpec {
    pub title: String,
    pub subtitle: String,
    /// End of the time axis; extended automatically if any content
    /// reaches past it.
    pub t_end: f64,
    pub lanes: Vec<Lane>,
    pub markers: Vec<Marker>,
    pub charts: Vec<Chart>,
    /// `(name, formatted value)` rows of the counter table.
    pub counters: Vec<(String, String)>,
    /// Whether the invariant auditor ran on this report.
    pub audited: bool,
    /// Auditor violations (empty + `audited` ⇒ a green "passed" badge).
    pub violations: Vec<String>,
}

const WIDTH: f64 = 1180.0;
const GUTTER: f64 = 120.0;
const RIGHT_PAD: f64 = 16.0;
const LANE_H: f64 = 24.0;
const AXIS_H: f64 = 22.0;
const CHART_PLOT_H: f64 = 110.0;

/// Render `spec` as one self-contained HTML document.
pub fn render_dashboard(spec: &DashboardSpec) -> String {
    let t_end = effective_t_end(spec);
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n<title>");
    out.push_str(&esc(&spec.title));
    out.push_str("</title>\n<style>\n");
    out.push_str(CSS);
    out.push_str("</style>\n</head>\n<body>\n<h1>");
    out.push_str(&esc(&spec.title));
    out.push_str("</h1>\n<p class=\"subtitle\">");
    out.push_str(&esc(&spec.subtitle));
    out.push_str("</p>\n");

    render_audit_badge(&mut out, spec);

    if !spec.lanes.is_empty() {
        out.push_str("<h2>Task timeline</h2>\n");
        render_legend(&mut out);
        render_gantt(&mut out, spec, t_end);
    }
    for chart in &spec.charts {
        let _ = write!(out, "<h2>{}</h2>\n", esc(&chart.title));
        render_chart(&mut out, chart, &spec.markers, t_end);
    }
    if !spec.counters.is_empty() {
        out.push_str("<h2>Counters</h2>\n");
        render_counters(&mut out, &spec.counters);
    }
    out.push_str("</body>\n</html>\n");
    out
}

const CSS: &str = "\
body{font-family:-apple-system,'Segoe UI',Helvetica,Arial,sans-serif;\
margin:24px;color:#24292f;background:#ffffff;}\n\
h1{font-size:20px;margin-bottom:2px;}\n\
h2{font-size:15px;margin:22px 0 6px;border-bottom:1px solid #d0d7de;\
padding-bottom:3px;}\n\
.subtitle{color:#57606a;margin-top:0;font-size:13px;}\n\
.badge{display:inline-block;padding:3px 10px;border-radius:12px;\
font-size:12px;font-weight:600;}\n\
.badge.pass{background:#dafbe1;color:#116329;}\n\
.badge.fail{background:#ffebe9;color:#a40e26;}\n\
.badge.skip{background:#eaeef2;color:#57606a;}\n\
.legend{font-size:12px;color:#57606a;margin-bottom:4px;}\n\
.legend .swatch{display:inline-block;width:10px;height:10px;\
border-radius:2px;margin:0 4px 0 12px;vertical-align:middle;}\n\
svg{display:block;max-width:100%;}\n\
table.counters{border-collapse:collapse;font-size:12px;}\n\
table.counters td,table.counters th{border:1px solid #d0d7de;\
padding:3px 10px;}\n\
table.counters td.num{text-align:right;font-variant-numeric:tabular-nums;}\n\
ul.violations{color:#a40e26;font-size:13px;}\n";

fn render_audit_badge(out: &mut String, spec: &DashboardSpec) {
    if !spec.audited {
        out.push_str("<p><span class=\"badge skip\">auditor: not run</span></p>\n");
    } else if spec.violations.is_empty() {
        out.push_str("<p><span class=\"badge pass\">auditor: all invariants hold</span></p>\n");
    } else {
        let _ = write!(
            out,
            "<p><span class=\"badge fail\">auditor: {} violation(s)</span></p>\n<ul class=\"violations\">\n",
            spec.violations.len()
        );
        for v in &spec.violations {
            let _ = write!(out, "<li>{}</li>\n", esc(v));
        }
        out.push_str("</ul>\n");
    }
}

fn render_legend(out: &mut String) {
    out.push_str("<div class=\"legend\">");
    for kind in [SpanKind::Map, SpanKind::Shuffle, SpanKind::Reduce] {
        let _ = write!(
            out,
            "<span class=\"swatch\" style=\"background:{}\"></span>{}",
            kind.color(),
            kind.label()
        );
    }
    out.push_str(
        "<span class=\"swatch\" style=\"background:#fff;border:1.5px solid #c0392b\"></span>\
         killed / failed\
         <span class=\"swatch\" style=\"background:#e3e6ea\"></span>node down\
         <span class=\"swatch\" style=\"background:#c0392b;width:2px\"></span>\
         policy decision</div>\n",
    );
}

fn x_of(t: f64, t_end: f64) -> f64 {
    GUTTER + (t / t_end) * (WIDTH - GUTTER - RIGHT_PAD)
}

fn render_gantt(out: &mut String, spec: &DashboardSpec, t_end: f64) {
    let height = AXIS_H + spec.lanes.len() as f64 * LANE_H + 6.0;
    let _ = write!(
        out,
        "<svg class=\"gantt\" width=\"{WIDTH}\" height=\"{}\" \
         viewBox=\"0 0 {WIDTH} {}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        fx(height),
        fx(height)
    );
    render_time_axis(out, t_end, height);

    for (i, lane) in spec.lanes.iter().enumerate() {
        let y = AXIS_H + i as f64 * LANE_H;
        // Row separator + label.
        let _ = write!(
            out,
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#eaeef2\"/>\n",
            fx(GUTTER),
            fx(y + LANE_H),
            fx(WIDTH - RIGHT_PAD),
            fx(y + LANE_H)
        );
        let _ = write!(
            out,
            "<text x=\"{}\" y=\"{}\" font-size=\"11\" fill=\"#57606a\" \
             text-anchor=\"end\">{}</text>\n",
            fx(GUTTER - 6.0),
            fx(y + LANE_H / 2.0 + 4.0),
            esc(&lane.label)
        );
        for &(a, b) in &lane.outages {
            let (x0, x1) = (x_of(a, t_end), x_of(b.max(a), t_end));
            let _ = write!(
                out,
                "<rect class=\"outage\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" \
                 fill=\"#e3e6ea\"><title>down {}–{} s</title></rect>\n",
                fx(x0),
                fx(y + 1.0),
                fx((x1 - x0).max(1.0)),
                fx(LANE_H - 2.0),
                fnum(a),
                fnum(b)
            );
        }
        for span in &lane.spans {
            let (x0, x1) = (
                x_of(span.start, t_end),
                x_of(span.end.max(span.start), t_end),
            );
            let stroke = if span.outcome.is_bad() {
                " stroke=\"#c0392b\" stroke-width=\"1.5\" fill-opacity=\"0.45\""
            } else {
                ""
            };
            let _ = write!(
                out,
                "<rect class=\"task\" x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" \
                 rx=\"1.5\" fill=\"{}\"{}><title>{} {} {}–{} s ({})</title></rect>\n",
                fx(x0),
                fx(y + 4.0),
                fx((x1 - x0).max(1.5)),
                fx(LANE_H - 8.0),
                span.kind.color(),
                stroke,
                esc(&span.label),
                span.kind.label(),
                fnum(span.start),
                fnum(span.end),
                span.outcome.label()
            );
            if span.outcome.is_bad() {
                let _ = write!(
                    out,
                    "<text x=\"{}\" y=\"{}\" font-size=\"10\" fill=\"#c0392b\" \
                     text-anchor=\"middle\">\u{2715}</text>\n",
                    fx(x1),
                    fx(y + LANE_H / 2.0 + 3.5)
                );
            }
        }
    }
    render_markers(out, &spec.markers, t_end, AXIS_H - 6.0, height - 6.0);
    out.push_str("</svg>\n");
}

fn render_time_axis(out: &mut String, t_end: f64, height: f64) {
    let step = nice_step(t_end / 8.0);
    let mut t = 0.0;
    while t <= t_end + step * 1e-9 {
        let x = x_of(t, t_end);
        let _ = write!(
            out,
            "<line x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" stroke=\"#f0f2f4\"/>\n\
             <text x=\"{0}\" y=\"{3}\" font-size=\"10\" fill=\"#8c959f\" \
             text-anchor=\"middle\">{4}</text>\n",
            fx(x),
            fx(AXIS_H - 6.0),
            fx(height - 6.0),
            fx(AXIS_H - 10.0),
            fnum(t)
        );
        t += step;
    }
    let _ = write!(
        out,
        "<text x=\"{}\" y=\"{}\" font-size=\"10\" fill=\"#8c959f\">s</text>\n",
        fx(WIDTH - RIGHT_PAD + 4.0),
        fx(AXIS_H - 10.0)
    );
}

fn render_markers(out: &mut String, markers: &[Marker], t_end: f64, y0: f64, y1: f64) {
    for m in markers {
        let x = x_of(m.t, t_end);
        let _ = write!(
            out,
            "<line class=\"marker\" x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" \
             stroke=\"#c0392b\" stroke-dasharray=\"3 2\" opacity=\"0.8\">\
             <title>{3}</title></line>\n",
            fx(x),
            fx(y0),
            fx(y1),
            esc(&m.label)
        );
    }
}

const PALETTE: [&str; 8] = [
    "#3b82c4", "#d97a32", "#4ca464", "#b8524f", "#8e6bb8", "#718096", "#c2a33a", "#3aa6a6",
];

fn render_chart(out: &mut String, chart: &Chart, markers: &[Marker], t_end: f64) {
    let data_max = chart
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, v)| v))
        .fold(0.0_f64, f64::max);
    let y_max = chart.y_max.unwrap_or(data_max).max(1e-9);
    let height = AXIS_H + CHART_PLOT_H + 14.0;
    let y_of = |v: f64| AXIS_H + CHART_PLOT_H * (1.0 - (v / y_max).clamp(0.0, 1.0));

    // Legend (only worth the ink with ≥2 series).
    if chart.series.len() > 1 {
        out.push_str("<div class=\"legend\">");
        for (i, s) in chart.series.iter().enumerate() {
            let _ = write!(
                out,
                "<span class=\"swatch\" style=\"background:{}\"></span>{}",
                PALETTE[i % PALETTE.len()],
                esc(&s.label)
            );
        }
        out.push_str("</div>\n");
    }

    let _ = write!(
        out,
        "<svg class=\"chart\" width=\"{WIDTH}\" height=\"{}\" \
         viewBox=\"0 0 {WIDTH} {}\" xmlns=\"http://www.w3.org/2000/svg\">\n",
        fx(height),
        fx(height)
    );
    render_time_axis(out, t_end, height);
    // Y gridlines at 0, ½, 1 × y_max.
    for frac in [0.0, 0.5, 1.0] {
        let y = y_of(y_max * frac);
        let _ = write!(
            out,
            "<line x1=\"{0}\" y1=\"{1}\" x2=\"{2}\" y2=\"{1}\" stroke=\"#eaeef2\"/>\n\
             <text x=\"{3}\" y=\"{4}\" font-size=\"10\" fill=\"#8c959f\" \
             text-anchor=\"end\">{5} {6}</text>\n",
            fx(GUTTER),
            fx(y),
            fx(WIDTH - RIGHT_PAD),
            fx(GUTTER - 6.0),
            fx(y + 3.5),
            fnum(y_max * frac),
            esc(&chart.unit)
        );
    }
    for (i, s) in chart.series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let mut d = String::with_capacity(s.points.len() * 12);
        for &(t, v) in &s.points {
            if !d.is_empty() {
                d.push(' ');
            }
            let _ = write!(d, "{},{}", fx(x_of(t, t_end)), fx(y_of(v)));
        }
        let _ = write!(
            out,
            "<polyline class=\"series\" points=\"{}\" fill=\"none\" stroke=\"{}\" \
             stroke-width=\"1.5\"><title>{}</title></polyline>\n",
            d,
            PALETTE[i % PALETTE.len()],
            esc(&s.label)
        );
    }
    if chart.show_markers {
        render_markers(out, markers, t_end, AXIS_H - 6.0, AXIS_H + CHART_PLOT_H);
    }
    out.push_str("</svg>\n");
}

fn render_counters(out: &mut String, counters: &[(String, String)]) {
    out.push_str("<table class=\"counters\">\n<tr><th>counter</th><th>value</th></tr>\n");
    for (name, value) in counters {
        let _ = write!(
            out,
            "<tr><td>{}</td><td class=\"num\">{}</td></tr>\n",
            esc(name),
            esc(value)
        );
    }
    out.push_str("</table>\n");
}

fn effective_t_end(spec: &DashboardSpec) -> f64 {
    let mut t = spec.t_end;
    for lane in &spec.lanes {
        for s in &lane.spans {
            t = t.max(s.end);
        }
        for &(_, b) in &lane.outages {
            t = t.max(b);
        }
    }
    for m in &spec.markers {
        t = t.max(m.t);
    }
    for c in &spec.charts {
        for s in &c.series {
            if let Some(&(last, _)) = s.points.last() {
                t = t.max(last);
            }
        }
    }
    t.max(1e-9)
}

/// Round `raw` up to a 1/2/5 × 10ᵏ tick step.
fn nice_step(raw: f64) -> f64 {
    let raw = raw.max(1e-9);
    let mag = 10f64.powf(raw.log10().floor());
    let frac = raw / mag;
    let nice = if frac <= 1.0 {
        1.0
    } else if frac <= 2.0 {
        2.0
    } else if frac <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// SVG coordinate: one decimal is plenty and keeps files small.
fn fx(v: f64) -> String {
    format!("{:.1}", v)
}

/// Human-facing number: trim to at most two decimals, drop trailing zeros.
fn fnum(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{:.2}", v);
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> DashboardSpec {
        DashboardSpec {
            title: "fig1 — Terasort 30 GB".into(),
            subtitle: "HadoopV1, seed 42".into(),
            t_end: 100.0,
            lanes: vec![
                Lane {
                    label: "node 0".into(),
                    spans: vec![
                        TaskSpan {
                            start: 0.0,
                            end: 40.0,
                            kind: SpanKind::Map,
                            label: "j0 m0".into(),
                            outcome: SpanOutcome::Completed,
                        },
                        TaskSpan {
                            start: 45.0,
                            end: 90.0,
                            kind: SpanKind::Reduce,
                            label: "j0 r0".into(),
                            outcome: SpanOutcome::Completed,
                        },
                    ],
                    outages: vec![],
                },
                Lane {
                    label: "node 1".into(),
                    spans: vec![TaskSpan {
                        start: 5.0,
                        end: 30.0,
                        kind: SpanKind::Map,
                        label: "j0 m1".into(),
                        outcome: SpanOutcome::Killed,
                    }],
                    outages: vec![(30.0, 60.0)],
                },
            ],
            markers: vec![
                Marker {
                    t: 20.0,
                    label: "f=1.20 Rs=0.40 → +2 map".into(),
                },
                Marker {
                    t: 60.0,
                    label: "f=0.80 Rm=0.10 → +1 reduce".into(),
                },
            ],
            charts: vec![Chart {
                title: "Slot occupancy".into(),
                unit: "slots".into(),
                y_max: None,
                show_markers: true,
                series: vec![
                    Series {
                        label: "map".into(),
                        points: vec![(0.0, 2.0), (50.0, 4.0), (100.0, 0.0)],
                    },
                    Series {
                        label: "reduce".into(),
                        points: vec![(0.0, 0.0), (50.0, 2.0), (100.0, 1.0)],
                    },
                ],
            }],
            counters: vec![
                ("TOTAL_LAUNCHED_MAPS".into(), "128".into()),
                ("HDFS_BYTES_READ_MB".into(), "30720".into()),
            ],
            audited: true,
            violations: vec![],
        }
    }

    #[test]
    fn renders_all_sections() {
        let html = render_dashboard(&demo_spec());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg class=\"gantt\""));
        assert!(html.contains("<svg class=\"chart\""));
        assert!(html.contains("node 0"));
        assert!(html.contains("node 1"));
        assert!(html.contains("TOTAL_LAUNCHED_MAPS"));
        assert!(html.contains("auditor: all invariants hold"));
        // two task rects completed + one killed, with its ✕ glyph
        assert_eq!(html.matches("class=\"task\"").count(), 3);
        assert!(html.contains('\u{2715}'));
        assert!(html.contains("class=\"outage\""));
    }

    #[test]
    fn markers_overlay_gantt_and_opted_in_charts() {
        let html = render_dashboard(&demo_spec());
        // 2 markers on the Gantt + 2 on the slot chart (show_markers).
        assert_eq!(html.matches("class=\"marker\"").count(), 4);
        assert!(html.contains("f=1.20 Rs=0.40 → +2 map"));
    }

    #[test]
    fn is_self_contained() {
        let html = render_dashboard(&demo_spec());
        // No scripts, no external fetches; the only URL is the SVG xmlns.
        assert!(!html.contains("<script"));
        assert!(!html.contains("href="));
        assert!(!html.contains("src="));
        for (i, _) in html.match_indices("http") {
            assert_eq!(
                &html[i..i + 26],
                "http://www.w3.org/2000/svg",
                "unexpected URL in dashboard"
            );
        }
    }

    #[test]
    fn content_is_html_escaped() {
        let mut spec = demo_spec();
        spec.title = "<script>alert(1)</script>".into();
        spec.violations = vec!["a < b & c".into()];
        let html = render_dashboard(&spec);
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
        assert!(html.contains("a &lt; b &amp; c"));
        assert!(html.contains("auditor: 1 violation(s)"));
    }

    #[test]
    fn empty_spec_still_renders() {
        let html = render_dashboard(&DashboardSpec::default());
        assert!(html.contains("auditor: not run"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn axis_steps_are_nice() {
        assert_eq!(nice_step(7.3), 10.0);
        assert_eq!(nice_step(1.7), 2.0);
        assert_eq!(nice_step(0.4), 0.5);
        assert_eq!(nice_step(430.0), 500.0);
        assert!(nice_step(0.0) > 0.0);
    }
}

//! Metrics registry: named counters, gauges, and log2-bucket histograms.
//!
//! Handles are `Arc`'d atomics — acquire them once at init, then update
//! from the hot path without locking or allocating. `detached()`
//! constructors give unregistered handles so call sites on a disabled
//! [`crate::Telemetry`] can update unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Point-in-time reading of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub name: &'static str,
    pub kind: MetricKind,
    /// Counter: running total. Gauge: last value set. Histogram:
    /// observation count.
    pub value: f64,
    /// Histogram only: sum of all recorded values.
    pub sum: f64,
    /// Histogram only: `(inclusive upper bound, count)` for each
    /// non-empty log2 bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Monotonically increasing u64.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry; it still counts locally.
    pub fn detached() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-value-wins f64 (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket count: one per possible bit length of a u64 (0..=64).
const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log2-bucket histogram of u64 observations (e.g. durations in µs).
/// Bucket `i` holds values of bit length `i`, so bounds double each
/// bucket — constant memory, no configuration, good enough resolution
/// for latency distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    pub fn detached() -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// `(inclusive upper bound, count)` for non-empty buckets, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        (0..HIST_BUCKETS)
            .filter_map(|i| {
                let n = self.core.buckets[i].load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect()
    }
}

fn bucket_upper_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << idx) - 1,
    }
}

/// Registered metrics, deduplicated by name within each kind; snapshots
/// preserve registration order so serialized output is deterministic.
pub struct MetricsRegistry {
    counters: Mutex<Vec<(&'static str, Counter)>>,
    gauges: Mutex<Vec<(&'static str, Gauge)>>,
    histograms: Mutex<Vec<(&'static str, Histogram)>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    pub fn counter(&self, name: &'static str) -> Counter {
        let mut v = self.counters.lock().expect("metrics lock");
        if let Some((_, c)) = v.iter().find(|(n, _)| *n == name) {
            return c.clone();
        }
        let c = Counter::detached();
        v.push((name, c.clone()));
        c
    }

    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut v = self.gauges.lock().expect("metrics lock");
        if let Some((_, g)) = v.iter().find(|(n, _)| *n == name) {
            return g.clone();
        }
        let g = Gauge::detached();
        v.push((name, g.clone()));
        g
    }

    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut v = self.histograms.lock().expect("metrics lock");
        if let Some((_, h)) = v.iter().find(|(n, _)| *n == name) {
            return h.clone();
        }
        let h = Histogram::detached();
        v.push((name, h.clone()));
        h
    }

    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().expect("metrics lock").iter() {
            out.push(MetricSample {
                name,
                kind: MetricKind::Counter,
                value: c.get() as f64,
                sum: 0.0,
                buckets: Vec::new(),
            });
        }
        for (name, g) in self.gauges.lock().expect("metrics lock").iter() {
            out.push(MetricSample {
                name,
                kind: MetricKind::Gauge,
                value: g.get(),
                sum: 0.0,
                buckets: Vec::new(),
            });
        }
        for (name, h) in self.histograms.lock().expect("metrics lock").iter() {
            out.push(MetricSample {
                name,
                kind: MetricKind::Histogram,
                value: h.count() as f64,
                sum: h.sum() as f64,
                buckets: h.nonempty_buckets(),
            });
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dedupes_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("ticks");
        let b = r.counter("ticks");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::detached();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let b = h.nonempty_buckets();
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 1000 → bound 1023.
        assert_eq!(b, vec![(0, 1), (1, 1), (3, 2), (1023, 1)]);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::detached();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn snapshot_orders_by_registration() {
        let r = MetricsRegistry::new();
        r.counter("b");
        r.counter("a");
        r.gauge("z");
        let names: Vec<&str> = r.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "a", "z"]);
    }
}

//! Chrome-trace (Perfetto) JSON exporter.
//!
//! Output follows the Trace Event Format's "JSON object" flavour:
//! spans become `"ph":"X"` complete events, counter samples become
//! `"ph":"C"` counter tracks, instant events become `"ph":"i"`, and the
//! metrics snapshot plus drop statistics land in `otherData`. The file
//! loads directly in <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! JSON is written by hand so this crate stays dependency-free; the
//! exporter runs once at the end of a run, off any hot path.

use crate::recorder::Recorder;
use crate::{ArgValue, MetricSample};

const PID: u32 = 1;
const TID: u32 = 1;

pub fn export_chrome_trace(recorder: &Recorder, metrics: &[MetricSample]) -> String {
    let mut out = String::with_capacity(64 * 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str("\"exporter\":\"smapreduce-telemetry\",\"dropped_spans\":");
    push_u64(&mut out, recorder.dropped_spans());
    out.push_str(",\"dropped_counter_samples\":");
    push_u64(&mut out, recorder.dropped_counter_samples());
    out.push_str(",\"metrics\":[");
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_metric(&mut out, m);
    }
    out.push_str("]},\"traceEvents\":[");

    // Metadata: name the process/thread tracks.
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"smapreduce-sim\"}},\
         {\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"engine\"}}",
    );

    for s in recorder.spans() {
        out.push(',');
        out.push_str("{\"ph\":\"X\",\"pid\":");
        push_u64(&mut out, PID as u64);
        out.push_str(",\"tid\":");
        push_u64(&mut out, TID as u64);
        out.push_str(",\"cat\":");
        push_str(&mut out, s.cat);
        out.push_str(",\"name\":");
        push_str(&mut out, s.name);
        out.push_str(",\"ts\":");
        push_u64(&mut out, s.start_us);
        out.push_str(",\"dur\":");
        push_u64(&mut out, s.dur_us);
        out.push_str(",\"args\":{\"sim_ms\":");
        push_u64(&mut out, s.sim_ms);
        out.push_str("}}");
    }

    for c in recorder.counter_samples() {
        out.push(',');
        out.push_str("{\"ph\":\"C\",\"pid\":");
        push_u64(&mut out, PID as u64);
        out.push_str(",\"tid\":");
        push_u64(&mut out, TID as u64);
        out.push_str(",\"name\":");
        push_str(&mut out, c.name);
        out.push_str(",\"ts\":");
        push_u64(&mut out, c.ts_us);
        out.push_str(",\"args\":{\"value\":");
        push_f64(&mut out, c.value);
        out.push_str(",\"sim_ms\":");
        push_u64(&mut out, c.sim_ms);
        out.push_str("}}");
    }

    for e in recorder.instants() {
        out.push(',');
        out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":");
        push_u64(&mut out, PID as u64);
        out.push_str(",\"tid\":");
        push_u64(&mut out, TID as u64);
        out.push_str(",\"cat\":");
        push_str(&mut out, e.cat);
        out.push_str(",\"name\":");
        push_str(&mut out, e.name);
        out.push_str(",\"ts\":");
        push_u64(&mut out, e.ts_us);
        out.push_str(",\"args\":{\"sim_ms\":");
        push_u64(&mut out, e.sim_ms);
        for (k, v) in &e.args {
            out.push(',');
            push_str(&mut out, k);
            out.push(':');
            push_arg(&mut out, *v);
        }
        out.push_str("}}");
    }

    out.push_str("]}");
    out
}

fn push_metric(out: &mut String, m: &MetricSample) {
    out.push_str("{\"name\":");
    push_str(out, m.name);
    out.push_str(",\"kind\":");
    push_str(out, m.kind.label());
    out.push_str(",\"value\":");
    push_f64(out, m.value);
    if !m.buckets.is_empty() {
        out.push_str(",\"sum\":");
        push_f64(out, m.sum);
        out.push_str(",\"buckets\":[");
        for (i, (ub, n)) in m.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_u64(out, *ub);
            out.push(',');
            push_u64(out, *n);
            out.push(']');
        }
        out.push(']');
    }
    out.push('}');
}

fn push_arg(out: &mut String, v: ArgValue) {
    match v {
        ArgValue::U64(n) => push_u64(out, n),
        ArgValue::I64(n) => {
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => push_f64(out, x),
        ArgValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        ArgValue::Str(s) => push_str(out, s),
    }
}

fn push_u64(out: &mut String, n: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{n}");
}

fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CounterSample, InstantEvent, SpanRecord};

    fn sample_trace() -> String {
        let mut r = Recorder::new(8, 8);
        r.push_span(SpanRecord {
            cat: "engine",
            name: "tick",
            start_us: 10,
            dur_us: 5,
            sim_ms: 100,
        });
        r.push_counter(CounterSample {
            name: "map_slots",
            ts_us: 12,
            sim_ms: 100,
            value: 8.0,
        });
        r.push_instant(InstantEvent {
            cat: "audit",
            name: "slot_decision",
            ts_us: 13,
            sim_ms: 100,
            args: vec![
                ("f", ArgValue::F64(1.5)),
                ("action", ArgValue::Str("balance")),
                ("settled", ArgValue::Bool(true)),
            ],
        });
        let metrics = vec![MetricSample {
            name: "ticks",
            kind: crate::MetricKind::Counter,
            value: 42.0,
            sum: 0.0,
            buckets: Vec::new(),
        }];
        export_chrome_trace(&r, &metrics)
    }

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let json = sample_trace();
        let v: serde_json::Value =
            serde_json::from_str(&json).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 2 metadata + 1 span + 1 counter + 1 instant.
        assert_eq!(events.len(), 5);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"f\":1.5"));
        assert!(json.contains("\"action\":\"balance\""));
        assert!(json.contains("\"settled\":true"));
        let other = v.get("otherData").unwrap();
        assert!(other.get("dropped_spans").is_some());
        assert!(other.get("dropped_counter_samples").is_some());
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}

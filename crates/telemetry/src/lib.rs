//! Unified observability for the SMapReduce reproduction: a span/event
//! tracer with a preallocated ring-buffer recorder, a metrics registry
//! (counters, gauges, log2-bucket histograms), and a Chrome-trace
//! (Perfetto) JSON exporter.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — telemetry observes the simulation, never feeds
//!    back into it. No telemetry state influences any simulated decision.
//! 2. **Near-zero cost when disabled** — a disabled [`Telemetry`] handle
//!    is a `None`; every recording call is a single branch, performs no
//!    heap allocation and takes no clock reading (verified by the
//!    `telemetry_alloc` test in the workspace root).
//! 3. **No hot-path allocation when enabled** — spans and counter samples
//!    go into ring buffers preallocated at construction; names are
//!    `&'static str`; argument values ([`ArgValue`]) are `Copy`. Only
//!    rich instant events (heartbeat-rate decision records, lifecycle
//!    mirrors) allocate, and they are off the per-tick path.
//!
//! The `profiling` cargo feature compiles in the finest-grained
//! instrumentation; dependents branch on [`PROFILING_ENABLED`] so the
//! extra statements constant-fold away in default builds.

mod chrome;
pub mod dashboard;
mod metrics;
mod recorder;

pub use chrome::export_chrome_trace;
pub use dashboard::{render_dashboard, DashboardSpec};
pub use metrics::{Counter, Gauge, Histogram, MetricKind, MetricSample, MetricsRegistry};
pub use recorder::{CounterSample, InstantEvent, Recorder, SpanRecord};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// True when the `profiling` feature is enabled. Hot-path call sites write
/// `if telemetry::PROFILING_ENABLED { ... }` so the block compiles out of
/// default builds entirely.
pub const PROFILING_ENABLED: bool = cfg!(feature = "profiling");

/// Default span-ring capacity: ~260k spans ≈ 14 MB. Long runs wrap and
/// keep the most recent spans (the exporter reports the dropped count).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 18;

/// Default counter-sample ring capacity.
pub const DEFAULT_COUNTER_CAPACITY: usize = 1 << 18;

/// A copyable argument value attached to instant events. Strings are
/// restricted to `&'static str` so building argument lists never
/// allocates at the call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

struct Inner {
    epoch: Instant,
    recorder: Mutex<Recorder>,
    metrics: MetricsRegistry,
}

/// Cheap, cloneable handle to one telemetry session (or to nothing at
/// all: [`Telemetry::disabled`] handles are a `None` and record-calls are
/// a single branch).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A handle that records nothing. Every call is a branch on `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A recording handle with default ring capacities.
    pub fn enabled() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_COUNTER_CAPACITY)
    }

    /// A recording handle with explicit span / counter-sample ring
    /// capacities (each entry is a few dozen bytes; memory is allocated
    /// up front so recording never allocates).
    pub fn with_capacity(span_capacity: usize, counter_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                recorder: Mutex::new(Recorder::new(span_capacity, counter_capacity)),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this session's epoch — the span clock. Returns 0
    /// without reading the clock when disabled.
    #[inline]
    pub fn clock_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Record a completed span that started at `start_us` (from
    /// [`Telemetry::clock_us`]) and ends now. No-op when disabled; never
    /// allocates when enabled (ring overwrite on overflow).
    #[inline]
    pub fn record_span(&self, cat: &'static str, name: &'static str, start_us: u64, sim_ms: u64) {
        if let Some(inner) = &self.inner {
            let end = inner.epoch.elapsed().as_micros() as u64;
            inner
                .recorder
                .lock()
                .expect("recorder lock")
                .push_span(SpanRecord {
                    cat,
                    name,
                    start_us,
                    dur_us: end.saturating_sub(start_us),
                    sim_ms,
                });
        }
    }

    /// RAII alternative to [`Telemetry::record_span`] for call sites
    /// without borrow constraints: records on drop.
    pub fn span(&self, cat: &'static str, name: &'static str, sim_ms: u64) -> SpanGuard {
        SpanGuard {
            telem: self.clone(),
            cat,
            name,
            sim_ms,
            start_us: self.clock_us(),
        }
    }

    /// Record one sample of a named counter series (rendered as a Chrome
    /// trace counter track). No-op when disabled; never allocates.
    #[inline]
    pub fn counter_sample(&self, name: &'static str, sim_ms: u64, value: f64) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            inner
                .recorder
                .lock()
                .expect("recorder lock")
                .push_counter(CounterSample {
                    name,
                    ts_us,
                    sim_ms,
                    value,
                });
        }
    }

    /// Record a rich instant event (decision records, lifecycle mirrors).
    /// Allocates the argument vector when enabled — keep off the per-tick
    /// path. No-op (and allocation-free) when disabled.
    pub fn instant(
        &self,
        cat: &'static str,
        name: &'static str,
        sim_ms: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        if let Some(inner) = &self.inner {
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            inner
                .recorder
                .lock()
                .expect("recorder lock")
                .push_instant(InstantEvent {
                    cat,
                    name,
                    ts_us,
                    sim_ms,
                    args: args.to_vec(),
                });
        }
    }

    /// Counter handle. Disabled handles return a detached counter so call
    /// sites can increment unconditionally; acquire handles once at init,
    /// not per tick.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// Gauge handle (f64). See [`Telemetry::counter`] on detachment.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// Log2-bucket histogram handle. See [`Telemetry::counter`].
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Snapshot of all registered metrics (empty when disabled).
    pub fn metrics_snapshot(&self) -> Vec<MetricSample> {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => Vec::new(),
        }
    }

    /// Bytes currently committed to recorder storage (ring buffers at
    /// their preallocated capacity plus instant-event storage) — the
    /// "peak recorder memory" of perf summaries.
    pub fn memory_bytes(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.recorder.lock().expect("recorder lock").memory_bytes(),
            None => 0,
        }
    }

    /// Spans dropped to ring wrap-around so far.
    pub fn dropped_spans(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .recorder
                .lock()
                .expect("recorder lock")
                .dropped_spans(),
            None => 0,
        }
    }

    /// Counter samples dropped to ring wrap-around so far.
    pub fn dropped_counter_samples(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .recorder
                .lock()
                .expect("recorder lock")
                .dropped_counter_samples(),
            None => 0,
        }
    }

    /// Render everything recorded so far as Chrome-trace (Perfetto) JSON.
    /// Returns `None` when disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let recorder = inner.recorder.lock().expect("recorder lock");
        Some(export_chrome_trace(&recorder, &inner.metrics.snapshot()))
    }

    /// Run `f` over the recorded spans (in recording order).
    pub fn with_spans<R>(
        &self,
        f: impl FnOnce(&mut dyn Iterator<Item = &SpanRecord>) -> R,
    ) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let recorder = inner.recorder.lock().expect("recorder lock");
        let result = f(&mut recorder.spans());
        Some(result)
    }

    /// Number of instant events recorded so far.
    pub fn instant_count(&self) -> usize {
        match &self.inner {
            Some(inner) => inner
                .recorder
                .lock()
                .expect("recorder lock")
                .instant_count(),
            None => 0,
        }
    }
}

/// Records a span over its lifetime; created by [`Telemetry::span`].
pub struct SpanGuard {
    telem: Telemetry,
    cat: &'static str,
    name: &'static str,
    sim_ms: u64,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.telem
            .record_span(self.cat, self.name, self.start_us, self.sim_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.clock_us(), 0);
        t.record_span("c", "n", 0, 0);
        t.counter_sample("x", 0, 1.0);
        t.instant("c", "n", 0, &[("k", ArgValue::U64(1))]);
        let c = t.counter("x");
        c.inc();
        assert_eq!(c.get(), 1, "detached counters still count locally");
        assert!(t.chrome_trace().is_none());
        assert_eq!(t.memory_bytes(), 0);
        assert!(t.metrics_snapshot().is_empty());
    }

    #[test]
    fn spans_and_counters_are_recorded() {
        let t = Telemetry::with_capacity(16, 16);
        let start = t.clock_us();
        t.record_span("engine", "tick", start, 100);
        t.counter_sample("map_slots", 100, 12.0);
        t.instant("audit", "decision", 100, &[("f", ArgValue::F64(1.5))]);
        let names: Vec<&str> = t.with_spans(|it| it.map(|s| s.name).collect()).unwrap();
        assert_eq!(names, vec!["tick"]);
        assert_eq!(t.instant_count(), 1);
        let json = t.chrome_trace().unwrap();
        assert!(json.contains("\"tick\""));
        assert!(json.contains("map_slots"));
        assert!(json.contains("decision"));
    }

    #[test]
    fn span_ring_wraps_without_growing() {
        let t = Telemetry::with_capacity(4, 4);
        let before = t.memory_bytes();
        for i in 0..100u64 {
            t.record_span("c", "s", i, i);
        }
        assert_eq!(t.memory_bytes(), before, "ring must not grow");
        assert_eq!(t.dropped_spans(), 96);
        assert_eq!(t.dropped_counter_samples(), 0, "only the span ring wrapped");
        for i in 0..9u64 {
            t.counter_sample("c", i, i as f64);
        }
        assert_eq!(t.dropped_counter_samples(), 5);
        let n = t.with_spans(|it| it.count()).unwrap();
        assert_eq!(n, 4);
        // The survivors are the most recent four.
        let last = t
            .with_spans(|it| it.map(|s| s.sim_ms).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(last, vec![96, 97, 98, 99]);
    }

    #[test]
    fn clone_shares_the_recorder() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.counter_sample("x", 0, 1.0);
        let c = t.counter("ticks");
        t.counter("ticks").add(2);
        assert_eq!(c.get(), 2, "same registry through clones");
    }

    #[test]
    fn guard_records_on_drop() {
        let t = Telemetry::enabled();
        {
            let _g = t.span("engine", "scoped", 7);
        }
        let names: Vec<&str> = t.with_spans(|it| it.map(|s| s.name).collect()).unwrap();
        assert_eq!(names, vec!["scoped"]);
    }
}

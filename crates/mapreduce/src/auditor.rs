//! End-of-run invariant auditor.
//!
//! A simulator that silently drifts out of self-consistency produces
//! figures that *look* fine. The auditor closes that hole: after a run it
//! replays the [`crate::events::EventLog`] against the
//! [`crate::counters::CounterLedger`]s and the report's scalar fields and
//! checks every conservation law the engine is supposed to obey — every
//! launched attempt reaches a terminal event, shuffle bytes fetched match
//! map-output bytes served (modulo fault re-execution), slot occupancy
//! never exceeds what the trackers offered, and counters are pure
//! functions of the seed. Any [`Violation`] is a simulator bug, never a
//! property of the workload; the harness turns a non-empty violation list
//! into [`simgrid::SimError::AuditFailed`] so a broken figure cannot be
//! committed quietly.
//!
//! Counter-only invariants run on every report; event-replay invariants
//! additionally need [`crate::EngineConfig::record_events`] and are skipped
//! (not failed) on reports without an event log.

use crate::counters::{Counter, CounterLedger};
use crate::engine::EngineConfig;
use crate::events::Event;
use crate::report::RunReport;
use std::fmt;

/// Tolerance for MB-denominated conservation checks: generous against
/// float accumulation over hundreds of thousands of integration steps,
/// negligible against any real accounting bug (whole blocks are ≥ 1 MB).
fn eps(scale: f64) -> f64 {
    1e-6 * scale.abs().max(1.0)
}

/// Counters that count discrete things and must therefore hold exact
/// non-negative integers.
const INTEGER_COUNTERS: [Counter; 10] = [
    Counter::TotalLaunchedMaps,
    Counter::DataLocalMaps,
    Counter::RemoteMaps,
    Counter::TotalLaunchedReduces,
    Counter::KilledAttempts,
    Counter::KilledReduces,
    Counter::FailedMaps,
    Counter::DiscardedMaps,
    Counter::SpeculativeMaps,
    Counter::ReexecutedMaps,
];

/// The run-independent facts the auditor cannot recover from the report
/// itself: the initial per-tracker slot targets the event replay starts
/// from, and the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSetup {
    pub init_map_slots: usize,
    pub init_reduce_slots: usize,
    pub workers: usize,
}

impl AuditSetup {
    pub fn from_config(cfg: &EngineConfig) -> AuditSetup {
        AuditSetup {
            init_map_slots: cfg.init_map_slots,
            init_reduce_slots: cfg.init_reduce_slots,
            workers: cfg.cluster.workers,
        }
    }
}

/// One broken invariant: which law, and the numbers that break it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Order-sensitive FNV-1a over every counter value's exact bit pattern,
/// per job and cluster-wide. Two runs of the same seed must produce the
/// same fingerprint — the "counters byte-identical across reruns"
/// determinism invariant, cheap enough to assert anywhere.
pub fn fingerprint(report: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for (_, v) in report.counters.iter() {
        eat(v.to_bits());
    }
    for j in &report.jobs {
        for (_, v) in j.counters.iter() {
            eat(v.to_bits());
        }
    }
    h
}

/// Per-step wall-clock budgets (µs) for the engine's hot phases. The
/// spans already exist (`step/allocate_nodes`, `step/network_allocate`,
/// `step/event_horizon`, `step/advance_maps`, `step/advance_reduces`);
/// this gates their *means* so a phase regressing from O(nodes) to
/// O(nodes²) fails an audit instead of quietly stretching wall time.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBudget {
    /// Mean per-step cost of the allocate phase (node contention scaling
    /// plus fabric water-filling): `allocate_nodes + network_allocate`.
    pub allocate_us: f64,
    /// Mean per-step cost of the event-horizon search (`event_horizon`;
    /// adaptive mode only — fixed-tick runs record no horizon spans and
    /// the check is skipped).
    pub horizon_us: f64,
    /// Mean per-step cost of the integrate phase:
    /// `advance_maps + advance_reduces`.
    pub integrate_us: f64,
}

impl PhaseBudget {
    /// A generous default for CI-grade hardware at testbed scale
    /// (16–64 nodes): each phase is single-digit µs per step warm, so a
    /// 10× margin still catches any complexity-class regression.
    pub fn default_gate() -> PhaseBudget {
        PhaseBudget {
            allocate_us: 150.0,
            horizon_us: 100.0,
            integrate_us: 150.0,
        }
    }

    /// The default gate with every budget scaled by `factor` — larger
    /// clusters get proportionally larger (still per-step) budgets.
    pub fn scaled(factor: f64) -> PhaseBudget {
        let base = PhaseBudget::default_gate();
        PhaseBudget {
            allocate_us: base.allocate_us * factor,
            horizon_us: base.horizon_us * factor,
            integrate_us: base.integrate_us * factor,
        }
    }
}

/// Mean per-step span costs actually observed (µs), as paired with a
/// [`PhaseBudget`] by [`audit_phase_spans`]. `horizon_us` is `None` when
/// no horizon spans were recorded (fixed-tick mode).
#[derive(Debug, Clone, Copy)]
pub struct PhaseMeans {
    pub allocate_us: f64,
    pub horizon_us: Option<f64>,
    pub integrate_us: f64,
    /// Steps covered by the recorded spans (the span ring is bounded, so
    /// this may be fewer than the run's total steps; means stay unbiased
    /// because the ring keeps a contiguous suffix of the run).
    pub steps_covered: u64,
}

/// Aggregate the engine's phase spans out of `telem` into per-step means.
/// Returns `None` when telemetry is disabled or no allocate spans were
/// recorded (nothing ran, or the sink was detached).
pub fn phase_means(telem: &telemetry::Telemetry) -> Option<PhaseMeans> {
    let (alloc, hor, integ, n_alloc, n_hor, n_int) = telem.with_spans(|spans| {
        let (mut alloc, mut hor, mut integ) = (0u64, 0u64, 0u64);
        let (mut n_alloc, mut n_hor, mut n_int) = (0u64, 0u64, 0u64);
        for s in spans {
            match (s.cat, s.name) {
                ("step", "allocate_nodes") | ("step", "network_allocate") => {
                    alloc += s.dur_us;
                    n_alloc += 1;
                }
                ("step", "event_horizon") => {
                    hor += s.dur_us;
                    n_hor += 1;
                }
                ("step", "advance_maps") | ("step", "advance_reduces") => {
                    integ += s.dur_us;
                    n_int += 1;
                }
                _ => {}
            }
        }
        (alloc, hor, integ, n_alloc, n_hor, n_int)
    })?;
    if n_alloc == 0 || n_int == 0 {
        return None;
    }
    // allocate_nodes + network_allocate (and advance_maps +
    // advance_reduces) are each recorded once per step, so half the span
    // count is the number of steps the ring still covers.
    let steps_covered = n_alloc / 2;
    Some(PhaseMeans {
        allocate_us: alloc as f64 / (n_alloc as f64 / 2.0),
        horizon_us: (n_hor > 0).then(|| hor as f64 / n_hor as f64),
        integrate_us: integ as f64 / (n_int as f64 / 2.0),
        steps_covered,
    })
}

/// Gate the per-step mean wall cost of the engine's phase spans against a
/// [`PhaseBudget`]. Telemetry must have been enabled for the run; a
/// disabled sink (no spans at all) is itself a violation, so the gate
/// cannot silently pass by measuring nothing.
pub fn audit_phase_spans(telem: &telemetry::Telemetry, budget: &PhaseBudget) -> Vec<Violation> {
    let mut v = Vec::new();
    let Some(means) = phase_means(telem) else {
        push(
            &mut v,
            "phase_budget",
            "no phase spans recorded: run the gated run with telemetry enabled".into(),
        );
        return v;
    };
    let mut check = |phase: &'static str, mean: f64, budget_us: f64| {
        if mean > budget_us {
            push(
                &mut v,
                "phase_budget",
                format!(
                    "{phase} mean {mean:.2} µs/step exceeds budget {budget_us:.2} µs \
                     (over {} steps)",
                    means.steps_covered
                ),
            );
        }
    };
    check("allocate", means.allocate_us, budget.allocate_us);
    if let Some(hor) = means.horizon_us {
        check("event_horizon", hor, budget.horizon_us);
    }
    check("integrate", means.integrate_us, budget.integrate_us);
    v
}

/// Check every invariant; empty result means the report is self-consistent.
pub fn audit(report: &RunReport, setup: &AuditSetup) -> Vec<Violation> {
    let mut v = Vec::new();
    audit_counters(report, &mut v);
    if !report.events.is_empty() {
        audit_events(report, setup, &mut v);
    }
    audit_utilization(report, setup, &mut v);
    v
}

fn push(v: &mut Vec<Violation>, invariant: &'static str, detail: String) {
    v.push(Violation { invariant, detail });
}

fn audit_counters(report: &RunReport, v: &mut Vec<Violation>) {
    let mut merged = CounterLedger::new();
    for (ji, j) in report.jobs.iter().enumerate() {
        let c = &j.counters;
        merged.merge(c);
        for ic in INTEGER_COUNTERS {
            let x = c.get(ic);
            if x < 0.0 || x.fract() != 0.0 {
                push(
                    v,
                    "integer-counter",
                    format!(
                        "job {ji}: {} = {x} is not a non-negative integer",
                        ic.name()
                    ),
                );
            }
        }
        // every map attempt launched somewhere, every block at least once
        let total = c.get(Counter::TotalLaunchedMaps);
        let local = c.get(Counter::DataLocalMaps);
        let remote = c.get(Counter::RemoteMaps);
        if local + remote != total {
            push(
                v,
                "launch-partition",
                format!(
                    "job {ji}: DATA_LOCAL_MAPS {local} + REMOTE_MAPS {remote} \
                     != TOTAL_LAUNCHED_MAPS {total}"
                ),
            );
        }
        if total < j.num_maps as f64 {
            push(
                v,
                "launch-coverage",
                format!(
                    "job {ji}: {total} map launches cannot cover {} map tasks",
                    j.num_maps
                ),
            );
        }
        if c.get(Counter::TotalLaunchedReduces) < j.num_reduces as f64 {
            push(
                v,
                "launch-coverage",
                format!(
                    "job {ji}: {} reduce launches cannot cover {} reduce tasks",
                    c.get(Counter::TotalLaunchedReduces),
                    j.num_reduces
                ),
            );
        }
        // local_map_fraction is a pure function of the counters
        let expect = if total <= 0.0 { 1.0 } else { local / total };
        if (j.local_map_fraction - expect).abs() > 1e-12 {
            push(
                v,
                "locality-fraction",
                format!(
                    "job {ji}: local_map_fraction {} != DATA_LOCAL_MAPS/TOTAL {expect}",
                    j.local_map_fraction
                ),
            );
        }
        // a finished job consumed every input block at least once
        if c.get(Counter::HdfsBytesRead) < j.input_mb - eps(j.input_mb) {
            push(
                v,
                "input-coverage",
                format!(
                    "job {ji}: HDFS_BYTES_READ {} < input {} MB",
                    c.get(Counter::HdfsBytesRead),
                    j.input_mb
                ),
            );
        }
        // map output served == output surviving + output destroyed by crashes
        let produced = c.get(Counter::MapOutputMb);
        let lost = c.get(Counter::LostMapOutputMb);
        if (produced - lost - j.shuffle_mb).abs() > eps(produced) {
            push(
                v,
                "output-conservation",
                format!(
                    "job {ji}: MAP_OUTPUT_MB {produced} - LOST_MAP_OUTPUT_MB {lost} \
                     != shuffle_mb {}",
                    j.shuffle_mb
                ),
            );
        }
        // shuffle conservation: fetched == served, except that killed
        // reduces re-fetch their partition and re-executed maps are
        // partially double-fetched — both bounded, and both require a
        // fault to have happened
        let fetched = c.get(Counter::ShuffleFetchedMb);
        let delta = fetched - j.shuffle_mb;
        let killed_reduces = c.get(Counter::KilledReduces);
        let refetch_bound = lost
            + if j.num_reduces > 0 {
                produced / j.num_reduces as f64 * killed_reduces
            } else {
                0.0
            };
        if delta < -eps(fetched) {
            push(
                v,
                "shuffle-conservation",
                format!(
                    "job {ji}: SHUFFLE_FETCHED_MB {fetched} < shuffle_mb {} — \
                     a reduce finished without its partition",
                    j.shuffle_mb
                ),
            );
        } else if delta > refetch_bound + eps(fetched) {
            push(
                v,
                "shuffle-conservation",
                format!(
                    "job {ji}: SHUFFLE_FETCHED_MB {fetched} exceeds shuffle_mb {} \
                     by {delta} — more than faults can explain ({refetch_bound})",
                    j.shuffle_mb
                ),
            );
        } else if delta > eps(fetched) && c.get(Counter::ReexecutedMaps) + killed_reduces == 0.0 {
            push(
                v,
                "shuffle-conservation",
                format!(
                    "job {ji}: SHUFFLE_FETCHED_MB over-count {delta} with no \
                     re-executed maps or killed reduces to cause it"
                ),
            );
        }
        if c.get(Counter::ShuffleRemoteMb) > fetched + eps(fetched) {
            push(
                v,
                "shuffle-conservation",
                format!(
                    "job {ji}: SHUFFLE_REMOTE_MB {} > SHUFFLE_FETCHED_MB {fetched}",
                    c.get(Counter::ShuffleRemoteMb)
                ),
            );
        }
        // spill convention: map-side + reduce-side, fed at independent
        // sites so a missed feed breaks the identity
        let spilled = c.get(Counter::SpilledRecords);
        if (spilled - produced - fetched).abs() > eps(spilled) {
            push(
                v,
                "spill-identity",
                format!(
                    "job {ji}: SPILLED_RECORDS {spilled} != MAP_OUTPUT_MB {produced} \
                     + SHUFFLE_FETCHED_MB {fetched}"
                ),
            );
        }
    }

    // the cluster ledger is exactly the merge of the job ledgers
    for (c, total) in report.counters.iter() {
        if total.to_bits() != merged.get(c).to_bits() {
            push(
                v,
                "cluster-merge",
                format!(
                    "cluster {} = {total} is not the merge of job ledgers ({})",
                    c.name(),
                    merged.get(c)
                ),
            );
        }
    }

    // counters vs the report's independently-maintained scalar fields
    let scalar_checks: [(&'static str, f64, f64); 3] = [
        (
            "FAILED_MAPS vs map_failures",
            merged.get(Counter::FailedMaps),
            report.map_failures as f64,
        ),
        (
            "SPECULATIVE_MAPS vs speculative_attempts",
            merged.get(Counter::SpeculativeMaps),
            report.speculative_attempts as f64,
        ),
        (
            "REEXECUTED_MAPS vs lost_map_outputs",
            merged.get(Counter::ReexecutedMaps),
            report.lost_map_outputs as f64,
        ),
    ];
    for (what, a, b) in scalar_checks {
        if a != b {
            push(v, "scalar-crosscheck", format!("{what}: {a} != {b}"));
        }
    }
    let killed = merged.get(Counter::KilledAttempts);
    let crash = report.crash_task_kills as f64;
    let spec = report.speculative_attempts as f64;
    if killed < crash || killed > crash + spec {
        push(
            v,
            "scalar-crosscheck",
            format!(
                "KILLED_ATTEMPTS {killed} outside [crash_task_kills {crash}, \
                 crash + speculative {}]",
                crash + spec
            ),
        );
    }
    let hdfs = merged.get(Counter::HdfsBytesRead);
    if (hdfs - report.map_input_processed_mb).abs() > eps(hdfs) {
        push(
            v,
            "scalar-crosscheck",
            format!(
                "Σ HDFS_BYTES_READ {hdfs} != map_input_processed_mb {}",
                report.map_input_processed_mb
            ),
        );
    }
    // remote reads + remote shuffle ride the fabric; re-replication
    // traffic also counts toward network_mb, hence ≤ not ==
    let fabric = merged.get(Counter::RemoteBytesRead) + merged.get(Counter::ShuffleRemoteMb);
    if fabric > report.network_mb + eps(fabric) {
        push(
            v,
            "scalar-crosscheck",
            format!(
                "REMOTE_BYTES_READ + SHUFFLE_REMOTE_MB = {fabric} > network_mb {}",
                report.network_mb
            ),
        );
    }
    if !(0.0..=1.0 + 1e-9).contains(&report.cpu_utilisation) {
        push(
            v,
            "scalar-crosscheck",
            format!("cpu_utilisation {} outside [0, 1]", report.cpu_utilisation),
        );
    }
}

/// Replay the event log: per-task attempt balance, per-node slot
/// occupancy against the launch gate, and event counts against counters.
fn audit_events(report: &RunReport, setup: &AuditSetup, v: &mut Vec<Violation>) {
    use std::collections::BTreeMap;
    let events = report.events.events();

    // --- per-task attempt balance -----------------------------------
    // (launches, terminals, completions) per map task / reduce task
    let mut maps: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();
    let mut reduces: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();

    // --- per-node slot replay ---------------------------------------
    let n = setup.workers;
    let mut map_occ = vec![0i64; n];
    let mut red_occ = vec![0i64; n];
    let mut map_tgt = vec![setup.init_map_slots as i64; n];
    let mut red_tgt = vec![setup.init_reduce_slots as i64; n];
    let mut map_high = map_tgt.clone();
    let mut red_high = red_tgt.clone();
    // slot-seconds occupied / offered (at the high-water target)
    let mut occ_secs = 0.0;
    let mut avail_secs = 0.0;
    let mut last_t = None::<simgrid::time::SimTime>;

    // event-count vs counter cross-checks
    let (mut launches, mut map_kills, mut red_kills, mut fails, mut discards, mut relost) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);

    for e in events {
        let t = e.at();
        if let Some(prev) = last_t {
            let dt = t.since(prev).as_secs_f64();
            for i in 0..n {
                occ_secs += (map_occ[i] + red_occ[i]) as f64 * dt;
                avail_secs += (map_high[i] + red_high[i]) as f64 * dt;
            }
        }
        last_t = Some(t);
        match *e {
            Event::MapLaunched { id, node, .. } => {
                launches += 1;
                maps.entry((id.job.0, id.index)).or_default().0 += 1;
                if map_occ[node.0] >= map_tgt[node.0] {
                    push(
                        v,
                        "slot-launch-gate",
                        format!(
                            "map launch at {t} on node {} with {}/{} slots occupied",
                            node.0, map_occ[node.0], map_tgt[node.0]
                        ),
                    );
                }
                map_occ[node.0] += 1;
            }
            Event::MapCompleted { id, node, .. } => {
                let s = maps.entry((id.job.0, id.index)).or_default();
                s.1 += 1;
                s.2 += 1;
                map_occ[node.0] -= 1;
            }
            Event::MapKilled { id, node, .. } => {
                map_kills += 1;
                maps.entry((id.job.0, id.index)).or_default().1 += 1;
                map_occ[node.0] -= 1;
            }
            Event::MapFailed { id, node, .. } => {
                fails += 1;
                maps.entry((id.job.0, id.index)).or_default().1 += 1;
                map_occ[node.0] -= 1;
            }
            Event::MapDiscarded { id, node, .. } => {
                discards += 1;
                maps.entry((id.job.0, id.index)).or_default().1 += 1;
                map_occ[node.0] -= 1;
            }
            Event::ReduceLaunched { id, node, .. } => {
                reduces.entry((id.job.0, id.partition)).or_default().0 += 1;
                if red_occ[node.0] >= red_tgt[node.0] {
                    push(
                        v,
                        "slot-launch-gate",
                        format!(
                            "reduce launch at {t} on node {} with {}/{} slots occupied",
                            node.0, red_occ[node.0], red_tgt[node.0]
                        ),
                    );
                }
                red_occ[node.0] += 1;
            }
            Event::ReduceCompleted { id, node, .. } => {
                let s = reduces.entry((id.job.0, id.partition)).or_default();
                s.1 += 1;
                s.2 += 1;
                red_occ[node.0] -= 1;
            }
            Event::ReduceKilled { id, node, .. } => {
                red_kills += 1;
                reduces.entry((id.job.0, id.partition)).or_default().1 += 1;
                red_occ[node.0] -= 1;
            }
            Event::SlotTargetsChanged {
                node,
                map_slots,
                reduce_slots,
                ..
            } => {
                map_tgt[node.0] = map_slots as i64;
                red_tgt[node.0] = reduce_slots as i64;
                map_high[node.0] = map_high[node.0].max(map_slots as i64);
                red_high[node.0] = red_high[node.0].max(reduce_slots as i64);
            }
            Event::NodeRejoined { node, .. } => {
                // re-registration: fresh empty slot sets at initial targets
                if map_occ[node.0] != 0 || red_occ[node.0] != 0 {
                    push(
                        v,
                        "slot-balance",
                        format!(
                            "node {} rejoined at {t} with {} map / {} reduce \
                             attempts unaccounted",
                            node.0, map_occ[node.0], red_occ[node.0]
                        ),
                    );
                }
                map_tgt[node.0] = setup.init_map_slots as i64;
                red_tgt[node.0] = setup.init_reduce_slots as i64;
                map_high[node.0] = map_high[node.0].max(map_tgt[node.0]);
                red_high[node.0] = red_high[node.0].max(red_tgt[node.0]);
            }
            Event::MapOutputLost { .. } => relost += 1,
            Event::ShuffleCompleted { .. }
            | Event::BarrierCrossed { .. }
            | Event::JobFinished { .. }
            | Event::NodeCrashed { .. }
            | Event::TrackerBlacklisted { .. } => {}
        }
        for i in 0..n {
            if map_occ[i] < 0 || red_occ[i] < 0 {
                push(
                    v,
                    "slot-balance",
                    format!(
                        "node {i} occupancy went negative at {t} \
                         (terminal event without a matching launch)"
                    ),
                );
                map_occ[i] = map_occ[i].max(0);
                red_occ[i] = red_occ[i].max(0);
            }
            if map_occ[i] > map_high[i] || red_occ[i] > red_high[i] {
                push(
                    v,
                    "slot-balance",
                    format!(
                        "node {i} occupancy {}m/{}r above its high-water target \
                         {}m/{}r at {t}",
                        map_occ[i], red_occ[i], map_high[i], red_high[i]
                    ),
                );
            }
        }
    }

    // every launched attempt reached a terminal event; every task ran
    for ((job, index), (l, term, comp)) in &maps {
        if l != term {
            push(
                v,
                "attempt-coverage",
                format!("map task {job}/{index}: {l} launches but {term} terminal events"),
            );
        }
        if *comp == 0 {
            push(
                v,
                "attempt-coverage",
                format!("map task {job}/{index} never completed"),
            );
        }
    }
    for ((job, part), (l, term, comp)) in &reduces {
        if l != term {
            push(
                v,
                "attempt-coverage",
                format!("reduce {job}/{part}: {l} launches but {term} terminal events"),
            );
        }
        if *comp != 1 {
            push(
                v,
                "attempt-coverage",
                format!("reduce {job}/{part} completed {comp} times (expected exactly 1)"),
            );
        }
    }
    // a run's slots can't do more slot-seconds of work than were offered
    if occ_secs > avail_secs + 1e-6 {
        push(
            v,
            "slot-seconds",
            format!("{occ_secs} slot-seconds occupied > {avail_secs} offered"),
        );
    }

    // event counts vs counters: the log and the ledgers are maintained by
    // different code paths and must agree exactly
    let c = &report.counters;
    let count_checks: [(&'static str, u64, f64); 6] = [
        (
            "MapLaunched vs TOTAL_LAUNCHED_MAPS",
            launches,
            c.get(Counter::TotalLaunchedMaps),
        ),
        (
            "MapFailed vs FAILED_MAPS",
            fails,
            c.get(Counter::FailedMaps),
        ),
        (
            "MapDiscarded vs DISCARDED_MAPS",
            discards,
            c.get(Counter::DiscardedMaps),
        ),
        (
            "ReduceKilled vs KILLED_REDUCES",
            red_kills,
            c.get(Counter::KilledReduces),
        ),
        (
            "Map+ReduceKilled vs KILLED_ATTEMPTS",
            map_kills + red_kills,
            c.get(Counter::KilledAttempts),
        ),
        (
            "MapOutputLost vs REEXECUTED_MAPS",
            relost,
            c.get(Counter::ReexecutedMaps),
        ),
    ];
    for (what, got, counter) in count_checks {
        if got as f64 != counter {
            push(
                v,
                "event-count",
                format!("{what}: event log says {got}, ledger says {counter}"),
            );
        }
    }
}

/// Utilization series sanity: one series per worker, fractions within
/// [0, 1], occupancies non-negative.
fn audit_utilization(report: &RunReport, setup: &AuditSetup, v: &mut Vec<Violation>) {
    if report.node_utilization.is_empty() {
        return; // older report: nothing to check
    }
    if report.node_utilization.len() != setup.workers {
        push(
            v,
            "utilization-shape",
            format!(
                "{} utilization series for {} workers",
                report.node_utilization.len(),
                setup.workers
            ),
        );
        return;
    }
    for u in &report.node_utilization {
        for (name, series, max) in [
            ("cpu", &u.cpu, 1.0 + 1e-9),
            ("disk", &u.disk, 1.0 + 1e-9),
            ("nic", &u.nic, 1.0 + 1e-9),
            ("map_occupied", &u.map_occupied, f64::INFINITY),
            ("reduce_occupied", &u.reduce_occupied, f64::INFINITY),
        ] {
            for &(t, val) in series.points() {
                if !(0.0..=max).contains(&val) || !val.is_finite() {
                    push(
                        v,
                        "utilization-bounds",
                        format!("node {} {name} = {val} at {t} outside [0, {max}]", u.node),
                    );
                    break; // one violation per series is enough
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::job::{JobProfile, JobSpec};
    use crate::policy::StaticSlotPolicy;
    use simgrid::time::SimTime;

    fn run(record_events: bool, seed: u64) -> (RunReport, AuditSetup) {
        let mut cfg = EngineConfig::small_test(4, seed);
        cfg.record_events = record_events;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        let report = Engine::new(cfg.clone())
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("run succeeds");
        (report, AuditSetup::from_config(&cfg))
    }

    #[test]
    fn clean_run_has_no_violations() {
        let (report, setup) = run(true, 7);
        let violations = audit(&report, &setup);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn clean_run_without_events_still_audits_counters() {
        let (report, setup) = run(false, 7);
        assert!(report.events.is_empty());
        assert!(audit(&report, &setup).is_empty());
    }

    #[test]
    fn corrupted_counter_is_caught() {
        let (mut report, setup) = run(true, 7);
        // simulate a missed feed: drop 1 MB from the reduce-side ledger
        report.jobs[0].counters.add(Counter::ShuffleFetchedMb, -1.0);
        let violations = audit(&report, &setup);
        assert!(
            violations
                .iter()
                .any(|x| x.invariant == "shuffle-conservation"),
            "expected shuffle-conservation among {violations:?}"
        );
        // the cluster ledger no longer matches the merge either
        assert!(violations.iter().any(|x| x.invariant == "cluster-merge"));
    }

    #[test]
    fn phantom_kill_is_caught_by_event_crosscheck() {
        let (mut report, setup) = run(true, 7);
        report.jobs[0].counters.inc(Counter::KilledAttempts);
        report.counters.inc(Counter::KilledAttempts);
        let violations = audit(&report, &setup);
        assert!(
            violations.iter().any(|x| x.invariant == "event-count"),
            "expected event-count among {violations:?}"
        );
    }

    #[test]
    fn corrupted_locality_fraction_is_caught() {
        let (mut report, setup) = run(false, 7);
        report.jobs[0].local_map_fraction += 0.25;
        let violations = audit(&report, &setup);
        assert!(violations
            .iter()
            .any(|x| x.invariant == "locality-fraction"));
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let (a, _) = run(false, 7);
        let (b, _) = run(false, 7);
        assert_eq!(fingerprint(&a), fingerprint(&b), "same seed, same counters");
        let (c, _) = run(false, 8);
        assert_ne!(fingerprint(&a), fingerprint(&c), "different seed");
        let mut d = a.clone();
        d.counters.inc(Counter::SpilledRecords);
        assert_ne!(fingerprint(&a), fingerprint(&d), "sensitive to one bit");
    }

    fn run_with_spans() -> telemetry::Telemetry {
        let telem = telemetry::Telemetry::enabled();
        let cfg = EngineConfig::small_test(4, 7);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        Engine::new(cfg)
            .run_with(vec![job], &mut StaticSlotPolicy, &telem)
            .expect("run succeeds");
        telem
    }

    #[test]
    fn phase_means_cover_every_step_of_a_real_run() {
        let telem = run_with_spans();
        let means = phase_means(&telem).expect("spans recorded");
        assert!(means.steps_covered > 0);
        assert!(means.allocate_us >= 0.0 && means.allocate_us.is_finite());
        assert!(means.integrate_us >= 0.0 && means.integrate_us.is_finite());
        // fixed-mode runs skip the adaptive horizon phase entirely
        if let Some(h) = means.horizon_us {
            assert!(h >= 0.0 && h.is_finite());
        }
    }

    #[test]
    fn generous_phase_budget_passes_a_real_run() {
        let telem = run_with_spans();
        // 100x the default gate: loose enough for any CI machine, tight
        // enough that a pathological per-step regression (milliseconds
        // per step) still trips it
        let violations = audit_phase_spans(&telem, &PhaseBudget::scaled(100.0));
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn tiny_phase_budget_is_violated() {
        let telem = run_with_spans();
        let violations = audit_phase_spans(&telem, &PhaseBudget::scaled(0.0));
        assert!(
            violations.iter().any(|v| v.invariant == "phase_budget"),
            "zero budget must trip: {violations:?}"
        );
    }

    #[test]
    fn disabled_telemetry_cannot_pass_the_phase_gate() {
        let telem = telemetry::Telemetry::disabled();
        assert!(phase_means(&telem).is_none());
        let violations = audit_phase_spans(&telem, &PhaseBudget::default_gate());
        assert!(
            violations.iter().any(|v| v.invariant == "phase_budget"),
            "a gate that measured nothing must not pass: {violations:?}"
        );
    }

    #[test]
    fn violation_displays_with_invariant_name() {
        let x = Violation {
            invariant: "spill-identity",
            detail: "oops".into(),
        };
        assert_eq!(x.to_string(), "spill-identity: oops");
    }
}

//! Reusable per-cell engine allocations for batched sweeps.
//!
//! Each simulated cell needs a fixed family of scratch buffers: per-node
//! rate arrays rewritten by every allocate phase, the per-node task lists
//! and demand vector the node allocator walks, and the flow/purpose lists
//! handed to the fabric. A thread-per-cell sweep pays for all of them on
//! every cell; a pool worker driving thousands of cells should pay once.
//!
//! [`EngineArena`] owns that family between cells. The engine checks the
//! buffers out at cell start (reset **in place**: cleared and re-sized
//! into the existing backing allocation, never reconstructed), threads
//! them through the run as its ordinary scratch fields, and checks them
//! back in when the cell finishes. The arena counts **growth events** —
//! any checkout or run that had to enlarge a backing allocation — so the
//! steady state is testable: after one warm-up cell of a given shape,
//! subsequent same-shape cells must report zero growth.
//!
//! Reset-in-place invariants (what makes recycled buffers bit-safe):
//!
//! * every checked-out buffer is cleared and refilled to exactly the
//!   length a fresh `vec![fill; n]` would have, so reads never observe a
//!   previous cell's values;
//! * spare *capacity* beyond that length is invisible to the engine: all
//!   consumers iterate by length, never by capacity;
//! * no pointer, index, or id derived from a previous cell survives in
//!   the arena — only raw allocations do.
//!
//! Consequently a run produces byte-identical reports whether its scratch
//! came from a fresh allocation or a recycled arena; the determinism
//! suite in `tests/sweep_determinism.rs` holds this to the letter.

use crate::engine::{FetchPost, FlowPurpose, TaskRef};
use crate::policy::TrackerSnapshot;
use crate::task::MapAttemptId;
use simgrid::cluster::NodeId;
use simgrid::network::{FabricScratch, Flow, FlowId};
use simgrid::node::TaskDemand;

/// The number of distinct buffer families an arena recycles (used to size
/// the capacity-footprint snapshot taken at checkout).
const FAMILIES: usize = 17;

/// Reusable scratch allocations for one engine run at a time.
///
/// An arena is owned by one pool worker (or one sequential loop) and
/// passed to [`crate::Engine::run_in`] / [`crate::Engine::resume_in`];
/// it is not shareable across concurrent runs.
#[derive(Debug, Default)]
pub struct EngineArena {
    node_cpu: Vec<f64>,
    node_disk: Vec<f64>,
    nic_in: Vec<f64>,
    nic_out: Vec<f64>,
    occ_map: Vec<usize>,
    occ_reduce: Vec<usize>,
    node_tasks: Vec<Vec<(TaskRef, TaskDemand)>>,
    demands: Vec<TaskDemand>,
    flows: Vec<Flow>,
    purposes: Vec<(FlowId, FlowPurpose)>,
    fabric: FabricScratch,
    rates: Vec<f64>,
    scales: Vec<(TaskRef, f64)>,
    map_posts: Vec<(MapAttemptId, f64)>,
    fetch_posts: Vec<FetchPost>,
    sources: Vec<(NodeId, f64)>,
    snapshots: Vec<TrackerSnapshot>,
    /// Capacity footprint of the buffers currently checked out, recorded
    /// so check-in can detect growth that happened *during* the run.
    handed_caps: [usize; FAMILIES],
    growth_events: u64,
    cells: u64,
}

/// The scratch family one run threads through its step loop. Fresh runs
/// build it with [`Scratch::fresh`]; arena-backed runs check it out of an
/// [`EngineArena`] and return it on completion.
#[derive(Debug)]
pub(crate) struct Scratch {
    pub(crate) node_cpu: Vec<f64>,
    pub(crate) node_disk: Vec<f64>,
    pub(crate) nic_in: Vec<f64>,
    pub(crate) nic_out: Vec<f64>,
    pub(crate) occ_map: Vec<usize>,
    pub(crate) occ_reduce: Vec<usize>,
    pub(crate) node_tasks: Vec<Vec<(TaskRef, TaskDemand)>>,
    pub(crate) demands: Vec<TaskDemand>,
    pub(crate) flows: Vec<Flow>,
    pub(crate) purposes: Vec<(FlowId, FlowPurpose)>,
    pub(crate) fabric: FabricScratch,
    pub(crate) rates: Vec<f64>,
    pub(crate) scales: Vec<(TaskRef, f64)>,
    pub(crate) map_posts: Vec<(MapAttemptId, f64)>,
    pub(crate) fetch_posts: Vec<FetchPost>,
    pub(crate) sources: Vec<(NodeId, f64)>,
    pub(crate) snapshots: Vec<TrackerSnapshot>,
}

impl Scratch {
    /// Exactly the allocations a pre-arena run performed at construction.
    pub(crate) fn fresh(workers: usize) -> Scratch {
        Scratch {
            node_cpu: vec![0.0; workers],
            node_disk: vec![0.0; workers],
            nic_in: vec![0.0; workers],
            nic_out: vec![0.0; workers],
            occ_map: vec![0; workers],
            occ_reduce: vec![0; workers],
            node_tasks: vec![Vec::new(); workers],
            demands: Vec::new(),
            flows: Vec::new(),
            purposes: Vec::new(),
            fabric: FabricScratch::new(),
            rates: Vec::new(),
            scales: Vec::new(),
            map_posts: Vec::new(),
            fetch_posts: Vec::new(),
            sources: Vec::new(),
            snapshots: Vec::new(),
        }
    }

    /// Capacity footprint per buffer family. For the nested task lists the
    /// footprint folds the inner capacities in, so a run that grew any
    /// per-node list is visible at check-in.
    fn caps(&self) -> [usize; FAMILIES] {
        [
            self.node_cpu.capacity(),
            self.node_disk.capacity(),
            self.nic_in.capacity(),
            self.nic_out.capacity(),
            self.occ_map.capacity(),
            self.occ_reduce.capacity(),
            self.node_tasks.capacity()
                + self.node_tasks.iter().map(|v| v.capacity()).sum::<usize>(),
            self.demands.capacity(),
            self.flows.capacity(),
            self.purposes.capacity(),
            self.fabric.footprint(),
            self.rates.capacity(),
            self.scales.capacity(),
            self.map_posts.capacity(),
            self.fetch_posts.capacity(),
            self.sources.capacity(),
            self.snapshots.capacity(),
        ]
    }
}

/// Clear `vec` and refill it in place to `len` copies of `fill`.
/// Returns `true` when the backing allocation had to grow.
fn reset_filled<T: Clone>(vec: &mut Vec<T>, len: usize, fill: T) -> bool {
    let grew = vec.capacity() < len;
    vec.clear();
    vec.resize(len, fill);
    grew
}

impl EngineArena {
    pub fn new() -> EngineArena {
        EngineArena::default()
    }

    /// Cells whose scratch came out of recycled buffers — every checkout
    /// after this arena's first, which had to allocate fresh.
    pub fn cells_recycled(&self) -> u64 {
        self.cells.saturating_sub(1)
    }

    /// Total cells this arena has served, the fresh first one included.
    pub fn cells_served(&self) -> u64 {
        self.cells
    }

    /// Buffer-family growths observed so far: resizes at checkout plus
    /// any in-run growth detected at check-in. Constant across a
    /// steady-state loop of same-shape cells after the first.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }

    /// Approximate resident bytes held by the recycled buffer families —
    /// the scale bench's peak-memory proxy. Counts backing capacity, not
    /// live length, because capacity is what the process actually keeps.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_cpu.capacity() * size_of::<f64>()
            + self.node_disk.capacity() * size_of::<f64>()
            + self.nic_in.capacity() * size_of::<f64>()
            + self.nic_out.capacity() * size_of::<f64>()
            + self.occ_map.capacity() * size_of::<usize>()
            + self.occ_reduce.capacity() * size_of::<usize>()
            + self.node_tasks.capacity() * size_of::<Vec<(TaskRef, TaskDemand)>>()
            + self
                .node_tasks
                .iter()
                .map(|v| v.capacity() * size_of::<(TaskRef, TaskDemand)>())
                .sum::<usize>()
            + self.demands.capacity() * size_of::<TaskDemand>()
            + self.flows.capacity() * size_of::<Flow>()
            + self.purposes.capacity() * size_of::<(FlowId, FlowPurpose)>()
            + self.fabric.approx_bytes()
            + self.rates.capacity() * size_of::<f64>()
            + self.scales.capacity() * size_of::<(TaskRef, f64)>()
            + self.map_posts.capacity() * size_of::<(MapAttemptId, f64)>()
            + self.fetch_posts.capacity() * size_of::<FetchPost>()
            + self.sources.capacity() * size_of::<(NodeId, f64)>()
            + self.snapshots.capacity() * size_of::<TrackerSnapshot>()
    }

    /// Reset every buffer in place for a `workers`-node cell and hand the
    /// family out. The caller returns it via [`EngineArena::check_in`].
    pub(crate) fn checkout(&mut self, workers: usize) -> Scratch {
        let mut grew = 0u64;
        grew += u64::from(reset_filled(&mut self.node_cpu, workers, 0.0));
        grew += u64::from(reset_filled(&mut self.node_disk, workers, 0.0));
        grew += u64::from(reset_filled(&mut self.nic_in, workers, 0.0));
        grew += u64::from(reset_filled(&mut self.nic_out, workers, 0.0));
        grew += u64::from(reset_filled(&mut self.occ_map, workers, 0));
        grew += u64::from(reset_filled(&mut self.occ_reduce, workers, 0));
        grew += u64::from(self.node_tasks.capacity() < workers);
        for tasks in &mut self.node_tasks {
            tasks.clear();
        }
        self.node_tasks.resize_with(workers, Vec::new);
        self.demands.clear();
        self.flows.clear();
        self.purposes.clear();
        // the fabric scratch needs no reset: its slabs are epoch-stamped,
        // so stale lanes are invisible to the next allocation
        self.rates.clear();
        self.scales.clear();
        self.map_posts.clear();
        self.fetch_posts.clear();
        self.sources.clear();
        self.snapshots.clear();
        self.growth_events += grew;
        let scratch = Scratch {
            node_cpu: std::mem::take(&mut self.node_cpu),
            node_disk: std::mem::take(&mut self.node_disk),
            nic_in: std::mem::take(&mut self.nic_in),
            nic_out: std::mem::take(&mut self.nic_out),
            occ_map: std::mem::take(&mut self.occ_map),
            occ_reduce: std::mem::take(&mut self.occ_reduce),
            node_tasks: std::mem::take(&mut self.node_tasks),
            demands: std::mem::take(&mut self.demands),
            flows: std::mem::take(&mut self.flows),
            purposes: std::mem::take(&mut self.purposes),
            fabric: std::mem::take(&mut self.fabric),
            rates: std::mem::take(&mut self.rates),
            scales: std::mem::take(&mut self.scales),
            map_posts: std::mem::take(&mut self.map_posts),
            fetch_posts: std::mem::take(&mut self.fetch_posts),
            sources: std::mem::take(&mut self.sources),
            snapshots: std::mem::take(&mut self.snapshots),
        };
        self.handed_caps = scratch.caps();
        scratch
    }

    /// Take the family back after a run, folding in-run capacity growth
    /// into the growth counter.
    pub(crate) fn check_in(&mut self, scratch: Scratch) {
        for (before, after) in self.handed_caps.iter().zip(scratch.caps()) {
            if after > *before {
                self.growth_events += 1;
            }
        }
        self.node_cpu = scratch.node_cpu;
        self.node_disk = scratch.node_disk;
        self.nic_in = scratch.nic_in;
        self.nic_out = scratch.nic_out;
        self.occ_map = scratch.occ_map;
        self.occ_reduce = scratch.occ_reduce;
        self.node_tasks = scratch.node_tasks;
        self.demands = scratch.demands;
        self.flows = scratch.flows;
        self.purposes = scratch.purposes;
        self.fabric = scratch.fabric;
        self.rates = scratch.rates;
        self.scales = scratch.scales;
        self.map_posts = scratch.map_posts;
        self.fetch_posts = scratch.fetch_posts;
        self.sources = scratch.sources;
        self.snapshots = scratch.snapshots;
        self.cells += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_resets_lengths_and_counts_first_growth() {
        let mut arena = EngineArena::new();
        let s = arena.checkout(4);
        assert_eq!(s.node_cpu, vec![0.0; 4]);
        assert_eq!(s.occ_map, vec![0; 4]);
        assert_eq!(s.node_tasks.len(), 4);
        let first_growth = arena.growth_events();
        assert!(first_growth > 0, "cold checkout must allocate");
        arena.check_in(s);
        assert_eq!(arena.cells_served(), 1);
        assert_eq!(arena.cells_recycled(), 0, "first cell allocated fresh");

        // same shape again: everything fits in place, zero growth
        let s = arena.checkout(4);
        arena.check_in(s);
        assert_eq!(arena.growth_events(), first_growth);
        assert_eq!(arena.cells_served(), 2);
        assert_eq!(arena.cells_recycled(), 1);
    }

    #[test]
    fn checkout_scrubs_previous_cell_contents() {
        let mut arena = EngineArena::new();
        let mut s = arena.checkout(2);
        s.node_cpu[0] = 7.5;
        s.occ_map[1] = 3;
        s.demands.push(TaskDemand {
            cpu_cores: 1.0,
            threads: 1,
            mem_mb: 1.0,
            disk_read: 1.0,
            disk_write: 1.0,
        });
        arena.check_in(s);

        let s = arena.checkout(2);
        assert_eq!(s.node_cpu, vec![0.0; 2]);
        assert_eq!(s.occ_map, vec![0; 2]);
        assert!(s.demands.is_empty());
        arena.check_in(s);
    }

    #[test]
    fn in_run_growth_is_detected_at_check_in() {
        let mut arena = EngineArena::new();
        let s = arena.checkout(2);
        arena.check_in(s);
        let before = arena.growth_events();
        let mut s = arena.checkout(2);
        s.flows.reserve(1024); // a run that outgrew its flow list
        arena.check_in(s);
        assert!(arena.growth_events() > before);
    }

    #[test]
    fn wider_cluster_grows_then_stabilises() {
        let mut arena = EngineArena::new();
        for workers in [2usize, 8, 8, 8] {
            let s = arena.checkout(workers);
            arena.check_in(s);
        }
        let after_wide = arena.growth_events();
        // shrinking back re-uses the wide allocation: no growth
        let s = arena.checkout(4);
        arena.check_in(s);
        assert_eq!(arena.growth_events(), after_wide);
    }
}

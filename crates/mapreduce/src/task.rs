//! Task state machines.
//!
//! A **map task** processes one input block: `work = input + spill_weight ×
//! output` equivalent-MB, consumed at the profile's nominal rate scaled by
//! node contention (and by the remote-read flow when its block is not
//! local). On completion its output becomes fetchable by every reduce.
//!
//! A **reduce task** walks shuffle → sort → reduce. The shuffle phase
//! overlaps running maps (it can only fetch output of *finished* maps) and
//! cannot complete before the job's last map does — the synchronisation
//! barrier of §II-A.

use crate::job::{JobId, JobProfile};
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::node::TaskDemand;
use simgrid::time::SimTime;

/// Identifier of a map task within its job (block index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapTaskId {
    pub job: JobId,
    pub index: usize,
}

/// Identifier of one execution attempt of a map task. Attempt 0 is the
/// original; attempt 1 is a speculative backup launched for a straggler
/// (Hadoop's speculative execution). The first attempt to finish delivers
/// the block; its sibling is killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MapAttemptId {
    pub task: MapTaskId,
    pub attempt: u8,
}

impl MapAttemptId {
    /// The original (non-speculative) attempt of a task.
    pub fn original(task: MapTaskId) -> MapAttemptId {
        MapAttemptId { task, attempt: 0 }
    }

    /// The speculative backup of a task.
    pub fn backup(task: MapTaskId) -> MapAttemptId {
        MapAttemptId { task, attempt: 1 }
    }
}

/// Identifier of a reduce task within its job (partition index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReduceTaskId {
    pub job: JobId,
    pub partition: usize,
}

/// A running map task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapTask {
    pub id: MapTaskId,
    /// Tracker node executing the task.
    pub node: NodeId,
    /// Input block size (MB).
    pub input_mb: f64,
    /// Output it will produce on completion (MB).
    pub output_mb: f64,
    /// Equivalent-MB of work remaining (input + weighted spill).
    pub work_remaining: f64,
    /// Total work at start (for progress reporting).
    pub work_total: f64,
    /// Input MB not yet consumed (drives the input-rate meter).
    pub input_remaining: f64,
    /// `None` when the block is node-local; `Some(src)` when input streams
    /// from a remote replica holder over the fabric.
    pub remote_src: Option<NodeId>,
    pub started_at: SimTime,
}

impl MapTask {
    /// Equivalent seconds of fixed per-map-task overhead (JVM launch, task
    /// setup/commit) folded into the task's work at its nominal rate.
    pub const MAP_SETUP_S: f64 = 1.0;

    /// Build a task for a block of `input_mb`, applying the deterministic
    /// per-task service-time `jitter` factor (≥ 0; 1.0 = nominal). The
    /// [`MapTask::MAP_SETUP_S`] overhead is added on top of the data work.
    pub fn new(
        id: MapTaskId,
        node: NodeId,
        profile: &JobProfile,
        input_mb: f64,
        remote_src: Option<NodeId>,
        jitter: f64,
        now: SimTime,
    ) -> MapTask {
        let output_mb = input_mb * profile.map_selectivity;
        let work = (input_mb + profile.spill_weight * output_mb) * jitter.max(0.05)
            + profile.map_rate * Self::MAP_SETUP_S;
        MapTask {
            id,
            node,
            input_mb,
            output_mb,
            work_remaining: work,
            work_total: work,
            input_remaining: input_mb,
            remote_src,
            started_at: now,
        }
    }

    /// Fraction complete in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.work_total <= 0.0 {
            1.0
        } else {
            1.0 - self.work_remaining / self.work_total
        }
    }

    pub fn is_done(&self) -> bool {
        self.work_remaining <= 1e-9
    }

    /// Effective work rate (equivalent-MB/s) at node contention `scale`
    /// given `read_rate` MB/s of granted remote-read bandwidth: compute
    /// and input delivery proceed in lockstep, so a remote map runs at
    /// whichever is slower. This is the piecewise-constant rate the
    /// adaptive stepper integrates until the next event.
    pub fn effective_work_rate(&self, profile: &JobProfile, scale: f64, read_rate: f64) -> f64 {
        let compute = profile.map_rate * scale;
        if self.remote_src.is_some() && self.input_remaining > 1e-9 && self.input_mb > 0.0 {
            compute.min(read_rate * self.work_total / self.input_mb)
        } else {
            compute
        }
    }

    /// Seconds until this task completes at a constant `work_rate`
    /// (equivalent-MB/s); `None` when stalled (rate ≈ 0).
    pub fn time_to_completion(&self, work_rate: f64) -> Option<f64> {
        (work_rate > 1e-9).then(|| self.work_remaining.max(0.0) / work_rate)
    }

    /// True once cumulative progress has reached the `frac` threshold.
    /// This is the *exact complement* of [`MapTask::time_to_progress`]
    /// returning `None` for a running task: both compare the same
    /// work-units expression against the same epsilon, so a failure point
    /// the stepper stops proposing is guaranteed to have fired. (Comparing
    /// `progress() >= frac` instead divides by `work_total` first and can
    /// land a hair *below* the threshold the undivided form already
    /// considers reached — the event is then skipped forever.)
    pub fn reached_progress(&self, frac: f64) -> bool {
        frac * self.work_total - (self.work_total - self.work_remaining) <= 1e-9
    }

    /// Seconds until cumulative progress crosses `frac` at a constant
    /// `work_rate`; `None` when stalled or already past the threshold
    /// (used to schedule injected failure points as discrete events).
    pub fn time_to_progress(&self, frac: f64, work_rate: f64) -> Option<f64> {
        if work_rate <= 1e-9 {
            return None;
        }
        let work_to_go = frac * self.work_total - (self.work_total - self.work_remaining);
        (work_to_go > 1e-9).then(|| work_to_go / work_rate)
    }

    /// Advance by `work_mb` equivalent-MB of processing; returns the
    /// `(input, output)` MB attributable to this step, for the tracker's
    /// rate meters. Input and output are spread proportionally over the
    /// work so the meters see the cluster's true production *rate* (a
    /// 48-task simulated wave would otherwise turn completion-credited
    /// output into meter bursts far lumpier than a real cluster's
    /// thousands of desynchronised tasks).
    pub fn advance(&mut self, work_mb: f64) -> (f64, f64) {
        let step = work_mb.min(self.work_remaining);
        self.work_remaining -= step;
        let frac = if self.work_total > 0.0 {
            step / self.work_total
        } else {
            0.0
        };
        let consumed = (frac * self.input_mb).min(self.input_remaining);
        self.input_remaining -= consumed;
        let produced = frac * self.output_mb;
        (consumed, produced)
    }
}

/// Phase of a reduce task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReducePhase {
    /// Fetching map-output partitions; overlaps the map waves.
    Shuffle,
    /// Merging/sorting fetched data (after the barrier).
    Sort,
    /// Applying the reduce function and writing output.
    Reduce,
    Done,
}

/// A running reduce task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReduceTask {
    pub id: ReduceTaskId,
    pub node: NodeId,
    pub phase: ReducePhase,
    /// MB fetched so far, per source node (indexed by `NodeId.0`).
    pub fetched_by_src: Vec<f64>,
    /// Total MB fetched.
    pub fetched_mb: f64,
    /// Work remaining in the current post-shuffle phase (MB).
    pub phase_remaining: f64,
    /// Total work of the current post-shuffle phase (MB), for progress.
    pub phase_total: f64,
    /// Fixed overhead added to the sort phase (MB-equivalent).
    pub sort_setup_mb: f64,
    /// Fixed overhead added to the reduce phase (MB-equivalent).
    pub reduce_setup_mb: f64,
    /// Size of this task's full partition; fixed once the last map finishes.
    pub partition_mb: Option<f64>,
    /// Per-task service jitter applied to sort/reduce work.
    pub jitter: f64,
    pub started_at: SimTime,
    /// Instant the shuffle phase completed (barrier + fetch complete).
    pub shuffle_done_at: Option<SimTime>,
}

impl ReduceTask {
    /// Equivalent seconds of fixed overhead per post-shuffle phase
    /// (merge-file open/close, output commit) at the phase's nominal rate.
    pub const PHASE_SETUP_S: f64 = 0.7;

    pub fn new(id: ReduceTaskId, node: NodeId, workers: usize, jitter: f64, now: SimTime) -> Self {
        ReduceTask {
            id,
            node,
            phase: ReducePhase::Shuffle,
            fetched_by_src: vec![0.0; workers],
            fetched_mb: 0.0,
            phase_remaining: 0.0,
            phase_total: 0.0,
            sort_setup_mb: 0.0,
            reduce_setup_mb: 0.0,
            partition_mb: None,
            jitter: jitter.max(0.05),
            started_at: now,
            shuffle_done_at: None,
        }
    }

    /// A task whose sort/reduce phases carry the profile's fixed setup
    /// overheads (what the engine constructs).
    pub fn with_profile_overheads(
        id: ReduceTaskId,
        node: NodeId,
        workers: usize,
        profile: &JobProfile,
        jitter: f64,
        now: SimTime,
    ) -> Self {
        let mut t = ReduceTask::new(id, node, workers, jitter, now);
        t.sort_setup_mb = profile.sort_rate * Self::PHASE_SETUP_S;
        t.reduce_setup_mb = profile.reduce_rate * Self::PHASE_SETUP_S;
        t
    }

    /// Record `mb` fetched from `src`.
    pub fn record_fetch(&mut self, src: NodeId, mb: f64) {
        debug_assert!(mb >= 0.0);
        self.fetched_by_src[src.0] += mb;
        self.fetched_mb += mb;
    }

    /// Hadoop-style progress in `[0, 1]`: shuffle, sort and reduce each
    /// contribute one third.
    pub fn progress(&self) -> f64 {
        match self.phase {
            ReducePhase::Shuffle => match self.partition_mb {
                Some(total) if total > 0.0 => (self.fetched_mb / total).min(1.0) / 3.0,
                Some(_) => 1.0 / 3.0,
                // before the barrier the full partition size is unknown;
                // report optimistically against what is fetchable
                None => 0.0_f64.max((self.fetched_mb / (self.fetched_mb + 1.0)) / 3.0),
            },
            ReducePhase::Sort => {
                let total = self.phase_total.max(1e-9);
                1.0 / 3.0 + (1.0 - self.phase_remaining / total).clamp(0.0, 1.0) / 3.0
            }
            ReducePhase::Reduce => {
                let total = self.phase_total.max(1e-9);
                2.0 / 3.0 + (1.0 - self.phase_remaining / total).clamp(0.0, 1.0) / 3.0
            }
            ReducePhase::Done => 1.0,
        }
    }

    /// Called when the barrier is crossed *and* all fetches for this task
    /// have completed: fixes the partition size and enters the sort phase.
    pub fn finish_shuffle(&mut self, partition_mb: f64, now: SimTime) {
        debug_assert_eq!(self.phase, ReducePhase::Shuffle);
        self.partition_mb = Some(partition_mb);
        self.phase = ReducePhase::Sort;
        self.phase_total = partition_mb * self.jitter + self.sort_setup_mb;
        self.phase_remaining = self.phase_total;
        self.shuffle_done_at = Some(now);
    }

    /// Advance the current sort/reduce phase by `work_mb`; transitions
    /// phases when they complete. Returns `true` if the task just finished.
    pub fn advance_compute(&mut self, work_mb: f64) -> bool {
        match self.phase {
            ReducePhase::Sort => {
                self.phase_remaining -= work_mb;
                if self.phase_remaining <= 1e-9 {
                    self.phase = ReducePhase::Reduce;
                    self.phase_total = self.partition_mb.expect("sort implies barrier")
                        * self.jitter
                        + self.reduce_setup_mb;
                    self.phase_remaining = self.phase_total;
                    // nothing to do at all finishes instantly
                    if self.phase_remaining <= 1e-9 {
                        self.phase = ReducePhase::Done;
                        return true;
                    }
                }
                false
            }
            ReducePhase::Reduce => {
                self.phase_remaining -= work_mb;
                if self.phase_remaining <= 1e-9 {
                    self.phase = ReducePhase::Done;
                    return true;
                }
                false
            }
            ReducePhase::Shuffle | ReducePhase::Done => false,
        }
    }

    /// Demand this task places on its node in its current phase.
    pub fn demand(&self, profile: &JobProfile) -> TaskDemand {
        match self.phase {
            ReducePhase::Shuffle => profile.shuffle_demand(),
            ReducePhase::Sort | ReducePhase::Reduce => profile.reduce_demand(),
            ReducePhase::Done => TaskDemand::IDLE,
        }
    }

    /// Nominal processing rate of the current compute phase (MB/s).
    pub fn phase_rate(&self, profile: &JobProfile) -> f64 {
        match self.phase {
            ReducePhase::Sort => profile.sort_rate,
            ReducePhase::Reduce => profile.reduce_rate,
            _ => 0.0,
        }
    }

    /// Seconds until the current sort/reduce phase completes at a constant
    /// effective `rate` MB/s; `None` when stalled or not in a compute
    /// phase. Phase completion must be a step boundary for the adaptive
    /// stepper: [`ReduceTask::advance_compute`] discards work overshooting
    /// a transition, so landing exactly on it loses nothing.
    pub fn time_to_phase_completion(&self, rate: f64) -> Option<f64> {
        match self.phase {
            ReducePhase::Sort | ReducePhase::Reduce => {
                (rate > 1e-9).then(|| self.phase_remaining.max(0.0) / rate)
            }
            ReducePhase::Shuffle | ReducePhase::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid() -> MapTaskId {
        MapTaskId {
            job: JobId(0),
            index: 0,
        }
    }

    fn rid() -> ReduceTaskId {
        ReduceTaskId {
            job: JobId(0),
            partition: 0,
        }
    }

    #[test]
    fn map_task_work_includes_spill_and_setup() {
        let p = JobProfile::synthetic_reduce_heavy(); // selectivity 1, spill 0.5
        let t = MapTask::new(mid(), NodeId(0), &p, 128.0, None, 1.0, SimTime::ZERO);
        let expected = 128.0 * 1.5 + p.map_rate * MapTask::MAP_SETUP_S;
        assert!((t.work_total - expected).abs() < 1e-9);
        assert!((t.output_mb - 128.0).abs() < 1e-9);
    }

    #[test]
    fn map_task_advance_and_progress() {
        let p = JobProfile::synthetic_map_heavy();
        let mut t = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.0, SimTime::ZERO);
        assert_eq!(t.progress(), 0.0);
        let (consumed, produced) = t.advance(t.work_total / 2.0);
        assert!((t.progress() - 0.5).abs() < 1e-9);
        assert!((consumed - 50.0).abs() < 1e-9, "half the input consumed");
        assert!((produced - t.output_mb / 2.0).abs() < 1e-9);
        // setup overhead is part of the work
        assert!(t.work_total > 100.0 + p.spill_weight * 100.0 * p.map_selectivity);
        assert!(!t.is_done());
        t.advance(f64::INFINITY);
        assert!(t.is_done());
        assert!((t.progress() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn map_task_input_consumption_conserved() {
        let p = JobProfile::synthetic_reduce_heavy();
        let mut t = MapTask::new(mid(), NodeId(0), &p, 128.0, None, 1.0, SimTime::ZERO);
        let (mut total_in, mut total_out) = (0.0, 0.0);
        while !t.is_done() {
            let (i, o) = t.advance(10.0);
            total_in += i;
            total_out += o;
        }
        assert!((total_in - 128.0).abs() < 1e-6);
        assert!((total_out - t.output_mb).abs() < 1e-6, "output conserved");
    }

    #[test]
    fn jitter_scales_work() {
        let p = JobProfile::synthetic_map_heavy();
        let fast = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 0.9, SimTime::ZERO);
        let slow = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.1, SimTime::ZERO);
        assert!(fast.work_total < slow.work_total);
    }

    #[test]
    fn reduce_phases_walk_in_order() {
        let p = JobProfile::synthetic_reduce_heavy();
        let mut r = ReduceTask::new(rid(), NodeId(1), 4, 1.0, SimTime::ZERO);
        assert_eq!(r.phase, ReducePhase::Shuffle);
        r.record_fetch(NodeId(0), 60.0);
        r.record_fetch(NodeId(2), 40.0);
        assert_eq!(r.fetched_mb, 100.0);
        r.finish_shuffle(100.0, SimTime::from_secs(10));
        assert_eq!(r.phase, ReducePhase::Sort);
        assert!(!r.advance_compute(50.0));
        assert_eq!(r.phase, ReducePhase::Sort);
        assert!(!r.advance_compute(50.0)); // sort done -> reduce begins
        assert_eq!(r.phase, ReducePhase::Reduce);
        assert!(r.advance_compute(100.0));
        assert_eq!(r.phase, ReducePhase::Done);
        let _ = p;
    }

    #[test]
    fn reduce_progress_monotone_through_phases() {
        let mut r = ReduceTask::new(rid(), NodeId(0), 2, 1.0, SimTime::ZERO);
        let mut last = r.progress();
        r.record_fetch(NodeId(0), 30.0);
        assert!(r.progress() >= last);
        last = r.progress();
        r.finish_shuffle(30.0, SimTime::from_secs(1));
        assert!(r.progress() >= last - 1e-9);
        while r.phase != ReducePhase::Done {
            r.advance_compute(5.0);
            assert!(r.progress() >= last - 1e-9);
            last = r.progress();
        }
        assert_eq!(r.progress(), 1.0);
    }

    #[test]
    fn zero_partition_reduce_completes_immediately() {
        let mut r = ReduceTask::new(rid(), NodeId(0), 2, 1.0, SimTime::ZERO);
        r.finish_shuffle(0.0, SimTime::ZERO);
        // sort of nothing transitions straight through
        assert!(r.advance_compute(0.0) || r.phase == ReducePhase::Done);
        assert_eq!(r.phase, ReducePhase::Done);
    }

    #[test]
    fn profile_overheads_lengthen_phases() {
        let p = JobProfile::synthetic_reduce_heavy();
        let mut bare = ReduceTask::new(rid(), NodeId(0), 2, 1.0, SimTime::ZERO);
        let mut heavy =
            ReduceTask::with_profile_overheads(rid(), NodeId(0), 2, &p, 1.0, SimTime::ZERO);
        bare.finish_shuffle(100.0, SimTime::ZERO);
        heavy.finish_shuffle(100.0, SimTime::ZERO);
        assert!(heavy.phase_remaining > bare.phase_remaining);
        // even a zero partition takes the setup time with overheads
        let mut zero =
            ReduceTask::with_profile_overheads(rid(), NodeId(0), 2, &p, 1.0, SimTime::ZERO);
        zero.finish_shuffle(0.0, SimTime::ZERO);
        assert!(!zero.advance_compute(1.0), "setup keeps it busy briefly");
        assert!(!zero.advance_compute(1e9), "reduce-phase setup remains");
        assert!(zero.advance_compute(1e9));
        assert_eq!(zero.phase, ReducePhase::Done);
    }

    #[test]
    fn completion_time_queries_match_integration() {
        let p = JobProfile::synthetic_map_heavy();
        let mut t = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.0, SimTime::ZERO);
        let rate = 25.0;
        let eta = t.time_to_completion(rate).unwrap();
        // integrating for exactly eta finishes the task
        t.advance(rate * eta);
        assert!(t.is_done());
        assert_eq!(t.time_to_completion(0.0), None, "stalled task never ends");
        // progress-crossing query: crossing 0.5 takes half the completion time
        let t2 = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.0, SimTime::ZERO);
        let half = t2.time_to_progress(0.5, rate).unwrap();
        assert!((half * 2.0 - eta).abs() < 1e-9);
        assert_eq!(t2.time_to_progress(-0.1, rate), None, "already past");
    }

    #[test]
    fn failure_point_exactly_at_progress_is_reached() {
        let p = JobProfile::synthetic_map_heavy();
        let mut t = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.0, SimTime::ZERO);
        let rate = 25.0;
        let fail_at = 0.37;
        let eta = t.time_to_progress(fail_at, rate).expect("not yet reached");
        t.advance(rate * eta);
        // integrating to exactly the crossing instant can leave progress()
        // an ulp below fail_at; the undivided check must still report the
        // threshold reached the moment the query stops proposing it
        assert!(t.reached_progress(fail_at));
        assert_eq!(t.time_to_progress(fail_at, rate), None);
    }

    #[test]
    fn effective_rate_caps_remote_reads_only() {
        let p = JobProfile::synthetic_map_heavy();
        let local = MapTask::new(mid(), NodeId(0), &p, 100.0, None, 1.0, SimTime::ZERO);
        let remote = MapTask::new(
            mid(),
            NodeId(0),
            &p,
            100.0,
            Some(NodeId(1)),
            1.0,
            SimTime::ZERO,
        );
        // local maps ignore the read rate entirely
        assert_eq!(
            local.effective_work_rate(&p, 1.0, 0.0),
            p.map_rate,
            "local map at full speed"
        );
        // a starved remote map is delivery-bound
        assert_eq!(remote.effective_work_rate(&p, 1.0, 0.0), 0.0);
        let slow = remote.effective_work_rate(&p, 1.0, 1.0);
        assert!((slow - remote.work_total / 100.0).abs() < 1e-9);
        // ample bandwidth: compute-bound again
        assert_eq!(remote.effective_work_rate(&p, 0.5, 1e9), p.map_rate * 0.5);
    }

    #[test]
    fn reduce_phase_completion_query_matches_integration() {
        let p = JobProfile::synthetic_reduce_heavy();
        let mut r = ReduceTask::with_profile_overheads(rid(), NodeId(0), 2, &p, 1.0, SimTime::ZERO);
        assert_eq!(r.time_to_phase_completion(10.0), None, "shuffling");
        r.finish_shuffle(100.0, SimTime::ZERO);
        let rate = 40.0;
        let eta = r.time_to_phase_completion(rate).unwrap();
        assert!(!r.advance_compute(rate * eta * 0.999), "just short");
        assert_eq!(r.phase, ReducePhase::Sort);
        // the remainder lands the transition exactly
        let eta2 = r.time_to_phase_completion(rate).unwrap();
        r.advance_compute(rate * eta2);
        assert_eq!(r.phase, ReducePhase::Reduce);
        assert_eq!(r.time_to_phase_completion(0.0), None, "stalled");
    }

    #[test]
    fn demand_tracks_phase() {
        let p = JobProfile::synthetic_reduce_heavy();
        let mut r = ReduceTask::new(rid(), NodeId(0), 2, 1.0, SimTime::ZERO);
        assert_eq!(r.demand(&p).threads, p.shuffle_fetchers);
        r.finish_shuffle(10.0, SimTime::ZERO);
        assert_eq!(r.demand(&p).cpu_cores, p.reduce_cpu);
        assert_eq!(r.phase_rate(&p), p.sort_rate);
        while !r.advance_compute(5.0) {}
        assert_eq!(r.phase_rate(&p), 0.0);
    }

    proptest::proptest! {
        /// Work conservation of the piecewise-constant integrator: at a
        /// constant rate, advancing a map task over `dt` consumes and
        /// produces exactly the same bytes whether taken as one macro-step
        /// or as any partition into sub-steps. This is the property that
        /// lets the adaptive stepper replace N fixed ticks with one step.
        #[test]
        fn prop_map_advance_is_partition_invariant(
            input_mb in 1.0f64..2048.0,
            rate in 0.5f64..500.0,
            jitter in 0.5f64..2.0,
            splits in proptest::collection::vec(0.01f64..1.0, 1..40),
        ) {
            let p = JobProfile::synthetic_reduce_heavy();
            let dt_total: f64 = splits.iter().sum();
            let mut whole = MapTask::new(mid(), NodeId(0), &p, input_mb, None, jitter, SimTime::ZERO);
            let (wc, wp) = whole.advance(rate * dt_total);
            let mut parts = MapTask::new(mid(), NodeId(0), &p, input_mb, None, jitter, SimTime::ZERO);
            let (mut pc, mut pp) = (0.0, 0.0);
            for dt in &splits {
                let (c, o) = parts.advance(rate * dt);
                pc += c;
                pp += o;
            }
            let tol = 1e-6 * input_mb.max(1.0);
            proptest::prop_assert!((wc - pc).abs() < tol, "consumed {wc} vs {pc}");
            proptest::prop_assert!((wp - pp).abs() < tol, "produced {wp} vs {pp}");
            proptest::prop_assert!((whole.work_remaining - parts.work_remaining).abs() < tol);
            proptest::prop_assert!((whole.input_remaining - parts.input_remaining).abs() < tol);
            proptest::prop_assert_eq!(whole.is_done(), parts.is_done());
        }

        /// `time_to_progress` and `reached_progress` are complements: for
        /// a running task, either the stepper still has an ETA to the
        /// threshold (and integrating that long reaches it), or the
        /// threshold is already reached. No third state where the event is
        /// silently dropped.
        #[test]
        fn prop_progress_threshold_never_skipped(
            input_mb in 1.0f64..2048.0,
            rate in 0.5f64..500.0,
            jitter in 0.5f64..2.0,
            frac in 0.0f64..1.0,
            adv in 0.0f64..1.5,
        ) {
            let p = JobProfile::synthetic_map_heavy();
            let mut t = MapTask::new(mid(), NodeId(0), &p, input_mb, None, jitter, SimTime::ZERO);
            t.advance(t.work_total * adv);
            match t.time_to_progress(frac, rate) {
                None => proptest::prop_assert!(t.reached_progress(frac)),
                Some(eta) => {
                    proptest::prop_assert!(!t.reached_progress(frac));
                    t.advance(rate * eta);
                    proptest::prop_assert!(t.reached_progress(frac));
                }
            }
        }

        /// The same partition invariance for a reduce task's sort+reduce
        /// phases: total work to Done is independent of step sizes (phase
        /// transitions discard overshoot, so sub-steps can only ever need
        /// *more* work, never less — bounded by one extra step per phase).
        #[test]
        fn prop_reduce_compute_partition_invariant(
            partition_mb in 0.0f64..512.0,
            jitter in 0.5f64..2.0,
            chunk in 0.5f64..64.0,
        ) {
            let p = JobProfile::synthetic_reduce_heavy();
            let mk = || {
                let mut r = ReduceTask::with_profile_overheads(
                    rid(), NodeId(0), 2, &p, jitter, SimTime::ZERO);
                r.finish_shuffle(partition_mb, SimTime::ZERO);
                r
            };
            // exact phase-boundary stepping (what the adaptive loop does)
            let mut exact = mk();
            let mut exact_work = 0.0;
            while exact.phase != ReducePhase::Done {
                let w = exact.phase_remaining;
                exact.advance_compute(w);
                exact_work += w;
            }
            // fixed chunks (what the fixed-tick loop does)
            let mut chunked = mk();
            let mut chunked_work = 0.0;
            let mut steps = 0;
            while chunked.phase != ReducePhase::Done {
                chunked.advance_compute(chunk);
                chunked_work += chunk;
                steps += 1;
                proptest::prop_assert!(steps < 1_000_000, "diverged");
            }
            // chunked stepping overshoots each of the two transitions by
            // less than one chunk; it can never finish with less work
            proptest::prop_assert!(chunked_work + 1e-9 >= exact_work);
            proptest::prop_assert!(chunked_work <= exact_work + 2.0 * chunk + 1e-9);
        }
    }
}

//! The slot-policy interface: who decides how many slots each tracker has.
//!
//! The engine calls [`SlotPolicy::decide`] once per heartbeat round with the
//! aggregated [`ClusterStats`] and a per-tracker snapshot; the policy
//! returns slot-target directives which the job tracker sends to the
//! trackers in its heartbeat responses (and the trackers apply lazily).
//!
//! * HadoopV1 ⇒ [`StaticSlotPolicy`] (never changes anything);
//! * YARN ⇒ `yarn::CapacityPolicy` (flexible container budget,
//!   map-priority);
//! * SMapReduce ⇒ `smapreduce::SlotManagerPolicy` (the paper).

use crate::stats::ClusterStats;
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::time::SimTime;

/// Per-tracker state visible to policies.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrackerSnapshot {
    pub node: NodeId,
    /// CPU cores of this tracker's machine (policies that scale targets to
    /// node capacity — the heterogeneous extension — read this; the
    /// paper's uniform policies ignore it).
    pub cores: f64,
    pub map_target: usize,
    pub map_occupied: usize,
    pub reduce_target: usize,
    pub reduce_occupied: usize,
}

/// Everything a policy may consult when deciding.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    pub now: SimTime,
    pub stats: &'a ClusterStats,
    pub trackers: &'a [TrackerSnapshot],
    /// Initial (user-configured) slot counts, the baseline the paper's
    /// slot manager starts from.
    pub init_map_slots: usize,
    pub init_reduce_slots: usize,
}

/// A slot-target command for one tracker, delivered via its next heartbeat
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotDirective {
    pub node: NodeId,
    pub map_slots: usize,
    pub reduce_slots: usize,
}

/// One policy decision, in policy-neutral form, for the run's flight
/// recorder. Adaptive policies (SMapReduce's slot manager) translate their
/// internal audit records into these so the engine can embed them in the
/// [`crate::RunReport`] and the dashboard can attribute every slot
/// reassignment to the signals that drove it. Static policies record
/// nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyDecisionRecord {
    pub at: SimTime,
    /// Stable snake_case decision label (e.g. `increment_maps`).
    pub decision: String,
    /// Per-node slot targets after the decision.
    pub map_target: usize,
    pub reduce_target: usize,
    /// The paper's utilisation function f, when computable this round.
    pub f: Option<f64>,
    /// Shuffle rate Rs (MB/s) observed this round.
    pub rs: f64,
    /// Map output rate Rm (MB/s) observed this round.
    pub rm: f64,
}

/// A slot-management policy.
pub trait SlotPolicy {
    /// Stable display name ("HadoopV1", "YARN", "SMapReduce").
    fn name(&self) -> &'static str;

    /// Called once per heartbeat round. Returning an empty vec leaves all
    /// targets unchanged.
    fn decide(&mut self, ctx: &PolicyContext<'_>) -> Vec<SlotDirective>;

    /// Per-decision bookkeeping overhead in equivalent milliseconds of
    /// engine stall, charged once per *applied* directive. Models the small
    /// management cost the paper observes on Terasort. Zero by default.
    fn directive_overhead_ms(&self) -> u64 {
        0
    }

    /// Give the policy a telemetry handle to emit decision-audit events
    /// through. Called by the engine before a run starts; policies without
    /// observability needs ignore it.
    fn attach_telemetry(&mut self, _telem: &telemetry::Telemetry) {}

    /// Decision records accumulated over the run, drained by the engine at
    /// report time and embedded in the [`crate::RunReport`]. Policies with
    /// no audit trail return nothing.
    fn decision_records(&self) -> Vec<PolicyDecisionRecord> {
        Vec::new()
    }

    /// Serialize the policy's *mutable* run state for a checkpoint capsule.
    /// Configuration is not included — a restored policy is constructed
    /// fresh (with its configuration) and then handed this value. Stateless
    /// policies return [`serde::Value::Null`].
    fn snapshot_state(&self) -> serde::Value {
        serde::Value::Null
    }

    /// Restore run state captured by [`SlotPolicy::snapshot_state`] into a
    /// freshly constructed policy. `Null` means "fresh" and must be
    /// accepted by every implementation (it is what a capsule taken before
    /// the first decision carries).
    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), serde::Error> {
        Ok(())
    }
}

/// HadoopV1: statically configured slots, never adjusted at runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticSlotPolicy;

impl SlotPolicy for StaticSlotPolicy {
    fn name(&self) -> &'static str {
        "HadoopV1"
    }

    fn decide(&mut self, _ctx: &PolicyContext<'_>) -> Vec<SlotDirective> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_never_directs() {
        let stats = ClusterStats::default();
        let trackers = [TrackerSnapshot {
            node: NodeId(0),
            cores: 16.0,
            map_target: 3,
            map_occupied: 1,
            reduce_target: 2,
            reduce_occupied: 0,
        }];
        let ctx = PolicyContext {
            now: SimTime::from_secs(10),
            stats: &stats,
            trackers: &trackers,
            init_map_slots: 3,
            init_reduce_slots: 2,
        };
        let mut p = StaticSlotPolicy;
        assert!(p.decide(&ctx).is_empty());
        assert_eq!(p.name(), "HadoopV1");
        assert_eq!(p.directive_overhead_ms(), 0);
        assert!(p.decision_records().is_empty());
    }
}

//! Job bookkeeping and the FIFO task scheduler.
//!
//! The job tracker holds one [`JobInProgress`] per submitted job and
//! assigns tasks to trackers on heartbeats: map tasks prefer a data-local
//! block (HDFS replica on the requesting node), reduce tasks start once the
//! job has passed its *reduce slow-start* fraction of completed maps
//! (Hadoop's `mapred.reduce.slowstart.completed.maps`, default 0.05 —
//! distinct from the slot manager's own 10 % slow start). Jobs are served
//! in submission order (the FIFO scheduler used in the paper's multi-job
//! experiments).

use crate::job::JobSpec;
use crate::shuffle::ShuffleState;
use crate::task::{MapTaskId, ReduceTaskId};
use dfs::FileLayout;
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::metrics::TimeSeries;
use simgrid::time::SimTime;

/// Job-tracker-side state of one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobInProgress {
    pub spec: JobSpec,
    pub layout: FileLayout,
    /// Block indices of maps not yet launched.
    pub pending_map_blocks: Vec<usize>,
    /// Which blocks have been delivered by a finished attempt (guards
    /// against double-counting when speculative attempts race).
    pub completed_blocks: Vec<bool>,
    /// For each completed block, the node holding the winning attempt's
    /// map output. A node crash turns every `Some(dead)` entry into a
    /// candidate for lost-output re-execution.
    pub block_output_node: Vec<Option<NodeId>>,
    pub running_maps: usize,
    pub completed_maps: usize,
    /// Partition indices of reduces not yet launched.
    pub pending_reduce_parts: Vec<usize>,
    pub running_reduces: usize,
    pub completed_reduces: usize,
    pub shuffle: ShuffleState,
    /// First task launch (job start for timing purposes).
    pub first_launch: Option<SimTime>,
    /// Barrier instant: the last map finished.
    pub maps_done_at: Option<SimTime>,
    pub finished_at: Option<SimTime>,
    /// Progress percentage over time (0–200: map% + reduce%).
    pub progress: TimeSeries,
    /// Completed map-task durations (s), winning attempts only.
    pub map_durations: Vec<f64>,
    /// Map attempts launched on a node holding the input block.
    pub local_launches: usize,
    /// Map attempts that had to stream input from a remote replica.
    pub remote_launches: usize,
    /// Completed reduce-task durations (s).
    pub reduce_durations: Vec<f64>,
}

impl JobInProgress {
    pub fn new(spec: JobSpec, layout: FileLayout, workers: usize) -> JobInProgress {
        let num_maps = layout.num_blocks();
        assert!(
            num_maps > 0,
            "job {} has no input blocks",
            spec.profile.name
        );
        let num_reduces = spec.num_reduces;
        JobInProgress {
            shuffle: ShuffleState::new(workers, num_reduces),
            pending_map_blocks: (0..num_maps).collect(),
            completed_blocks: vec![false; num_maps],
            block_output_node: vec![None; num_maps],
            pending_reduce_parts: (0..num_reduces).collect(),
            spec,
            layout,
            running_maps: 0,
            completed_maps: 0,
            running_reduces: 0,
            completed_reduces: 0,
            first_launch: None,
            maps_done_at: None,
            finished_at: None,
            progress: TimeSeries::new(),
            map_durations: Vec::new(),
            reduce_durations: Vec::new(),
            local_launches: 0,
            remote_launches: 0,
        }
    }

    pub fn total_maps(&self) -> usize {
        self.layout.num_blocks()
    }

    pub fn total_reduces(&self) -> usize {
        self.spec.num_reduces
    }

    pub fn is_submitted(&self, now: SimTime) -> bool {
        self.spec.submit_at <= now
    }

    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Active = submitted and not yet finished.
    pub fn is_active(&self, now: SimTime) -> bool {
        self.is_submitted(now) && !self.is_finished()
    }

    pub fn all_maps_done(&self) -> bool {
        self.completed_maps == self.total_maps()
    }

    /// Whether reduces may start (slow-start fraction of maps completed).
    pub fn reduces_eligible(&self, slowstart: f64) -> bool {
        let needed = (slowstart * self.total_maps() as f64).ceil() as usize;
        self.completed_maps >= needed.min(self.total_maps())
    }
}

/// Job-ordering discipline of the task scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SchedKind {
    /// Hadoop's default: jobs served strictly in submission order.
    #[default]
    Fifo,
    /// The Hadoop Fair Scheduler, simplified to equal shares: each free
    /// slot goes to the active job furthest *below* its fair share of
    /// running tasks (ties broken by submission order). Small jobs stop
    /// starving behind a monster job.
    Fair,
}

/// The task scheduler of the job tracker (paper: FIFO; the Fair variant is
/// provided for the multi-tenancy extension experiments).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FifoScheduler {
    /// Reduce slow-start fraction of completed maps.
    pub reduce_slowstart: f64,
    /// Job-ordering discipline.
    pub kind: SchedKind,
}

impl Default for FifoScheduler {
    fn default() -> Self {
        FifoScheduler {
            reduce_slowstart: 0.05,
            kind: SchedKind::Fifo,
        }
    }
}

/// A map-task assignment decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapAssignment {
    pub id: MapTaskId,
    pub block_index: usize,
    pub input_mb: f64,
    /// `None` if the block is local to the requesting node, else the
    /// replica node the input will stream from.
    pub remote_src: Option<NodeId>,
}

impl FifoScheduler {
    /// Order in which jobs are offered a free slot. FIFO: submission
    /// (vector) order. Fair: ascending running-task count, so the most
    /// under-served job goes first.
    fn job_order(
        &self,
        jobs: &[JobInProgress],
        now: SimTime,
        eligible: impl Fn(&JobInProgress) -> bool,
        load: impl Fn(&JobInProgress) -> usize,
    ) -> Vec<usize> {
        let mut order: Vec<usize> = (0..jobs.len())
            .filter(|&i| jobs[i].is_active(now) && eligible(&jobs[i]))
            .collect();
        if self.kind == SchedKind::Fair {
            order.sort_by_key(|&i| (load(&jobs[i]), i));
        }
        order
    }

    /// Pick the next map task for a free map slot on `node`, preferring a
    /// data-local block; jobs are offered the slot per [`SchedKind`].
    pub fn pick_map(
        &self,
        jobs: &mut [JobInProgress],
        node: NodeId,
        now: SimTime,
    ) -> Option<MapAssignment> {
        let order = self.job_order(
            jobs,
            now,
            |j| !j.pending_map_blocks.is_empty(),
            |j| j.running_maps,
        );
        for ji in order {
            let job = &mut jobs[ji];
            // local block if any, else the first block that still has a
            // replica to stream from. A crash can leave a pending block
            // with no replicas at all; it stays queued until
            // re-replication restores a copy (or the run errors out on
            // unrecoverable data loss).
            let Some(pos) = job
                .pending_map_blocks
                .iter()
                .position(|&b| job.layout.is_local(dfs::BlockId(b), node))
                .or_else(|| {
                    job.pending_map_blocks
                        .iter()
                        .position(|&b| !job.layout.blocks[b].replicas.is_empty())
                })
            else {
                continue;
            };
            let block_index = job.pending_map_blocks.remove(pos);
            let block = &job.layout.blocks[block_index];
            let remote_src = if block.is_local_to(node) {
                None
            } else {
                // stream from the first replica holder (HDFS picks the
                // "closest"; on one rack any holder is equivalent)
                Some(block.replicas[0])
            };
            job.running_maps += 1;
            job.first_launch.get_or_insert(now);
            return Some(MapAssignment {
                id: MapTaskId {
                    job: job.spec.id,
                    index: block_index,
                },
                block_index,
                input_mb: block.size_mb,
                remote_src,
            });
        }
        None
    }

    /// Pick the next reduce task for a free reduce slot (reduces have no
    /// locality preference).
    pub fn pick_reduce(&self, jobs: &mut [JobInProgress], now: SimTime) -> Option<ReduceTaskId> {
        let slowstart = self.reduce_slowstart;
        let order = self.job_order(
            jobs,
            now,
            |j| !j.pending_reduce_parts.is_empty() && j.reduces_eligible(slowstart),
            |j| j.running_reduces,
        );
        let ji = *order.first()?;
        let job = &mut jobs[ji];
        let partition = job.pending_reduce_parts.remove(0);
        job.running_reduces += 1;
        job.first_launch.get_or_insert(now);
        Some(ReduceTaskId {
            job: job.spec.id,
            partition,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobProfile;
    use dfs::NameNode;
    use simgrid::cluster::ClusterSpec;
    use simgrid::rng::SimRng;

    fn job(id: usize, input_mb: f64, submit: u64) -> JobInProgress {
        let mut nn = NameNode::paper_default(ClusterSpec::small(4), SimRng::new(id as u64 + 1));
        let layout = nn.create_file(input_mb);
        JobInProgress::new(
            JobSpec::new(
                id,
                JobProfile::synthetic_map_heavy(),
                input_mb,
                4,
                SimTime::from_secs(submit),
            ),
            layout,
            4,
        )
    }

    #[test]
    fn new_job_counts() {
        let j = job(0, 1024.0, 0);
        assert_eq!(j.total_maps(), 8);
        assert_eq!(j.pending_map_blocks.len(), 8);
        assert_eq!(j.total_reduces(), 4);
        assert!(!j.all_maps_done());
        assert!(j.is_active(SimTime::ZERO));
    }

    #[test]
    fn submission_time_respected() {
        let j = job(0, 128.0, 10);
        assert!(!j.is_submitted(SimTime::from_secs(9)));
        assert!(j.is_submitted(SimTime::from_secs(10)));
    }

    #[test]
    fn fifo_prefers_local_blocks() {
        let mut jobs = vec![job(0, 2048.0, 0)];
        let sched = FifoScheduler::default();
        // node 0: first assignment should be a block with a replica on 0
        // if one exists in the pending list
        let has_local = jobs[0]
            .layout
            .blocks
            .iter()
            .any(|b| b.is_local_to(NodeId(0)));
        let a = sched
            .pick_map(&mut jobs, NodeId(0), SimTime::ZERO)
            .expect("work available");
        if has_local {
            assert!(a.remote_src.is_none(), "should have picked a local block");
        }
        assert_eq!(jobs[0].running_maps, 1);
        assert_eq!(jobs[0].pending_map_blocks.len(), 15);
        assert_eq!(jobs[0].first_launch, Some(SimTime::ZERO));
    }

    #[test]
    fn remote_assignment_names_a_replica_holder() {
        let mut jobs = vec![job(0, 2048.0, 0)];
        let sched = FifoScheduler::default();
        // Drain every task from node 3's perspective; remote ones must
        // stream from an actual replica holder.
        loop {
            match sched.pick_map(&mut jobs, NodeId(3), SimTime::ZERO) {
                None => break,
                Some(a) => {
                    let block = &jobs[0].layout.blocks[a.block_index];
                    match a.remote_src {
                        None => assert!(block.is_local_to(NodeId(3))),
                        Some(src) => {
                            assert!(block.replicas.contains(&src));
                            assert!(!block.is_local_to(NodeId(3)));
                        }
                    }
                }
            }
        }
        assert_eq!(jobs[0].running_maps, 16);
    }

    #[test]
    fn replica_less_blocks_are_not_scheduled() {
        let mut jobs = vec![job(0, 256.0, 0)]; // 2 blocks
        for b in &mut jobs[0].layout.blocks {
            b.replicas.clear();
        }
        let sched = FifoScheduler::default();
        assert!(sched
            .pick_map(&mut jobs, NodeId(0), SimTime::ZERO)
            .is_none());
        assert_eq!(jobs[0].pending_map_blocks.len(), 2, "nothing was dequeued");
        assert_eq!(jobs[0].running_maps, 0);
        // restoring one replica makes exactly that block schedulable
        jobs[0].layout.blocks[1].replicas.push(NodeId(2));
        let a = sched
            .pick_map(&mut jobs, NodeId(0), SimTime::ZERO)
            .expect("restored block is schedulable");
        assert_eq!(a.block_index, 1);
        assert_eq!(a.remote_src, Some(NodeId(2)));
        assert!(sched
            .pick_map(&mut jobs, NodeId(0), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn fifo_serves_earlier_job_first() {
        let mut jobs = vec![job(0, 256.0, 0), job(1, 256.0, 0)];
        let sched = FifoScheduler::default();
        let a = sched.pick_map(&mut jobs, NodeId(1), SimTime::ZERO).unwrap();
        assert_eq!(a.id.job.0, 0);
        // drain job 0, then job 1 is served
        while !jobs[0].pending_map_blocks.is_empty() {
            sched.pick_map(&mut jobs, NodeId(1), SimTime::ZERO).unwrap();
        }
        let b = sched.pick_map(&mut jobs, NodeId(1), SimTime::ZERO).unwrap();
        assert_eq!(b.id.job.0, 1);
    }

    #[test]
    fn unsubmitted_job_not_scheduled() {
        let mut jobs = vec![job(0, 256.0, 100)];
        let sched = FifoScheduler::default();
        assert!(sched
            .pick_map(&mut jobs, NodeId(0), SimTime::ZERO)
            .is_none());
        assert!(sched
            .pick_map(&mut jobs, NodeId(0), SimTime::from_secs(100))
            .is_some());
    }

    #[test]
    fn reduces_wait_for_slowstart() {
        let mut jobs = vec![job(0, 2048.0, 0)]; // 16 maps
        let sched = FifoScheduler {
            reduce_slowstart: 0.25,
            kind: SchedKind::Fifo,
        };
        assert!(sched.pick_reduce(&mut jobs, SimTime::ZERO).is_none());
        jobs[0].completed_maps = 3;
        assert!(sched.pick_reduce(&mut jobs, SimTime::ZERO).is_none());
        jobs[0].completed_maps = 4; // 25% of 16
        let r = sched.pick_reduce(&mut jobs, SimTime::ZERO).unwrap();
        assert_eq!(r.partition, 0);
        assert_eq!(jobs[0].running_reduces, 1);
        let r2 = sched.pick_reduce(&mut jobs, SimTime::ZERO).unwrap();
        assert_eq!(r2.partition, 1);
    }

    #[test]
    fn zero_slowstart_still_requires_no_maps() {
        let mut jobs = vec![job(0, 256.0, 0)];
        let sched = FifoScheduler {
            reduce_slowstart: 0.0,
            kind: SchedKind::Fifo,
        };
        // ceil(0 * n) = 0 completed needed: eligible immediately
        assert!(sched.pick_reduce(&mut jobs, SimTime::ZERO).is_some());
    }

    #[test]
    fn fair_scheduler_serves_underserved_job_first() {
        let mut jobs = vec![job(0, 512.0, 0), job(1, 512.0, 0)];
        let sched = FifoScheduler {
            reduce_slowstart: 0.05,
            kind: SchedKind::Fair,
        };
        // give job 0 a head start of two running maps
        jobs[0].running_maps = 2;
        let a = sched.pick_map(&mut jobs, NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(a.id.job.0, 1, "fair share: job 1 is behind, serve it");
        // now both have... job1 has 1 running vs job0 2: job1 again
        let b = sched.pick_map(&mut jobs, NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(b.id.job.0, 1);
        // 2 vs 2: tie breaks to the earlier job
        let c = sched.pick_map(&mut jobs, NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(c.id.job.0, 0);
    }

    #[test]
    fn fifo_vs_fair_reduce_ordering() {
        let mut jobs = vec![job(0, 512.0, 0), job(1, 512.0, 0)];
        jobs[0].completed_maps = 4;
        jobs[1].completed_maps = 4;
        jobs[0].running_reduces = 3;
        let fair = FifoScheduler {
            reduce_slowstart: 0.05,
            kind: SchedKind::Fair,
        };
        let r = fair.pick_reduce(&mut jobs, SimTime::ZERO).unwrap();
        assert_eq!(r.job.0, 1, "fair: job 1 has fewer running reduces");
        let fifo = FifoScheduler::default();
        let r = fifo.pick_reduce(&mut jobs, SimTime::ZERO).unwrap();
        assert_eq!(r.job.0, 0, "fifo: submission order regardless of load");
    }

    #[test]
    fn reduce_pool_exhausts() {
        let mut jobs = vec![job(0, 256.0, 0)];
        jobs[0].completed_maps = 2;
        let sched = FifoScheduler::default();
        for _ in 0..4 {
            assert!(sched.pick_reduce(&mut jobs, SimTime::ZERO).is_some());
        }
        assert!(sched.pick_reduce(&mut jobs, SimTime::ZERO).is_none());
    }
}

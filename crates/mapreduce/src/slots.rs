//! Working slots with the paper's *lazy* changing semantics (§III-D).
//!
//! A [`SlotSet`] tracks the slot-manager's **target** and the tasks
//! currently **occupying** slots. The two may disagree after a decrease:
//! shutting a busy slot down would kill a mid-progress task and force a
//! reschedule, so the task launcher instead remembers the deficit and
//! retires slots as their tasks finish. Increases take effect immediately.
//!
//! Concretely: `free() = target.saturating_sub(occupied)`. While
//! `occupied > target` no task can launch, and each completion shrinks the
//! overshoot by one — exactly the behaviour §IV-B implements in the
//! `TaskTracker` class.

use serde::{Deserialize, Serialize};

/// One tracker's slots of one kind (map or reduce).
///
/// ```
/// use mapreduce::slots::SlotSet;
///
/// let mut s = SlotSet::new(3);
/// s.launch();
/// s.launch();
/// s.launch();
/// // manager shrinks to 1: nothing is killed, two retire lazily
/// s.set_target(1);
/// assert_eq!(s.occupied(), 3);
/// assert_eq!(s.pending_shutdown(), 2);
/// s.release();            // first finisher retires its slot
/// assert_eq!(s.free(), 0);
/// s.release();
/// s.release();            // now below target: a launchable slot appears
/// assert_eq!(s.free(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSet {
    target: usize,
    occupied: usize,
    /// Cumulative count of slot-change commands applied (for the overhead
    /// accounting and for tests).
    changes: u64,
}

impl SlotSet {
    pub fn new(target: usize) -> SlotSet {
        SlotSet {
            target,
            occupied: 0,
            changes: 0,
        }
    }

    /// The slot count the manager currently wants.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Tasks currently holding a slot.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Slots available for launching right now (lazy rule).
    pub fn free(&self) -> usize {
        self.target.saturating_sub(self.occupied)
    }

    /// Slots that still must retire before `occupied <= target`.
    pub fn pending_shutdown(&self) -> usize {
        self.occupied.saturating_sub(self.target)
    }

    /// Number of slot-change commands applied so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Apply a slot-change command from the job tracker. Never interrupts
    /// running tasks. Returns `true` if the target actually changed.
    pub fn set_target(&mut self, target: usize) -> bool {
        if target == self.target {
            return false;
        }
        self.target = target;
        self.changes += 1;
        true
    }

    /// Occupy one slot for a launching task. Panics if no slot is free —
    /// callers must check [`SlotSet::free`] first (the scheduler does).
    pub fn launch(&mut self) {
        assert!(self.free() > 0, "launch without a free slot");
        self.occupied += 1;
    }

    /// Release the slot of a finished task. If the set is over target the
    /// slot retires silently (lazy shutdown); otherwise it becomes free.
    pub fn release(&mut self) {
        assert!(self.occupied > 0, "release with no occupied slot");
        self.occupied -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_all_free() {
        let s = SlotSet::new(3);
        assert_eq!(s.free(), 3);
        assert_eq!(s.occupied(), 0);
        assert_eq!(s.pending_shutdown(), 0);
    }

    #[test]
    fn launch_and_release_cycle() {
        let mut s = SlotSet::new(2);
        s.launch();
        assert_eq!(s.free(), 1);
        s.launch();
        assert_eq!(s.free(), 0);
        s.release();
        assert_eq!(s.free(), 1);
    }

    #[test]
    fn increase_takes_effect_immediately() {
        let mut s = SlotSet::new(1);
        s.launch();
        assert_eq!(s.free(), 0);
        assert!(s.set_target(3));
        assert_eq!(s.free(), 2, "increase adds launchable slots at once");
    }

    #[test]
    fn decrease_never_kills_running_tasks() {
        let mut s = SlotSet::new(3);
        s.launch();
        s.launch();
        s.launch();
        assert!(s.set_target(1));
        // all three tasks keep running
        assert_eq!(s.occupied(), 3);
        assert_eq!(s.free(), 0);
        assert_eq!(s.pending_shutdown(), 2);
        // first completion retires a slot rather than freeing it
        s.release();
        assert_eq!(s.free(), 0);
        assert_eq!(s.pending_shutdown(), 1);
        s.release();
        assert_eq!(s.free(), 0);
        assert_eq!(s.pending_shutdown(), 0);
        // now at target: the next release frees a launchable slot
        s.release();
        assert_eq!(s.free(), 1);
        assert_eq!(s.occupied(), 0);
    }

    #[test]
    fn redundant_set_target_is_not_a_change() {
        let mut s = SlotSet::new(2);
        assert!(!s.set_target(2));
        assert_eq!(s.changes(), 0);
        assert!(s.set_target(4));
        assert!(s.set_target(2));
        assert_eq!(s.changes(), 2);
    }

    #[test]
    #[should_panic(expected = "without a free slot")]
    fn launch_without_free_slot_panics() {
        let mut s = SlotSet::new(0);
        s.launch();
    }

    #[test]
    #[should_panic(expected = "no occupied slot")]
    fn release_empty_panics() {
        let mut s = SlotSet::new(1);
        s.release();
    }

    proptest::proptest! {
        /// Invariant under any interleaving of valid operations:
        /// free + occupied >= target is violated never; free is exactly
        /// target - occupied when occupied <= target, else 0.
        #[test]
        fn prop_lazy_invariants(ops in proptest::collection::vec(0u8..3, 0..200)) {
            let mut s = SlotSet::new(3);
            for op in ops {
                match op {
                    0 => { if s.free() > 0 { s.launch(); } }
                    1 => { if s.occupied() > 0 { s.release(); } }
                    _ => { let t = (s.changes() as usize * 7 + 1) % 9; s.set_target(t); }
                }
                let (t, o, f) = (s.target(), s.occupied(), s.free());
                proptest::prop_assert_eq!(f, t.saturating_sub(o));
                proptest::prop_assert_eq!(s.pending_shutdown(), o.saturating_sub(t));
            }
        }

        /// The invariant the thrashing detector's settled-occupancy gate
        /// relies on: during a shrink transition (occupied > target),
        /// occupancy never *increases* — it only drains toward the target
        /// as tasks finish. Equivalently, occupancy never exceeds the
        /// largest target that was in force when its tasks launched.
        #[test]
        fn prop_shrink_transition_occupancy_never_grows(
            ops in proptest::collection::vec((0u8..3, 0usize..9), 0..300),
        ) {
            let mut s = SlotSet::new(4);
            let mut max_target_seen = s.target();
            for (op, arg) in ops {
                let before = s.occupied();
                match op {
                    0 => { if s.free() > 0 { s.launch(); } }
                    1 => { if s.occupied() > 0 { s.release(); } }
                    _ => { s.set_target(arg); }
                }
                max_target_seen = max_target_seen.max(s.target());
                if before > s.target() {
                    // mid-shrink: launches are impossible, occupancy may
                    // only drain (this is what makes a measured rate at
                    // `occupied > target` attributable to the *old* level)
                    proptest::prop_assert!(
                        s.occupied() <= before,
                        "occupancy grew during a shrink: {} -> {}",
                        before,
                        s.occupied()
                    );
                }
                // occupancy is always explained by some past target
                proptest::prop_assert!(s.occupied() <= max_target_seen);
            }
        }
    }
}

//! # mapreduce — the slot-based framework SMapReduce patches
//!
//! A faithful functional model of Hadoop 1.x MapReduce running on the
//! [`simgrid`] substrate:
//!
//! * a **job tracker** with a FIFO task scheduler and a heartbeat handler;
//! * **task trackers** that run map tasks in map slots and reduce tasks in
//!   reduce slots, launch tasks, and piggy-back runtime statistics (map
//!   input rate, map output rate, shuffle rate) on each heartbeat;
//! * **map tasks** with map + sort/spill phases, preferring data-local
//!   blocks and paying network cost for remote reads;
//! * **reduce tasks** with shuffle → sort → reduce phases, the shuffle
//!   overlapping the map waves but blocked on the **synchronisation
//!   barrier** (it cannot finish before the last map does);
//! * **lazy slot changing**: shrinking a tracker's slot target never kills
//!   a running task — slots retire as tasks finish (§III-D / §IV-B of the
//!   paper).
//!
//! Which *slot targets* each tracker has at any moment is delegated to a
//! [`policy::SlotPolicy`]. HadoopV1 is the [`policy::StaticSlotPolicy`];
//! the `yarn` crate provides the container-based baseline; the
//! `smapreduce` crate provides the paper's dynamic slot manager.
//!
//! ```
//! use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
//! use mapreduce::policy::StaticSlotPolicy;
//! use simgrid::SimTime;
//!
//! let config = EngineConfig::small_test(4, 7);
//! let job = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 1024.0, 8, SimTime::ZERO);
//! let mut policy = StaticSlotPolicy;
//! let report = Engine::new(config).run(vec![job], &mut policy).unwrap();
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].total_time().as_secs_f64() > 0.0);
//! ```

pub mod arena;
pub mod auditor;
pub mod counters;
pub mod engine;
pub mod events;
pub mod job;
pub mod policy;
pub mod report;
pub mod scheduler;
pub mod shuffle;
pub mod slots;
pub mod stats;
pub mod task;

pub use arena::EngineArena;
pub use auditor::{audit_phase_spans, phase_means, AuditSetup, PhaseBudget, PhaseMeans, Violation};
pub use counters::{Counter, CounterLedger};
pub use engine::{
    fold_hash, initial_state_hash, Advanced, Engine, EngineConfig, EngineObservation, EngineState,
    HashPoint, JobObservation, NodeObservation,
};
pub use events::{Event, EventLog};
pub use job::{JobId, JobProfile, JobSpec};
pub use policy::{
    PolicyContext, PolicyDecisionRecord, SlotDirective, SlotPolicy, StaticSlotPolicy,
    TrackerSnapshot,
};
pub use report::{JobReport, RunReport};
pub use scheduler::SchedKind;
pub use stats::ClusterStats;

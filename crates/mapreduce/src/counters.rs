//! Hadoop-style job counters.
//!
//! Every MapReduce job in a real cluster publishes a ledger of named
//! counters — `HDFS_BYTES_READ`, `DATA_LOCAL_MAPS`, `SPILLED_RECORDS` — and
//! operators read cluster health off them. This module is the simulator's
//! equivalent: a fixed catalogue of [`Counter`]s and a [`CounterLedger`]
//! backed by a flat array, fed from the engine's phase code with no
//! allocation on the hot path. One ledger is kept per job and the cluster
//! ledger in [`crate::RunReport`] is their merge.
//!
//! Counters are plain observational accumulators: they never feed back into
//! scheduling decisions, so enabling them cannot perturb a run. Because all
//! feeds are deterministic functions of the simulation state, ledgers are
//! byte-identical across reruns of the same seed — a property the
//! [`crate::auditor`] relies on.
//!
//! Byte counters carry the Hadoop names but are denominated in **MB**, the
//! simulator's universal data unit.

use serde::{Deserialize, Error as DeError, Serialize, Value};

/// The counter catalogue. Names follow Hadoop's job-counter conventions;
/// see each variant for the exact simulator semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Counter {
    /// Map input consumed (MB), local and remote alike.
    HdfsBytesRead,
    /// Map input delivered over the fabric to remote (non-local) maps (MB).
    RemoteBytesRead,
    /// Map output credited at *delivered* completions (MB); re-executed
    /// blocks are credited once per delivered attempt.
    MapOutputMb,
    /// Delivered map output later destroyed by a node loss while reducers
    /// still needed it (MB). `MAP_OUTPUT_MB − LOST_MAP_OUTPUT_MB` is what
    /// the shuffle ultimately serves.
    LostMapOutputMb,
    /// Total MB fetched by reduce shuffles, local and remote.
    ShuffleFetchedMb,
    /// The remote (fabric-crossing) portion of [`Counter::ShuffleFetchedMb`].
    ShuffleRemoteMb,
    /// Spill volume (MB): map-side output written to local disk plus
    /// reduce-side merge spill of fetched data. By convention this equals
    /// `MAP_OUTPUT_MB + SHUFFLE_FETCHED_MB` — the identity the auditor
    /// checks to prove both feed sites fire.
    SpilledRecords,
    /// Map attempts launched, including speculative backups and
    /// fault-driven re-executions.
    TotalLaunchedMaps,
    /// Launched map attempts whose input block was node-local.
    DataLocalMaps,
    /// Launched map attempts streaming their input from a remote replica.
    RemoteMaps,
    /// Reduce attempts launched, including crash-driven relaunches.
    TotalLaunchedReduces,
    /// Attempts killed for any reason: losing speculative siblings plus
    /// crash victims (map and reduce).
    KilledAttempts,
    /// The reduce-attempt subset of [`Counter::KilledAttempts`].
    KilledReduces,
    /// Map attempts terminated by an injected task failure (retried).
    FailedMaps,
    /// Map attempts that finished after their sibling had already
    /// delivered the block; their output is discarded.
    DiscardedMaps,
    /// Speculative backup attempts launched.
    SpeculativeMaps,
    /// Completed maps re-executed because their output died with a node.
    ReexecutedMaps,
}

impl Counter {
    /// Every counter, in catalogue (serialization) order.
    pub const ALL: [Counter; 17] = [
        Counter::HdfsBytesRead,
        Counter::RemoteBytesRead,
        Counter::MapOutputMb,
        Counter::LostMapOutputMb,
        Counter::ShuffleFetchedMb,
        Counter::ShuffleRemoteMb,
        Counter::SpilledRecords,
        Counter::TotalLaunchedMaps,
        Counter::DataLocalMaps,
        Counter::RemoteMaps,
        Counter::TotalLaunchedReduces,
        Counter::KilledAttempts,
        Counter::KilledReduces,
        Counter::FailedMaps,
        Counter::DiscardedMaps,
        Counter::SpeculativeMaps,
        Counter::ReexecutedMaps,
    ];

    /// Hadoop-style SCREAMING_SNAKE name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::HdfsBytesRead => "HDFS_BYTES_READ",
            Counter::RemoteBytesRead => "REMOTE_BYTES_READ",
            Counter::MapOutputMb => "MAP_OUTPUT_MB",
            Counter::LostMapOutputMb => "LOST_MAP_OUTPUT_MB",
            Counter::ShuffleFetchedMb => "SHUFFLE_FETCHED_MB",
            Counter::ShuffleRemoteMb => "SHUFFLE_REMOTE_MB",
            Counter::SpilledRecords => "SPILLED_RECORDS",
            Counter::TotalLaunchedMaps => "TOTAL_LAUNCHED_MAPS",
            Counter::DataLocalMaps => "DATA_LOCAL_MAPS",
            Counter::RemoteMaps => "REMOTE_MAPS",
            Counter::TotalLaunchedReduces => "TOTAL_LAUNCHED_REDUCES",
            Counter::KilledAttempts => "KILLED_ATTEMPTS",
            Counter::KilledReduces => "KILLED_REDUCES",
            Counter::FailedMaps => "FAILED_MAPS",
            Counter::DiscardedMaps => "DISCARDED_MAPS",
            Counter::SpeculativeMaps => "SPECULATIVE_MAPS",
            Counter::ReexecutedMaps => "REEXECUTED_MAPS",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }

    fn index(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every counter is in ALL")
    }
}

/// A flat, fixed-size counter ledger. `add`/`inc` are array writes — no
/// hashing, no allocation — so the engine can feed it from per-step code.
/// Event-count counters are stored as integral-valued `f64`s alongside the
/// byte counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterLedger {
    values: [f64; Counter::ALL.len()],
}

impl CounterLedger {
    pub const fn new() -> CounterLedger {
        CounterLedger {
            values: [0.0; Counter::ALL.len()],
        }
    }

    /// Add `amount` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, amount: f64) {
        self.values[c.index()] += amount;
    }

    /// Increment an event-count counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1.0);
    }

    #[inline]
    pub fn get(&self, c: Counter) -> f64 {
        self.values[c.index()]
    }

    /// Fold another ledger into this one (cluster = merge of jobs).
    pub fn merge(&mut self, other: &CounterLedger) {
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += *b;
        }
    }

    /// `(counter, value)` pairs in catalogue order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, f64)> + '_ {
        Counter::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|v| *v == 0.0)
    }

    /// Per-counter difference `self − other` (used by the harness to
    /// attribute cluster-ledger growth to one figure target). The
    /// difference is rounded to a 1e-6 grid (a byte, in MB counters) to
    /// shed the low-bit noise a large minuend leaves behind — a target's
    /// counters come out identical whether it ran alone or after other
    /// targets in the same process.
    pub fn delta_from(&self, other: &CounterLedger) -> CounterLedger {
        let mut out = CounterLedger::new();
        for (i, v) in out.values.iter_mut().enumerate() {
            *v = ((self.values[i] - other.values[i]) * 1e6).round() / 1e6;
        }
        out
    }

    /// Fixed-width text table, one counter per line (skipping zeros),
    /// as embedded in the committed results files.
    pub fn render_table(&self, indent: &str) -> String {
        let mut out = String::new();
        for (c, v) in self.iter() {
            if v == 0.0 {
                continue;
            }
            let shown = if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", v as i64)
            } else {
                format!("{v:.2}")
            };
            out.push_str(&format!("{indent}{:<24} {:>14}\n", c.name(), shown));
        }
        if out.is_empty() {
            out.push_str(&format!("{indent}(all counters zero)\n"));
        }
        out
    }
}

// Hand-written serde impls: the ledger serializes as a name → value object
// in catalogue order (insertion-ordered, so serialization is deterministic
// and reruns are byte-comparable). Unknown names on deserialize are
// rejected; missing names default to zero, so old reports load cleanly
// after catalogue growth.
impl Serialize for CounterLedger {
    fn to_value(&self) -> Value {
        let mut obj = Value::Object(Vec::new());
        for (c, v) in self.iter() {
            obj.set(c.name(), Value::F64(v));
        }
        obj
    }
}

impl Deserialize for CounterLedger {
    fn deserialize(v: &Value) -> Result<CounterLedger, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::new("CounterLedger: expected object"))?;
        let mut ledger = CounterLedger::new();
        for (name, value) in entries {
            let c = Counter::from_name(name)
                .ok_or_else(|| DeError::new(format!("CounterLedger: unknown counter {name}")))?;
            let n = value
                .as_f64()
                .ok_or_else(|| DeError::new(format!("CounterLedger: {name} is not a number")))?;
            ledger.add(c, n);
        }
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(Counter::from_name("NOT_A_COUNTER"), None);
    }

    #[test]
    fn add_inc_get_merge() {
        let mut a = CounterLedger::new();
        assert!(a.is_zero());
        a.add(Counter::HdfsBytesRead, 128.0);
        a.inc(Counter::DataLocalMaps);
        a.inc(Counter::DataLocalMaps);
        assert_eq!(a.get(Counter::HdfsBytesRead), 128.0);
        assert_eq!(a.get(Counter::DataLocalMaps), 2.0);
        assert_eq!(a.get(Counter::RemoteMaps), 0.0);
        let mut b = CounterLedger::new();
        b.add(Counter::HdfsBytesRead, 64.0);
        b.inc(Counter::RemoteMaps);
        b.merge(&a);
        assert_eq!(b.get(Counter::HdfsBytesRead), 192.0);
        assert_eq!(b.get(Counter::DataLocalMaps), 2.0);
        assert_eq!(b.get(Counter::RemoteMaps), 1.0);
        let d = b.delta_from(&a);
        assert_eq!(d.get(Counter::HdfsBytesRead), 64.0);
        assert_eq!(d.get(Counter::RemoteMaps), 1.0);
        assert_eq!(d.get(Counter::DataLocalMaps), 0.0);
    }

    #[test]
    fn serde_round_trip_preserves_order_and_values() {
        let mut a = CounterLedger::new();
        a.add(Counter::MapOutputMb, 40.96);
        a.inc(Counter::TotalLaunchedMaps);
        let json = serde_json::to_string(&a).unwrap();
        // catalogue order: HDFS_BYTES_READ serializes before MAP_OUTPUT_MB
        let h = json.find("HDFS_BYTES_READ").unwrap();
        let m = json.find("MAP_OUTPUT_MB").unwrap();
        assert!(h < m);
        let back: CounterLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn deserialize_rejects_unknown_and_tolerates_missing() {
        let err = serde_json::from_str::<CounterLedger>(r#"{"BOGUS": 1.0}"#);
        assert!(err.is_err());
        // a partial object (old report) loads with the rest zeroed
        let partial: CounterLedger = serde_json::from_str(r#"{"HDFS_BYTES_READ": 3.5}"#).unwrap();
        assert_eq!(partial.get(Counter::HdfsBytesRead), 3.5);
        assert_eq!(partial.get(Counter::MapOutputMb), 0.0);
    }

    #[test]
    fn table_skips_zeros_and_formats_integers() {
        let mut a = CounterLedger::new();
        a.add(Counter::ShuffleFetchedMb, 12.345);
        a.add(Counter::TotalLaunchedMaps, 7.0);
        let t = a.render_table("  ");
        assert!(t.contains("SHUFFLE_FETCHED_MB"));
        assert!(t.contains("12.35"));
        assert!(t.contains("TOTAL_LAUNCHED_MAPS"));
        assert!(t.contains("7\n"));
        assert!(!t.contains("HDFS_BYTES_READ"));
        assert!(CounterLedger::new()
            .render_table("")
            .contains("all counters zero"));
    }
}

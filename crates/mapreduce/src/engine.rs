//! The simulation engine: binds the MapReduce framework to the `simgrid`
//! substrate and advances everything in discrete steps.
//!
//! Every step is the same three phases: (1) on heartbeat boundaries run
//! the heartbeat round — harvest tracker statistics, aggregate them, let
//! the [`SlotPolicy`] issue slot directives, and assign tasks to free
//! slots; (2) **allocate** — per-node contention scales every running
//! task's rate and the fabric allocates bandwidth to remote-read and
//! shuffle flows; (3) **integrate** — tasks advance at those rates over
//! the step and complete.
//!
//! What varies is the step length ([`simgrid::time::SteppingMode`]):
//!
//! - **Fixed** — the classic 100 ms reference tick.
//! - **Adaptive** (default) — all rates are piecewise-constant between
//!   discrete events (task completions, phase transitions, heartbeat
//!   directives, flow-set changes), so after each allocation the engine
//!   computes the **event horizon** — the earliest heartbeat or sample
//!   boundary, task/phase completion at current rates, shuffle-source
//!   exhaustion, stall expiry or job submission — and advances all
//!   integrators exactly to it in one macro-step.
//!
//! Both modes share the millisecond grid and draw randomness only inside
//! heartbeat rounds, which land on identical boundaries, so either mode is
//! deterministic for a given [`EngineConfig::seed`] and the two agree on
//! every paper-shape outcome (cross-validated in `tests/`).

use crate::arena::{EngineArena, Scratch};
use crate::counters::{Counter, CounterLedger};
use crate::events::{Event, EventLog};
use crate::job::{JobId, JobProfile, JobSpec};
use crate::policy::{PolicyContext, SlotPolicy, TrackerSnapshot};
use crate::report::{JobReport, RunReport};
use crate::scheduler::{FifoScheduler, JobInProgress};
use crate::slots::SlotSet;
use crate::stats::{ClusterStats, TrackerMeters};
use crate::task::{MapAttemptId, MapTask, MapTaskId, ReducePhase, ReduceTask, ReduceTaskId};
use dfs::NameNode;
use serde::{Deserialize, Serialize};
use simgrid::cluster::{ClusterSpec, NodeId};
use simgrid::error::SimError;
use simgrid::metrics::RecordedSeries;
use simgrid::network::{Fabric, FabricConfig, FabricScratch, Flow, FlowId};
use simgrid::node::allocate_node;
use simgrid::rng::SimRng;
use simgrid::time::{EventHorizon, SimDuration, SimTime, SteppingMode, TickConfig};
use simgrid::usage::NodeUsageSampler;
use std::collections::{BTreeMap, HashMap, VecDeque};
use telemetry::Telemetry;

/// All knobs of one simulated deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    pub cluster: ClusterSpec,
    pub fabric: FabricConfig,
    pub tick: TickConfig,
    /// Task-tracker heartbeat interval (Hadoop default 3 s).
    pub heartbeat: SimDuration,
    /// Progress/slot-series sampling period.
    pub sample_period: SimDuration,
    /// Initial (user-configured) map slots per tracker.
    pub init_map_slots: usize,
    /// Initial reduce slots per tracker.
    pub init_reduce_slots: usize,
    /// Fraction of maps that must complete before reduces may launch.
    pub reduce_slowstart: f64,
    /// Job-ordering discipline (paper: FIFO).
    pub scheduler: crate::scheduler::SchedKind,
    /// Per-task service-time jitter amplitude.
    pub jitter_amp: f64,
    /// Rate at which a reduce copies map output residing on its own node
    /// (MB/s; disk-to-disk, no network).
    pub local_copy_rate: f64,
    /// HDFS block size (MB).
    pub block_mb: f64,
    /// Record a task-lifecycle [`crate::events::EventLog`] in the run
    /// report (off by default: long runs emit tens of thousands of
    /// events).
    pub record_events: bool,
    /// Launch speculative backup attempts for straggling map tasks once a
    /// job's pending maps are exhausted (Hadoop's
    /// `mapred.map.tasks.speculative.execution`). Off by default so the
    /// paper-calibrated experiments are unaffected; the straggler studies
    /// turn it on.
    pub speculative_maps: bool,
    /// Minimum runtime before an attempt may be considered a straggler.
    pub speculation_min_runtime: SimDuration,
    /// Relative progress gap below the job's mean running progress that
    /// marks a straggler (Hadoop's 20 %).
    pub speculation_gap: f64,
    /// Probability that a map attempt fails mid-run and must be retried
    /// (fault injection; 0.0 = fault-free, the paper's setting). Failed
    /// attempts release their slot and the block is re-queued, exactly
    /// Hadoop's task-retry path.
    pub map_failure_rate: f64,
    /// Probability that a map attempt lands on a degraded execution path
    /// (failing disk, swapping neighbour VM…) and runs
    /// [`EngineConfig::straggler_slowdown`]× slower — the pathology
    /// speculative execution exists for.
    pub straggler_rate: f64,
    /// Slowdown factor of a degraded attempt.
    pub straggler_slowdown: f64,
    /// Deterministic whole-node crash schedule (empty = fault-free). In
    /// adaptive mode crash/rejoin instants are exact event-horizon
    /// deadlines; in fixed mode a transition takes effect on the first
    /// tick at or after its instant (tick-align fault times for exact
    /// cross-mode agreement).
    #[serde(default)]
    pub fault_plan: simgrid::FaultPlan,
    /// Run the job tracker's recovery path when a tracker dies: kill and
    /// requeue its in-flight attempts and re-execute completed maps whose
    /// output died with the node. With recovery off, a crash that strands
    /// needed work surfaces [`SimError::NodeLost`] instead of hanging
    /// until the horizon.
    #[serde(default = "default_true")]
    pub fault_recovery: bool,
    /// Silence after which the job tracker declares a tracker dead
    /// (Hadoop's `mapred.tasktracker.expiry.interval`, default 10 min;
    /// shortened here so recovery shows up at simulated-experiment scale).
    /// Expiry is checked on heartbeat boundaries.
    #[serde(default = "default_heartbeat_timeout")]
    pub heartbeat_timeout: SimDuration,
    /// Attempt failures charged to one tracker before the job tracker
    /// blacklists it (Hadoop's `mapred.max.tracker.failures`).
    #[serde(default = "default_blacklist_threshold")]
    pub blacklist_threshold: u32,
    /// Aggregate rate (MB/s) at which the DFS restores lost replicas of
    /// under-replicated blocks onto surviving nodes; 0 disables
    /// re-replication.
    #[serde(default = "default_rereplication_rate")]
    pub rereplication_rate: f64,
    pub seed: u64,
}

fn default_true() -> bool {
    true
}

fn default_heartbeat_timeout() -> SimDuration {
    SimDuration::from_secs(30)
}

fn default_blacklist_threshold() -> u32 {
    4
}

fn default_rereplication_rate() -> f64 {
    50.0
}

impl EngineConfig {
    /// The paper's testbed: 16 workers, 1 GbE, 128 MB blocks, 3 map +
    /// 2 reduce slots per tracker, 3 s heartbeats.
    pub fn paper_default() -> EngineConfig {
        EngineConfigBuilder::paper().build()
    }

    /// A small fast deployment for tests.
    pub fn small_test(workers: usize, seed: u64) -> EngineConfig {
        EngineConfigBuilder::paper()
            .workers(workers)
            .seed(seed)
            .build()
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.cluster.workers == 0 {
            return Err(SimError::InvalidConfig("cluster has no workers".into()));
        }
        if self.init_map_slots == 0 {
            return Err(SimError::InvalidConfig("need >=1 initial map slot".into()));
        }
        if self.init_reduce_slots == 0 {
            return Err(SimError::InvalidConfig(
                "need >=1 initial reduce slot".into(),
            ));
        }
        // zero periods would make boundary detection silently never fire
        // (is_multiple_of(0) is false for every instant) — reject them up
        // front in both stepping modes
        if self.heartbeat.as_millis() == 0 {
            return Err(SimError::InvalidConfig(
                "heartbeat must be non-zero (a zero period would never fire a round)".into(),
            ));
        }
        if self.sample_period.as_millis() == 0 {
            return Err(SimError::InvalidConfig(
                "sample_period must be non-zero (a zero period would never record a sample)".into(),
            ));
        }
        // the fixed-tick reference mode can only land on boundaries that
        // are multiples of its tick; misaligned periods would silently
        // skip every round
        if self.tick.mode == SteppingMode::Fixed {
            if self.tick.tick.as_millis() == 0 {
                return Err(SimError::InvalidConfig(
                    "tick must be non-zero in fixed-tick mode".into(),
                ));
            }
            if !SimTime(self.heartbeat.0).is_multiple_of(self.tick.tick) {
                return Err(SimError::InvalidConfig(format!(
                    "heartbeat ({} ms) must be a multiple of the tick ({} ms) in \
                     fixed-tick mode, or rounds would never land on a boundary",
                    self.heartbeat.as_millis(),
                    self.tick.tick.as_millis()
                )));
            }
            if !SimTime(self.sample_period.0).is_multiple_of(self.tick.tick) {
                return Err(SimError::InvalidConfig(format!(
                    "sample_period ({} ms) must be a multiple of the tick ({} ms) in \
                     fixed-tick mode, or samples would never land on a boundary",
                    self.sample_period.as_millis(),
                    self.tick.tick.as_millis()
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.reduce_slowstart) {
            return Err(SimError::InvalidConfig(
                "reduce_slowstart must be in [0,1]".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.map_failure_rate) {
            return Err(SimError::InvalidConfig(
                "map_failure_rate must be in [0,1)".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.straggler_rate) || self.straggler_slowdown < 1.0 {
            return Err(SimError::InvalidConfig(
                "straggler_rate in [0,1) and slowdown >= 1 required".into(),
            ));
        }
        for f in self.fault_plan.faults() {
            if f.node.0 >= self.cluster.workers {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan names node {} but the cluster has {} workers",
                    f.node.0, self.cluster.workers
                )));
            }
            if f.at == SimTime::ZERO {
                return Err(SimError::InvalidConfig(
                    "fault plan crashes a node at t=0; nodes must start up (crash at >= 1 ms)"
                        .into(),
                ));
            }
            if f.downtime.is_some_and(|d| d.as_millis() == 0) {
                return Err(SimError::InvalidConfig(
                    "fault downtime must be non-zero (omit it for a permanent crash)".into(),
                ));
            }
        }
        if !self.fault_plan.is_empty() && self.heartbeat_timeout.as_millis() == 0 {
            return Err(SimError::InvalidConfig(
                "heartbeat_timeout must be non-zero when a fault plan is set".into(),
            ));
        }
        if self.blacklist_threshold == 0 {
            return Err(SimError::InvalidConfig(
                "blacklist_threshold must be >= 1".into(),
            ));
        }
        if !self.rereplication_rate.is_finite() || self.rereplication_rate < 0.0 {
            return Err(SimError::InvalidConfig(
                "rereplication_rate must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`]: starts from the paper testbed and applies
/// selective overrides (the single source of truth behind
/// [`EngineConfig::paper_default`] and [`EngineConfig::small_test`]).
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// The paper's testbed configuration as the starting point.
    pub fn paper() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig {
                cluster: ClusterSpec::paper_testbed(),
                fabric: FabricConfig::paper_gbe(),
                tick: TickConfig::default(),
                heartbeat: SimDuration::from_secs(3),
                sample_period: SimDuration::from_secs(1),
                init_map_slots: 3,
                init_reduce_slots: 2,
                reduce_slowstart: 0.05,
                scheduler: crate::scheduler::SchedKind::Fifo,
                jitter_amp: 0.20,
                local_copy_rate: 180.0,
                block_mb: 128.0,
                record_events: false,
                speculative_maps: false,
                speculation_min_runtime: SimDuration::from_secs(15),
                speculation_gap: 0.25,
                map_failure_rate: 0.0,
                straggler_rate: 0.0,
                straggler_slowdown: 5.0,
                fault_plan: simgrid::FaultPlan::none(),
                fault_recovery: default_true(),
                heartbeat_timeout: default_heartbeat_timeout(),
                blacklist_threshold: default_blacklist_threshold(),
                rereplication_rate: default_rereplication_rate(),
                seed: 42,
            },
        }
    }

    /// Replace the cluster with an arbitrary spec.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cfg.cluster = cluster;
        self
    }

    /// Shrink to a small test cluster of `workers` nodes.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.cluster = ClusterSpec::small(workers);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Select the stepping mode (fixed reference ticks or adaptive
    /// event-horizon macro-steps).
    pub fn stepping(mut self, mode: SteppingMode) -> Self {
        self.cfg.tick.mode = mode;
        self
    }

    pub fn heartbeat(mut self, heartbeat: SimDuration) -> Self {
        self.cfg.heartbeat = heartbeat;
        self
    }

    pub fn sample_period(mut self, sample_period: SimDuration) -> Self {
        self.cfg.sample_period = sample_period;
        self
    }

    /// Schedule deterministic node crashes for the run.
    pub fn fault_plan(mut self, plan: simgrid::FaultPlan) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Enable or disable the job tracker's crash-recovery path.
    pub fn fault_recovery(mut self, on: bool) -> Self {
        self.cfg.fault_recovery = on;
        self
    }

    /// Tracker-expiry interval for heartbeat-timeout death detection.
    pub fn heartbeat_timeout(mut self, timeout: SimDuration) -> Self {
        self.cfg.heartbeat_timeout = timeout;
        self
    }

    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// One task tracker (node-local slot + meter state).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tracker {
    node: NodeId,
    map_slots: SlotSet,
    reduce_slots: SlotSet,
    meters: TrackerMeters,
    /// Remaining management-overhead stall (ms) charged by slot changes.
    stall_ms: u64,
    /// Set while the node is down: the instant it crashed.
    down_since: Option<SimTime>,
    /// The job tracker has already processed this tracker's loss (killed
    /// and requeued its attempts, re-executed lost map output). Reset to
    /// `false` on each crash.
    lost_handled: bool,
    /// Attempt failures charged against this tracker since its last
    /// (re-)registration.
    attempt_failures: u32,
    /// No new work is assigned once `attempt_failures` reaches
    /// [`EngineConfig::blacklist_threshold`].
    blacklisted: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum TaskRef {
    Map(MapAttemptId),
    Reduce(ReduceTaskId),
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum FlowPurpose {
    /// Remote input stream feeding a non-local map task.
    MapRead(MapAttemptId),
    /// Shuffle fetch of `reduce` from source node.
    Fetch(ReduceTaskId, NodeId),
}

/// One granted shuffle fetch: `reduce` pulling from source node `src` at
/// `rate` MB/s. `contended` marks fetches granted less than they demanded
/// (fabric contention): their depletion frees bandwidth other flows are
/// queued for, so the adaptive horizon must cut there even before the
/// shuffle endgame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchPost {
    reduce: ReduceTaskId,
    src: NodeId,
    rate: f64,
    contended: bool,
}

/// The allocate phase's output: every piecewise-constant rate in force for
/// the coming step. The horizon phase reads these to find the next event;
/// the integrate phase advances every task by exactly `rate × dt`.
///
/// All three indexes are sorted flat vectors recycled step over step (via
/// [`Sim::reclaim`]) instead of hash/tree maps: lookups are binary
/// searches or cursor walks over the same ascending order the consumers
/// iterate in, so the allocate phase neither hashes `NodeId`s nor
/// allocates in the steady state.
struct StepRates {
    /// Per-task node-contention scale (includes the management-stall
    /// factor), sorted by `TaskRef`.
    scales: Vec<(TaskRef, f64)>,
    /// Granted fabric bandwidth per remote-reading map attempt (MB/s),
    /// sorted by attempt id (the flow build order).
    map_posts: Vec<(MapAttemptId, f64)>,
    /// Granted shuffle fetches, sorted by `(reduce, src)`.
    fetch_posts: Vec<FetchPost>,
    /// Offered CPU capacity rate (cores) while any job is active.
    cpu_offered_rate: f64,
    /// Granted CPU rate (cores) summed over running tasks.
    cpu_granted_rate: f64,
}

/// Binary-search lookup in a sorted scale table; absent tasks score 0.0
/// (exactly the old `BTreeMap::get(..).unwrap_or(0.0)` contract).
fn scale_of(scales: &[(TaskRef, f64)], r: TaskRef) -> f64 {
    match scales.binary_search_by(|probe| probe.0.cmp(&r)) {
        Ok(i) => scales[i].1,
        Err(_) => 0.0,
    }
}

/// Cursor walk over a sorted posting list: advance `cursor` past keys
/// below `key`, then return the payload at `key` if present. Callers
/// iterate keys in ascending order, so the walk is linear overall.
fn posted<K: Ord + Copy, V: Copy>(posts: &[(K, V)], cursor: &mut usize, key: K) -> Option<V> {
    while *cursor < posts.len() && posts[*cursor].0 < key {
        *cursor += 1;
    }
    (*cursor < posts.len() && posts[*cursor].0 == key).then(|| posts[*cursor].1)
}

/// Invert every job's block→replica lists into per-node block postings
/// (`result[job][node]` = block indices with a replica on `node`). Derived
/// state: rebuilt here on construction and on capsule resume, so the
/// serialized [`EngineState`] stays exactly the pre-dense format.
fn build_replica_postings(jobs: &[JobInProgress], workers: usize) -> Vec<Vec<Vec<u32>>> {
    jobs.iter()
        .map(|job| job.layout.node_postings(workers))
        .collect()
}

/// The engine. Construct with a config, then [`Engine::run`] a workload
/// under a policy. An engine can run multiple workloads; each run is
/// independent (fresh RNG derivation from the seed).
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `jobs` to completion under `policy`.
    pub fn run(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn SlotPolicy,
    ) -> Result<RunReport, SimError> {
        self.run_with(jobs, policy, &Telemetry::disabled())
    }

    /// Run `jobs` to completion under `policy`, recording tick-phase spans,
    /// slot-count tracks and lifecycle/decision instants into `telem`.
    /// Telemetry is strictly observational: a run produces bit-identical
    /// results whether the handle is enabled, disabled, or shared.
    pub fn run_with(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn SlotPolicy,
        telem: &Telemetry,
    ) -> Result<RunReport, SimError> {
        self.config.validate()?;
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig("no jobs submitted".into()));
        }
        policy.attach_telemetry(telem);
        let mut sim = Sim::new(&self.config, jobs, policy, telem.clone())?;
        sim.run_to_completion()
    }

    /// [`Engine::run_with`] drawing the run's scratch buffers from
    /// `arena` instead of fresh allocations, and returning them to it
    /// when the run finishes (successfully or not). The report is
    /// byte-identical to the fresh-allocation path; only the allocation
    /// behaviour differs.
    pub fn run_in(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn SlotPolicy,
        telem: &Telemetry,
        arena: &mut EngineArena,
    ) -> Result<RunReport, SimError> {
        self.config.validate()?;
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig("no jobs submitted".into()));
        }
        policy.attach_telemetry(telem);
        let scratch = arena.checkout(self.config.cluster.workers);
        // a construction error drops the scratch; the arena simply
        // re-allocates (and counts a growth event) on its next checkout
        let mut sim = Sim::new_in(&self.config, jobs, policy, telem.clone(), scratch)?;
        let out = sim.run_to_completion();
        arena.check_in(sim.take_scratch());
        out
    }
}

/// Mutable state of one run.
/// One splitmix64-style avalanche round folding word `w` into digest `h`.
/// This is the engine's hash-fold primitive: `state_hash` starts at
/// [`initial_state_hash`] and absorbs one word at a time, every step.
pub fn fold_hash(h: u64, w: u64) -> u64 {
    let mut z = (h ^ w).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rolling state hash before any step has run: the FNV offset basis
/// folded with the run's seed, so two runs that differ only in seed
/// already differ at step zero.
pub fn initial_state_hash(seed: u64) -> u64 {
    fold_hash(0xcbf2_9ce4_8422_2325, seed)
}

/// One entry of a run's **hash trace**: the rolling state digest as it
/// stood after step `step` completed (time already advanced to `at_ms`).
/// A straight run and a capsule-resumed run of the same cell must produce
/// identical hashes at identical steps — one u64 comparison per step
/// replaces re-serializing full reports in equivalence proofs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPoint {
    /// 1-based count of completed steps.
    pub step: u64,
    /// Simulated milliseconds after the step's time advance.
    pub at_ms: u64,
    /// The rolling digest after this step's fold.
    pub hash: u64,
}

struct Sim<'p> {
    cfg: EngineConfig,
    policy: &'p mut dyn SlotPolicy,
    jobs: Vec<JobInProgress>,
    /// Immutable per-job profile copies (avoids borrow tangles).
    profiles: Vec<JobProfile>,
    trackers: Vec<Tracker>,
    running_maps: BTreeMap<MapAttemptId, MapTask>,
    running_reduces: BTreeMap<ReduceTaskId, ReduceTask>,
    sched: FifoScheduler,
    fabric: Fabric,
    rng: SimRng,
    now: SimTime,
    map_slot_series: RecordedSeries,
    reduce_slot_series: RecordedSeries,
    slot_changes: u64,
    heartbeat_round: u64,
    events: EventLog,
    telem: Telemetry,
    /// Integration steps executed so far (fixed ticks or adaptive
    /// macro-steps; reported and mirrored to a metrics counter).
    steps: u64,
    step_counter: telemetry::Counter,
    heartbeat_counter: telemetry::Counter,
    /// Per-step wall-clock histogram (µs); only fed under the `profiling`
    /// feature, where the extra clock reads are accepted.
    step_duration_us: telemetry::Histogram,
    speculative_attempts: u64,
    speculative_wins: u64,
    /// Injected failure points: attempt → progress fraction at which it
    /// dies. Decided at launch so runs stay deterministic.
    failure_points: HashMap<MapAttemptId, f64>,
    map_failures: u64,
    /// Integral of granted CPU (core·s) across the run.
    cpu_granted_core_s: f64,
    /// Integral of offered CPU capacity (core·s) while any job was active.
    cpu_offered_core_s: f64,
    /// Total bytes moved over the fabric (shuffle fetches + remote reads).
    network_mb: f64,
    /// Per-node up/down state driven by the fault plan.
    node_up: Vec<bool>,
    /// Every fault-plan transition at or before this instant has been
    /// applied (lets fixed mode pick up off-grid instants on the next tick).
    faults_done_until: SimTime,
    /// Desired replica count, from the DFS placement policy — the
    /// re-replication target.
    replication: usize,
    /// Under-replicated `(job, block)` pairs awaiting re-replication,
    /// restored in FIFO order.
    rerep_queue: VecDeque<(usize, usize)>,
    /// Accumulated re-replication budget (MB) not yet spent on a block.
    rerep_progress: f64,
    node_crashes: u64,
    /// In-flight attempts killed by crashes (on the dead node or streaming
    /// input from it).
    crash_task_kills: u64,
    /// Completed maps re-executed because their output died with a node.
    lost_map_outputs: u64,
    trackers_blacklisted: u64,
    /// Total map input MB consumed across all attempts (work conservation:
    /// never less than the sum of job inputs on a successful run).
    map_input_processed_mb: f64,
    node_crash_counter: telemetry::Counter,
    lost_output_counter: telemetry::Counter,
    /// Hadoop-style job counters, one ledger per job (kept off
    /// `JobInProgress` so the integrate-phase destructuring splits
    /// cleanly).
    job_counters: Vec<CounterLedger>,
    /// Per-node resource-grant integrals between sample boundaries.
    usage: NodeUsageSampler,
    /// Per-node rate scratch rewritten by every allocate phase and read by
    /// the following integrate: granted CPU cores, disk MB/s, and NIC
    /// MB/s per direction. Kept on the sim so the step loop allocates
    /// nothing.
    node_cpu: Vec<f64>,
    node_disk: Vec<f64>,
    nic_in: Vec<f64>,
    nic_out: Vec<f64>,
    occ_map: Vec<usize>,
    occ_reduce: Vec<usize>,
    /// Per-node task lists and the flattened demand vector the node
    /// allocator walks; cleared and refilled by every allocate phase.
    task_scratch: Vec<Vec<(TaskRef, simgrid::node::TaskDemand)>>,
    demand_scratch: Vec<simgrid::node::TaskDemand>,
    /// Flow list (and the purpose tags indexing its grants) handed to the
    /// fabric each step; cleared and rebuilt in place.
    flow_scratch: Vec<Flow>,
    purpose_scratch: Vec<(FlowId, FlowPurpose)>,
    /// Dense water-filling state (cluster-sized slabs, epoch-reset) and
    /// the positional rate vector the fabric writes grants into.
    fabric_scratch: FabricScratch,
    rate_scratch: Vec<f64>,
    /// Recycled backing stores for [`StepRates`]; swapped out at allocate
    /// and swapped back by [`Sim::reclaim`] after integrate.
    scales_scratch: Vec<(TaskRef, f64)>,
    map_post_scratch: Vec<(MapAttemptId, f64)>,
    fetch_post_scratch: Vec<FetchPost>,
    /// Per-reduce fetch-source list rebuilt by every flow build.
    source_scratch: Vec<(NodeId, f64)>,
    /// Live-tracker snapshots rebuilt by every heartbeat fan-in.
    snapshot_scratch: Vec<TrackerSnapshot>,
    /// Per-job, per-node replica postings: `replica_postings[job][node]`
    /// lists the block indices of `job` holding a replica on `node`, so a
    /// crash prunes exactly the affected blocks instead of scanning every
    /// block of every job. Derived state — rebuilt from the layouts on
    /// construction and on capsule resume, never serialized.
    replica_postings: Vec<Vec<Vec<u32>>>,
    /// Capture an [`EngineState`] capsule at every multiple of this period
    /// (must itself be a multiple of the sample period, so captures land on
    /// instants both stepping modes already stop at).
    snap_every: Option<SimDuration>,
    /// Capsules captured so far this run (drained by the engine).
    snapshots: Vec<EngineState>,
    /// True when this run was restored from a capsule taken inside the
    /// step loop: the adaptive pre-loop sample at t=0 is already in the
    /// recorded series and must not be taken again.
    resumed: bool,
    /// Rolling per-step state digest (see [`fold_hash`]): seeded from the
    /// run's seed, folded once per completed step, carried by every
    /// capsule and restored on resume so a resumed run's digests line up
    /// with the straight run's.
    state_hash: u64,
    /// When set, every step's fold is also recorded into `hash_trace`.
    /// Off by default: the push below is the only step-loop allocation
    /// tracing adds, and the zero-alloc telemetry gate runs untraced.
    trace_hashes: bool,
    hash_trace: Vec<HashPoint>,
}

impl<'p> Sim<'p> {
    fn new(
        cfg: &EngineConfig,
        specs: Vec<JobSpec>,
        policy: &'p mut dyn SlotPolicy,
        telem: Telemetry,
    ) -> Result<Sim<'p>, SimError> {
        let scratch = Scratch::fresh(cfg.cluster.workers);
        Sim::new_in(cfg, specs, policy, telem, scratch)
    }

    /// [`Sim::new`] with the scratch family supplied by the caller — the
    /// arena-backed construction path. `scratch` must already be reset for
    /// `cfg.cluster.workers` nodes (both [`Scratch::fresh`] and
    /// [`EngineArena::checkout`] guarantee this).
    fn new_in(
        cfg: &EngineConfig,
        specs: Vec<JobSpec>,
        policy: &'p mut dyn SlotPolicy,
        telem: Telemetry,
        scratch: Scratch,
    ) -> Result<Sim<'p>, SimError> {
        let root = SimRng::new(cfg.seed);
        let placement = dfs::PlacementPolicy::default();
        let replication = placement.replication();
        let mut namenode = NameNode::new(
            cfg.cluster.clone(),
            placement,
            cfg.block_mb,
            root.derive("dfs"),
        );
        let mut jobs = Vec::with_capacity(specs.len());
        let mut profiles = Vec::with_capacity(specs.len());
        for (i, spec) in specs.into_iter().enumerate() {
            if spec.id.0 != i {
                return Err(SimError::InvalidConfig(format!(
                    "job ids must be dense submission order (job {i} has id {})",
                    spec.id.0
                )));
            }
            let layout = namenode.create_file(spec.input_mb);
            profiles.push(spec.profile.clone());
            jobs.push(JobInProgress::new(spec, layout, cfg.cluster.workers));
        }
        let trackers = cfg
            .cluster
            .nodes()
            .map(|node| Tracker {
                node,
                map_slots: SlotSet::new(cfg.init_map_slots),
                reduce_slots: SlotSet::new(cfg.init_reduce_slots),
                meters: TrackerMeters::new(SimTime::ZERO),
                stall_ms: 0,
                down_since: None,
                lost_handled: true,
                attempt_failures: 0,
                blacklisted: false,
            })
            .collect();
        let mut events = EventLog::new(cfg.record_events);
        events.set_sink(telem.clone());
        let node_specs: Vec<simgrid::node::NodeSpec> = cfg
            .cluster
            .nodes()
            .map(|n| *cfg.cluster.node_spec(n))
            .collect();
        let job_counters = vec![CounterLedger::new(); jobs.len()];
        let replica_postings = build_replica_postings(&jobs, cfg.cluster.workers);
        Ok(Sim {
            sched: FifoScheduler {
                reduce_slowstart: cfg.reduce_slowstart,
                kind: cfg.scheduler,
            },
            fabric: Fabric::new(cfg.fabric),
            rng: root.derive("engine"),
            cfg: cfg.clone(),
            policy,
            jobs,
            profiles,
            trackers,
            running_maps: BTreeMap::new(),
            running_reduces: BTreeMap::new(),
            now: SimTime::ZERO,
            map_slot_series: RecordedSeries::new("map_slot_target", telem.clone()),
            reduce_slot_series: RecordedSeries::new("reduce_slot_target", telem.clone()),
            slot_changes: 0,
            heartbeat_round: 0,
            events,
            steps: 0,
            step_counter: telem.counter("engine.steps"),
            heartbeat_counter: telem.counter("engine.heartbeat_rounds"),
            step_duration_us: telem.histogram("engine.step_duration_us"),
            node_crash_counter: telem.counter("engine.node_crashes"),
            lost_output_counter: telem.counter("engine.lost_map_outputs"),
            telem,
            speculative_attempts: 0,
            speculative_wins: 0,
            failure_points: HashMap::new(),
            map_failures: 0,
            cpu_granted_core_s: 0.0,
            cpu_offered_core_s: 0.0,
            network_mb: 0.0,
            node_up: vec![true; cfg.cluster.workers],
            faults_done_until: SimTime::ZERO,
            replication,
            rerep_queue: VecDeque::new(),
            rerep_progress: 0.0,
            node_crashes: 0,
            crash_task_kills: 0,
            lost_map_outputs: 0,
            trackers_blacklisted: 0,
            map_input_processed_mb: 0.0,
            job_counters,
            usage: NodeUsageSampler::new(&node_specs),
            node_cpu: scratch.node_cpu,
            node_disk: scratch.node_disk,
            nic_in: scratch.nic_in,
            nic_out: scratch.nic_out,
            occ_map: scratch.occ_map,
            occ_reduce: scratch.occ_reduce,
            task_scratch: scratch.node_tasks,
            demand_scratch: scratch.demands,
            flow_scratch: scratch.flows,
            purpose_scratch: scratch.purposes,
            fabric_scratch: scratch.fabric,
            rate_scratch: scratch.rates,
            scales_scratch: scratch.scales,
            map_post_scratch: scratch.map_posts,
            fetch_post_scratch: scratch.fetch_posts,
            source_scratch: scratch.sources,
            snapshot_scratch: scratch.snapshots,
            replica_postings,
            snap_every: None,
            snapshots: Vec::new(),
            resumed: false,
            state_hash: initial_state_hash(cfg.seed),
            trace_hashes: false,
            hash_trace: Vec::new(),
        })
    }

    /// Hand the scratch family back (for return to an [`EngineArena`])
    /// once the run is over. The sim must not step again afterwards.
    fn take_scratch(&mut self) -> Scratch {
        Scratch {
            node_cpu: std::mem::take(&mut self.node_cpu),
            node_disk: std::mem::take(&mut self.node_disk),
            nic_in: std::mem::take(&mut self.nic_in),
            nic_out: std::mem::take(&mut self.nic_out),
            occ_map: std::mem::take(&mut self.occ_map),
            occ_reduce: std::mem::take(&mut self.occ_reduce),
            node_tasks: std::mem::take(&mut self.task_scratch),
            demands: std::mem::take(&mut self.demand_scratch),
            flows: std::mem::take(&mut self.flow_scratch),
            purposes: std::mem::take(&mut self.purpose_scratch),
            fabric: std::mem::take(&mut self.fabric_scratch),
            rates: std::mem::take(&mut self.rate_scratch),
            scales: std::mem::take(&mut self.scales_scratch),
            map_posts: std::mem::take(&mut self.map_post_scratch),
            fetch_posts: std::mem::take(&mut self.fetch_post_scratch),
            sources: std::mem::take(&mut self.source_scratch),
            snapshots: std::mem::take(&mut self.snapshot_scratch),
        }
    }

    /// Return a step's [`StepRates`] backing stores to the sim's scratch
    /// fields once integrate has consumed them, so the next allocate phase
    /// reuses the allocations instead of growing fresh ones.
    fn reclaim(&mut self, rates: StepRates) {
        self.scales_scratch = rates.scales;
        self.map_post_scratch = rates.map_posts;
        self.fetch_post_scratch = rates.fetch_posts;
    }

    fn run_to_completion(&mut self) -> Result<RunReport, SimError> {
        let finished = self.advance(None)?;
        debug_assert!(finished, "unbounded advance only returns on completion");
        Ok(self.build_report())
    }

    /// Advance the run until every job finishes or the sim clock reaches
    /// `until` (whichever comes first); `None` means run to completion.
    /// Returns `true` when all jobs have finished.
    ///
    /// The stop check sits at the very top of the step loop — the same
    /// point [`Sim::maybe_capture`] captures at — so a capsule captured
    /// at the stop instant resumes with that instant's fault transitions
    /// and heartbeat still pending and replays them identically. Step
    /// boundaries are pure functions of sim state, so an interrupted run
    /// advances through exactly the steps an uninterrupted one would.
    fn advance(&mut self, until: Option<SimTime>) -> Result<bool, SimError> {
        match self.cfg.tick.mode {
            SteppingMode::Fixed => self.advance_fixed(until),
            SteppingMode::Adaptive => self.advance_adaptive(until),
        }
    }

    /// Capture a capsule when the loop reaches a checkpoint instant.
    /// Called at the very top of the step loop, before that instant's
    /// fault transitions and heartbeat run, so a restored run re-enters
    /// the loop at exactly this point and replays them identically.
    fn maybe_capture(&mut self) {
        let Some(every) = self.snap_every else {
            return;
        };
        if self.now.is_multiple_of(every) {
            let snap = self.capture_state(true);
            self.snapshots.push(snap);
        }
    }

    /// Fold this step's state delta into the rolling digest. Called once
    /// per step, immediately after the step's time advance, in both
    /// stepping modes — so a resumed run (which restores `state_hash`
    /// from the capsule) produces the same digest sequence as the
    /// straight run from the first post-resume step onwards.
    ///
    /// The fold covers the words that move every step (time, step count,
    /// the full RNG position, per-task progress floats bit-exactly) plus
    /// every monotone counter a divergence could first show up in. It
    /// deliberately allocates nothing: O(jobs + running tasks + nodes/64)
    /// folds over fields already resident.
    fn fold_step_hash(&mut self) {
        let mut h = self.state_hash;
        h = fold_hash(h, self.now.as_millis());
        h = fold_hash(h, self.steps);
        for w in self.rng.state_words() {
            h = fold_hash(h, w);
        }
        h = fold_hash(h, self.running_maps.len() as u64);
        h = fold_hash(h, self.running_reduces.len() as u64);
        for j in &self.jobs {
            h = fold_hash(
                h,
                (j.completed_maps as u64) ^ ((j.completed_reduces as u64) << 32),
            );
            h = fold_hash(
                h,
                (j.running_maps as u64) ^ ((j.running_reduces as u64) << 32),
            );
        }
        for t in self.running_maps.values() {
            h = fold_hash(h, t.work_remaining.to_bits());
        }
        for t in self.running_reduces.values() {
            h = fold_hash(h, t.fetched_mb.to_bits());
            h = fold_hash(h, t.phase_remaining.to_bits());
        }
        h = fold_hash(h, self.cpu_granted_core_s.to_bits());
        h = fold_hash(h, self.cpu_offered_core_s.to_bits());
        h = fold_hash(h, self.network_mb.to_bits());
        h = fold_hash(h, self.map_input_processed_mb.to_bits());
        h = fold_hash(h, self.rerep_progress.to_bits());
        h = fold_hash(h, self.slot_changes ^ self.heartbeat_round.rotate_left(32));
        h = fold_hash(
            h,
            self.map_failures
                ^ self.node_crashes.rotate_left(16)
                ^ self.crash_task_kills.rotate_left(32)
                ^ self.lost_map_outputs.rotate_left(48),
        );
        h = fold_hash(
            h,
            self.trackers_blacklisted
                ^ self.speculative_attempts.rotate_left(21)
                ^ self.speculative_wins.rotate_left(42),
        );
        h = fold_hash(h, self.rerep_queue.len() as u64);
        let mut mask = 0u64;
        for (i, up) in self.node_up.iter().enumerate() {
            if *up {
                mask |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                h = fold_hash(h, mask);
                mask = 0;
            }
        }
        if !self.node_up.len().is_multiple_of(64) {
            h = fold_hash(h, mask);
        }
        self.state_hash = h;
        if self.trace_hashes {
            self.hash_trace.push(HashPoint {
                step: self.steps,
                at_ms: self.now.as_millis(),
                hash: h,
            });
        }
    }

    /// The fixed-tick reference loop: every step is exactly one tick.
    fn advance_fixed(&mut self, until: Option<SimTime>) -> Result<bool, SimError> {
        if self.jobs.iter().all(|j| j.is_finished()) {
            return Ok(true); // idle run: the sim clock stays frozen
        }
        let dt = self.cfg.tick.dt_secs();
        let dt_ms = self.cfg.tick.tick.as_millis();
        loop {
            if until.is_some_and(|stop| self.now >= stop) {
                return Ok(false);
            }
            self.maybe_capture();
            let step_start = self.telem.clock_us();
            let sim_ms = self.now.as_millis();
            self.process_fault_transitions()?;
            if self.now.is_multiple_of(self.cfg.heartbeat) {
                let t0 = self.telem.clock_us();
                self.check_expired_trackers()?;
                self.heartbeat_round();
                self.telem
                    .record_span("engine", "heartbeat_round", t0, sim_ms);
            }
            let rates = self.allocate_step(Some(dt));
            self.integrate(dt, dt_ms, &rates);
            self.reclaim(rates);
            if self.now.is_multiple_of(self.cfg.sample_period) {
                let t0 = self.telem.clock_us();
                self.sample();
                self.telem.record_span("engine", "sample", t0, sim_ms);
            }
            self.steps += 1;
            self.step_counter.inc();
            if telemetry::PROFILING_ENABLED {
                let end = self.telem.clock_us();
                self.step_duration_us.record(end.saturating_sub(step_start));
            }
            self.now += self.cfg.tick.tick;
            self.fold_step_hash();
            if self.jobs.iter().all(|j| j.is_finished()) {
                self.sample();
                return Ok(true);
            }
            if self.now > self.cfg.tick.horizon {
                return Err(self.horizon_error());
            }
        }
    }

    /// The adaptive event-horizon loop: after each allocation, advance by
    /// the earliest instant at which any rate can change. Heartbeat and
    /// sample boundaries cap every step, so periodic logic (and with it
    /// every RNG draw) lands on exactly the same instants as in fixed mode.
    fn advance_adaptive(&mut self, until: Option<SimTime>) -> Result<bool, SimError> {
        if self.jobs.iter().all(|j| j.is_finished()) {
            return Ok(true); // idle run: the sim clock stays frozen
        }
        // record the initial state so slot/progress series start at t=0
        // (already recorded when resuming from an in-loop capture)
        if !self.resumed {
            self.sample();
            self.resumed = true;
        }
        loop {
            if until.is_some_and(|stop| self.now >= stop) {
                return Ok(false);
            }
            self.maybe_capture();
            let step_start = self.telem.clock_us();
            let sim_ms = self.now.as_millis();
            self.process_fault_transitions()?;
            if self.now.is_multiple_of(self.cfg.heartbeat) {
                let t0 = self.telem.clock_us();
                self.check_expired_trackers()?;
                self.heartbeat_round();
                self.telem
                    .record_span("engine", "heartbeat_round", t0, sim_ms);
            }
            let rates = self.allocate_step(None);
            let t0 = self.telem.clock_us();
            let dt = self.compute_horizon(&rates);
            self.telem.record_span("step", "event_horizon", t0, sim_ms);
            self.integrate(dt.as_secs_f64(), dt.as_millis(), &rates);
            self.reclaim(rates);
            self.steps += 1;
            self.step_counter.inc();
            if telemetry::PROFILING_ENABLED {
                let end = self.telem.clock_us();
                self.step_duration_us.record(end.saturating_sub(step_start));
            }
            self.now += dt;
            self.fold_step_hash();
            let finished = self.jobs.iter().all(|j| j.is_finished());
            if finished || self.now.is_multiple_of(self.cfg.sample_period) {
                let t0 = self.telem.clock_us();
                self.sample();
                self.telem.record_span("engine", "sample", t0, sim_ms);
            }
            if finished {
                return Ok(true);
            }
            if self.now > self.cfg.tick.horizon {
                return Err(self.horizon_error());
            }
        }
    }

    fn horizon_error(&self) -> SimError {
        let pending: Vec<String> = self
            .jobs
            .iter()
            .filter(|j| !j.is_finished())
            .map(|j| {
                format!(
                    "{}: {}/{} maps, {}/{} reduces",
                    j.spec.profile.name,
                    j.completed_maps,
                    j.total_maps(),
                    j.completed_reduces,
                    j.total_reduces()
                )
            })
            .collect();
        SimError::HorizonExceeded {
            horizon: self.cfg.tick.horizon,
            pending_work: pending.join("; "),
        }
    }

    // ------------------------------------------------------------------
    // Heartbeat round: stats → policy → assignment
    // ------------------------------------------------------------------

    fn heartbeat_round(&mut self) {
        let sim_ms = self.now.as_millis();
        let t0 = self.telem.clock_us();
        let stats = self.aggregate_stats();
        self.telem
            .record_span("heartbeat", "aggregate_stats", t0, sim_ms);
        // dead and blacklisted trackers are invisible to the policy: slot
        // targets are recomputed over the live set only, so every policy
        // (SMapReduce included) is fault-aware without its own crash logic.
        // The snapshot list is a recycled cluster-sized buffer, so the
        // heartbeat fan-in stops allocating once it has seen a full round.
        let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
        snapshots.clear();
        snapshots.extend(
            self.trackers
                .iter()
                .filter(|t| self.node_up[t.node.0] && !t.blacklisted)
                .map(|t| TrackerSnapshot {
                    node: t.node,
                    cores: self.cfg.cluster.node_spec(t.node).cores,
                    map_target: t.map_slots.target(),
                    map_occupied: t.map_slots.occupied(),
                    reduce_target: t.reduce_slots.target(),
                    reduce_occupied: t.reduce_slots.occupied(),
                }),
        );
        let ctx = PolicyContext {
            now: self.now,
            stats: &stats,
            trackers: &snapshots,
            init_map_slots: self.cfg.init_map_slots,
            init_reduce_slots: self.cfg.init_reduce_slots,
        };
        let t0 = self.telem.clock_us();
        let directives = self.policy.decide(&ctx);
        self.telem
            .record_span("heartbeat", "policy_decide", t0, sim_ms);
        self.snapshot_scratch = snapshots;
        let overhead = self.policy.directive_overhead_ms();
        for d in directives {
            let tr = &mut self.trackers[d.node.0];
            let mut changed = tr.map_slots.set_target(d.map_slots);
            changed |= tr.reduce_slots.set_target(d.reduce_slots);
            if changed {
                self.slot_changes += 1;
                tr.stall_ms += overhead;
                self.events.push(Event::SlotTargetsChanged {
                    at: self.now,
                    node: d.node,
                    map_slots: d.map_slots,
                    reduce_slots: d.reduce_slots,
                });
            }
        }
        let t0 = self.telem.clock_us();
        self.assign_tasks();
        if self.cfg.speculative_maps {
            self.launch_speculative_backups();
        }
        self.telem
            .record_span("heartbeat", "assign_tasks", t0, sim_ms);
        self.heartbeat_round += 1;
        self.heartbeat_counter.inc();
    }

    /// Harvest every tracker's meters and aggregate active-job state.
    fn aggregate_stats(&mut self) -> ClusterStats {
        let mut s = ClusterStats {
            now: self.now,
            ..ClusterStats::default()
        };
        for i in 0..self.trackers.len() {
            let up = self.node_up[i];
            let tr = &mut self.trackers[i];
            // harvest everyone (keeps meter windows aligned), but a dead
            // node's slots are not part of the cluster's configured capacity
            let hb = tr.meters.harvest(self.now);
            s.map_input_rate += hb.map_input_rate;
            s.map_output_rate += hb.map_output_rate;
            s.shuffle_rate += hb.shuffle_rate;
            if up {
                s.map_slot_target += tr.map_slots.target();
                s.reduce_slot_target += tr.reduce_slots.target();
            }
        }
        for (rid, r) in &self.running_reduces {
            if r.phase == ReducePhase::Shuffle && self.jobs[rid.job.0].is_active(self.now) {
                s.shuffling_reduces += 1;
            }
        }
        let now = self.now;
        for job in self.jobs.iter().filter(|j| j.is_active(now)) {
            s.total_maps += job.total_maps();
            s.pending_maps += job.pending_map_blocks.len();
            s.running_maps += job.running_maps;
            s.completed_maps += job.completed_maps;
            s.total_reduces += job.total_reduces();
            s.pending_reduces += job.pending_reduce_parts.len();
            if job.reduces_eligible(self.cfg.reduce_slowstart) {
                s.eligible_pending_reduces += job.pending_reduce_parts.len();
            }
            s.running_reduces += job.running_reduces;
            s.completed_reduces += job.completed_reduces;
            s.map_output_mb += job.shuffle.total_output_mb();
            s.est_shuffle_total_mb += job.spec.expected_shuffle_mb();
        }
        if s.total_reduces > 0 {
            s.est_shuffle_per_reduce_mb = s.est_shuffle_total_mb / s.total_reduces as f64;
        }
        s
    }

    /// Offer free slots to the scheduler, rotating the starting tracker
    /// each round so assignment pressure spreads evenly.
    fn assign_tasks(&mut self) {
        let workers = self.trackers.len();
        let start = (self.heartbeat_round as usize) % workers;
        for k in 0..workers {
            let i = (start + k) % workers;
            if !self.node_up[i] || self.trackers[i].blacklisted {
                continue; // dead or blacklisted trackers get no work
            }
            let node = self.trackers[i].node;
            while self.trackers[i].map_slots.free() > 0 {
                let Some(a) = self.sched.pick_map(&mut self.jobs, node, self.now) else {
                    break;
                };
                let jitter = self.draw_map_jitter();
                let task = MapTask::new(
                    a.id,
                    node,
                    &self.profiles[a.id.job.0],
                    a.input_mb,
                    a.remote_src,
                    jitter,
                    self.now,
                );
                self.trackers[i].map_slots.launch();
                self.events.push(Event::MapLaunched {
                    at: self.now,
                    id: a.id,
                    node,
                    remote_read: a.remote_src.is_some(),
                });
                if a.remote_src.is_some() {
                    self.jobs[a.id.job.0].remote_launches += 1;
                } else {
                    self.jobs[a.id.job.0].local_launches += 1;
                }
                let c = &mut self.job_counters[a.id.job.0];
                c.inc(Counter::TotalLaunchedMaps);
                if a.remote_src.is_some() {
                    c.inc(Counter::RemoteMaps);
                } else {
                    c.inc(Counter::DataLocalMaps);
                }
                let aid = MapAttemptId::original(a.id);
                self.maybe_inject_failure(aid);
                self.running_maps.insert(aid, task);
            }
            while self.trackers[i].reduce_slots.free() > 0 {
                let Some(rid) = self.sched.pick_reduce(&mut self.jobs, self.now) else {
                    break;
                };
                let jitter = self.rng.jitter(self.cfg.jitter_amp);
                let task = ReduceTask::with_profile_overheads(
                    rid,
                    node,
                    workers,
                    &self.profiles[rid.job.0],
                    jitter,
                    self.now,
                );
                self.trackers[i].reduce_slots.launch();
                self.job_counters[rid.job.0].inc(Counter::TotalLaunchedReduces);
                self.events.push(Event::ReduceLaunched {
                    at: self.now,
                    id: rid,
                    node,
                });
                self.running_reduces.insert(rid, task);
            }
        }
    }

    // ------------------------------------------------------------------
    // Physics, phase 1 — allocate: derive every rate in force for the step
    // ------------------------------------------------------------------

    /// Allocate node contention scales and fabric bandwidth. `fixed_dt` is
    /// `Some(tick seconds)` in fixed mode, where flow demands are capped
    /// by what one tick can consume; the adaptive stepper passes `None`
    /// and expresses pure rates — exhaustion becomes an event-horizon cut
    /// instead of a per-step demand cap.
    fn allocate_step(&mut self, fixed_dt: Option<f64>) -> StepRates {
        let sim_ms = self.now.as_millis();
        let t0 = self.telem.clock_us();
        let (scales, cpu_offered_rate, cpu_granted_rate) = self.allocate_nodes(fixed_dt.is_some());
        self.telem.record_span("step", "allocate_nodes", t0, sim_ms);
        let t0 = self.telem.clock_us();
        let mut flows = std::mem::take(&mut self.flow_scratch);
        let mut purposes = std::mem::take(&mut self.purpose_scratch);
        let mut sources = std::mem::take(&mut self.source_scratch);
        flows.clear();
        purposes.clear();
        self.build_flows_into(fixed_dt, &scales, &mut flows, &mut purposes, &mut sources);
        let mut grants = std::mem::take(&mut self.rate_scratch);
        let workers = self.trackers.len();
        self.fabric
            .allocate_into(&flows, workers, &mut self.fabric_scratch, &mut grants);
        self.telem
            .record_span("step", "network_allocate", t0, sim_ms);

        // index flow grants by purpose into sorted postings; a fetch that
        // got less than it asked for is *contended* — its depletion frees
        // fabric bandwidth others are waiting on, so it must be a horizon
        // event
        let mut map_posts = std::mem::take(&mut self.map_post_scratch);
        let mut fetch_posts = std::mem::take(&mut self.fetch_post_scratch);
        map_posts.clear();
        fetch_posts.clear();
        self.nic_in.fill(0.0);
        self.nic_out.fill(0.0);
        for ((flow, (fid, purpose)), &rate) in flows.iter().zip(&purposes).zip(&grants) {
            debug_assert_eq!(flow.id, *fid);
            self.nic_out[flow.src.0] += rate;
            self.nic_in[flow.dst.0] += rate;
            match *purpose {
                FlowPurpose::MapRead(id) => map_posts.push((id, rate)),
                FlowPurpose::Fetch(rid, src) => fetch_posts.push(FetchPost {
                    reduce: rid,
                    src,
                    rate,
                    contended: rate + 1e-9 < flow.demand,
                }),
            }
        }
        // map-read flows are built in ascending `running_maps` order, so
        // `map_posts` arrives sorted; fetch posts are grouped by ascending
        // reduce but unsorted within a group (sources come backlog-first)
        debug_assert!(map_posts.windows(2).all(|w| w[0].0 < w[1].0));
        fetch_posts.sort_unstable_by_key(|p| (p.reduce, p.src));
        self.flow_scratch = flows;
        self.purpose_scratch = purposes;
        self.source_scratch = sources;
        self.rate_scratch = grants;
        StepRates {
            scales,
            map_posts,
            fetch_posts,
            cpu_offered_rate,
            cpu_granted_rate,
        }
    }

    // ------------------------------------------------------------------
    // Physics, phase 3 — integrate: advance every piecewise-constant
    // integrator by exactly `dt` at the rates fixed in phase 1
    // ------------------------------------------------------------------

    fn integrate(&mut self, dt: f64, dt_ms: u64, rates: &StepRates) {
        let sim_ms = self.now.as_millis();
        // fold this step's grants into the utilization sampler before any
        // task completes and releases its slot: the rates were computed
        // against step-start occupancy, so that is what the step sustains.
        // Down nodes integrate nothing — their timelines gap over the
        // outage.
        self.usage.accumulate_all(
            dt,
            &self.node_up,
            &self.node_cpu,
            &self.node_disk,
            &self.nic_in,
            &self.nic_out,
            &self.occ_map,
            &self.occ_reduce,
        );
        let t0 = self.telem.clock_us();
        self.advance_maps(dt, &rates.scales, &rates.map_posts);
        self.telem.record_span("step", "advance_maps", t0, sim_ms);
        let t0 = self.telem.clock_us();
        self.advance_reduces(dt, &rates.scales, &rates.fetch_posts);
        self.telem
            .record_span("step", "advance_reduces", t0, sim_ms);

        self.cpu_offered_core_s += rates.cpu_offered_rate * dt;
        self.cpu_granted_core_s += rates.cpu_granted_rate * dt;

        // decay management stalls
        for tr in &mut self.trackers {
            tr.stall_ms = tr.stall_ms.saturating_sub(dt_ms);
        }
        self.advance_rereplication(dt);
    }

    // ------------------------------------------------------------------
    // Physics, phase 2 — event horizon: how far the current rates stay valid
    // ------------------------------------------------------------------

    /// Earliest upcoming event at the rates fixed by [`Sim::allocate_step`]:
    /// the next heartbeat or sample boundary, a stall expiring, a job
    /// arriving, a map attempt finishing (or crossing its injected failure
    /// point), a shuffle source draining, or a sort/reduce phase ending.
    /// Advancing by exactly this duration loses no intermediate state
    /// because every integrator is piecewise-constant in between.
    fn compute_horizon(&self, rates: &StepRates) -> SimDuration {
        let mut horizon = EventHorizon::new(self.now.until_next_multiple_of(self.cfg.heartbeat));
        // cascades of task events within one tick-width merge into a single
        // step: the integrators clamp the overshoot, so adaptive stepping
        // is never *less* precise about an event time than the fixed grid
        horizon.coalesce_events(self.cfg.tick.tick);
        horizon.propose(self.now.until_next_multiple_of(self.cfg.sample_period));
        // crash/rejoin instants are exact events: the step lands on them
        if let Some(t) = self.cfg.fault_plan.next_transition_after(self.now) {
            horizon.propose(t.since(self.now));
        }

        for tr in &self.trackers {
            if tr.stall_ms > 0 {
                horizon.propose(SimDuration::from_millis(tr.stall_ms));
            }
        }
        for job in &self.jobs {
            if job.spec.submit_at > self.now {
                horizon.propose(job.spec.submit_at.since(self.now));
            }
        }

        let mut map_cursor = 0usize;
        for (id, t) in &self.running_maps {
            let profile = &self.profiles[id.task.job.0];
            let scale = scale_of(&rates.scales, TaskRef::Map(*id));
            let read_rate = posted(&rates.map_posts, &mut map_cursor, *id).unwrap_or(0.0);
            let work_rate = t.effective_work_rate(profile, scale, read_rate);
            if let Some(s) = t.time_to_completion(work_rate) {
                horizon.propose_secs(s);
            }
            if let Some(&fail_at) = self.failure_points.get(id) {
                if let Some(s) = t.time_to_progress(fail_at, work_rate) {
                    horizon.propose_secs(s);
                }
            }
        }

        let mut fetch_cursor = 0usize;
        for (rid, r) in &self.running_reduces {
            let profile = &self.profiles[rid.job.0];
            let job = &self.jobs[rid.job.0];
            let scale = scale_of(&rates.scales, TaskRef::Reduce(*rid));
            match r.phase {
                ReducePhase::Shuffle => {
                    // pre-barrier, sources refill only at map completions —
                    // which are horizon events themselves — so draining one
                    // changes no rate anyone is waiting on unless the flow
                    // was fabric-contended. Post-barrier (endgame) every
                    // drain leads to the shuffle→sort transition and must
                    // cut the step.
                    let endgame = job.shuffle.maps_all_done();
                    let boost = if endgame {
                        profile.shuffle_barrier_boost
                    } else {
                        1.0
                    };
                    let budget = profile.shuffle_merge_rate * scale * boost;
                    let local_rem = job.shuffle.remaining_from(r, r.node);
                    if endgame && local_rem > 0.0 {
                        horizon.propose_depletion(local_rem, self.cfg.local_copy_rate.min(budget));
                    }
                    // the posts are sorted by (reduce, src) and reduces
                    // iterate ascending, so one forward cursor visits each
                    // reduce's contiguous run of posts exactly once
                    while fetch_cursor < rates.fetch_posts.len()
                        && rates.fetch_posts[fetch_cursor].reduce < *rid
                    {
                        fetch_cursor += 1;
                    }
                    let mut c = fetch_cursor;
                    while c < rates.fetch_posts.len() && rates.fetch_posts[c].reduce == *rid {
                        let p = rates.fetch_posts[c];
                        c += 1;
                        if endgame || p.contended {
                            horizon.propose_depletion(job.shuffle.remaining_from(r, p.src), p.rate);
                        }
                    }
                    fetch_cursor = c;
                }
                ReducePhase::Sort | ReducePhase::Reduce => {
                    if let Some(s) = r.time_to_phase_completion(r.phase_rate(profile) * scale) {
                        horizon.propose_secs(s);
                    }
                }
                // completion is detected on the next integrate call
                ReducePhase::Done => horizon.propose(SimDuration::from_millis(1)),
            }
        }
        horizon.resolve()
    }

    /// Per-node contention scales for every running task, including the
    /// management-overhead stall factor, plus the offered/granted CPU
    /// *rates* (integrated over the step length later). In fixed mode a
    /// stall is amortised across the tick it partially covers; the
    /// adaptive stepper freezes the node outright and lets the horizon cut
    /// the step at stall expiry instead.
    fn allocate_nodes(&mut self, fixed: bool) -> (Vec<(TaskRef, f64)>, f64, f64) {
        let workers = self.trackers.len();
        self.node_cpu.fill(0.0);
        self.node_disk.fill(0.0);
        // recycle the per-node task lists: clear each inner list, keep the
        // backing allocations from previous steps (and previous cells)
        let mut node_tasks = std::mem::take(&mut self.task_scratch);
        for tasks in &mut node_tasks {
            tasks.clear();
        }
        node_tasks.resize_with(workers, Vec::new);
        for (id, t) in &self.running_maps {
            let profile = &self.profiles[id.task.job.0];
            node_tasks[t.node.0].push((TaskRef::Map(*id), profile.map_demand()));
        }
        for (id, t) in &self.running_reduces {
            let profile = &self.profiles[id.job.0];
            node_tasks[t.node.0].push((TaskRef::Reduce(*id), t.demand(profile)));
        }
        let tick_ms = self.cfg.tick.tick.as_millis() as f64;
        let any_active = self.jobs.iter().any(|j| j.is_active(self.now));
        let mut out = std::mem::take(&mut self.scales_scratch);
        out.clear();
        let mut offered = 0.0;
        let mut granted = 0.0;
        for (n, tasks) in node_tasks.iter().enumerate() {
            if !self.node_up[n] {
                // a dead node offers no CPU; its tasks freeze at scale 0
                // until the expiry interval declares them lost
                continue;
            }
            // snapshot step-start slot occupancy for the usage sampler
            // here, where the tracker is already in cache; nothing changes
            // it before the integrate phase reads the snapshot
            self.occ_map[n] = self.trackers[n].map_slots.occupied();
            self.occ_reduce[n] = self.trackers[n].reduce_slots.occupied();
            if any_active {
                offered += self.cfg.cluster.node_spec(NodeId(n)).cores;
            }
            if tasks.is_empty() {
                continue;
            }
            self.demand_scratch.clear();
            self.demand_scratch.extend(tasks.iter().map(|t| t.1));
            let scales = allocate_node(self.cfg.cluster.node_spec(NodeId(n)), &self.demand_scratch);
            let stall_factor = if fixed {
                1.0 - self.trackers[n].stall_ms.min(tick_ms as u64) as f64 / tick_ms
            } else if self.trackers[n].stall_ms > 0 {
                0.0
            } else {
                1.0
            };
            for ((r, d), s) in tasks.iter().zip(scales) {
                granted += d.cpu_cores * s * stall_factor;
                self.node_cpu[n] += d.cpu_cores * s * stall_factor;
                self.node_disk[n] += (d.disk_read + d.disk_write) * s * stall_factor;
                out.push((*r, s * stall_factor));
            }
        }
        self.task_scratch = node_tasks;
        // tasks were gathered per node, not in `TaskRef` order; sort so the
        // consumers can binary-search (unique keys ⇒ unstable sort is
        // deterministic)
        out.sort_unstable_by_key(|a| a.0);
        (out, offered, granted)
    }

    /// Construct this step's network flows: remote map reads and shuffle
    /// fetches (the latter capped by each reduce's merge throughput).
    /// Appends into caller-owned (recycled) lists; both arrive empty.
    fn build_flows_into(
        &self,
        fixed_dt: Option<f64>,
        scales: &[(TaskRef, f64)],
        flows: &mut Vec<Flow>,
        purposes: &mut Vec<(FlowId, FlowPurpose)>,
        sources: &mut Vec<(NodeId, f64)>,
    ) {
        let mut next = 0u64;

        for (id, t) in &self.running_maps {
            let Some(src) = t.remote_src else { continue };
            if t.input_remaining <= 1e-9 {
                continue;
            }
            if !self.node_up[src.0] || !self.node_up[t.node.0] {
                continue; // either endpoint dead: nothing flows
            }
            let profile = &self.profiles[id.task.job.0];
            let scale = scale_of(scales, TaskRef::Map(*id));
            // input consumption rate implied by the granted work rate
            let work_rate = profile.map_rate * scale;
            let input_rate = if t.work_total > 0.0 {
                work_rate * t.input_mb / t.work_total
            } else {
                0.0
            };
            // fixed mode caps demand by what this tick can consume; the
            // adaptive stepper expresses the pure rate and relies on the
            // event horizon to cut the step at exhaustion
            let demand = match fixed_dt {
                Some(dt) => input_rate.min(t.input_remaining / dt),
                None => input_rate,
            };
            if demand <= 0.0 {
                continue;
            }
            let fid = FlowId(next);
            next += 1;
            flows.push(Flow {
                id: fid,
                src,
                dst: t.node,
                demand,
            });
            purposes.push((fid, FlowPurpose::MapRead(*id)));
        }

        for (rid, r) in &self.running_reduces {
            if r.phase != ReducePhase::Shuffle || !self.node_up[r.node.0] {
                continue;
            }
            let profile = &self.profiles[rid.job.0];
            let job = &self.jobs[rid.job.0];
            let scale = scale_of(scales, TaskRef::Reduce(*rid));
            // merge-throughput budget for this tick, shared across sources;
            // T_r2 > T_r1: the cap rises once the barrier frees the sources
            let boost = if job.shuffle.maps_all_done() {
                profile.shuffle_barrier_boost
            } else {
                1.0
            };
            let mut budget = profile.shuffle_merge_rate * scale * boost;
            // local copy consumes part of the budget without the fabric
            let local_rem = job.shuffle.remaining_from(r, r.node);
            if local_rem > 0.0 {
                let local_rate = match fixed_dt {
                    Some(dt) => (local_rem / dt).min(self.cfg.local_copy_rate),
                    None => self.cfg.local_copy_rate,
                };
                budget -= local_rate.min(budget);
            }
            job.shuffle
                .fetch_sources_into(r, profile.shuffle_fetchers as usize, sources);
            sources.retain(|&(src, _)| src != r.node && self.node_up[src.0]);
            // adaptive mode splits the budget proportionally to each
            // source's remaining data, so every granted source depletes at
            // the *same* instant — one horizon event per drain instead of
            // one per source
            let remote_total: f64 = sources.iter().map(|s| s.1).sum();
            for &(src, rem) in sources.iter() {
                if budget <= 1e-9 {
                    continue;
                }
                let demand = match fixed_dt {
                    Some(dt) => {
                        let d = (rem / dt).min(budget);
                        budget -= d;
                        d
                    }
                    None => budget * rem / remote_total,
                };
                if demand <= 1e-9 {
                    continue;
                }
                let fid = FlowId(next);
                next += 1;
                flows.push(Flow {
                    id: fid,
                    src,
                    dst: r.node,
                    demand,
                });
                purposes.push((fid, FlowPurpose::Fetch(*rid, src)));
            }
        }
    }

    fn advance_maps(
        &mut self,
        dt: f64,
        scales: &[(TaskRef, f64)],
        map_posts: &[(MapAttemptId, f64)],
    ) {
        let mut done = Vec::new();
        let mut failed = Vec::new();
        let Sim {
            running_maps,
            profiles,
            trackers,
            failure_points,
            network_mb,
            map_input_processed_mb,
            job_counters,
            ..
        } = self;
        let mut cursor = 0usize;
        for (id, t) in running_maps.iter_mut() {
            let profile = &profiles[id.task.job.0];
            let scale = scale_of(scales, TaskRef::Map(*id));
            let mut work_step = profile.map_rate * scale * dt;
            if t.remote_src.is_some() && t.input_remaining > 1e-9 {
                // input arrives over the network; cap work by delivery
                let delivered = posted(map_posts, &mut cursor, *id).unwrap_or(0.0) * dt;
                let arrived = delivered.min(t.input_remaining);
                *network_mb += arrived;
                job_counters[id.task.job.0].add(Counter::RemoteBytesRead, arrived);
                let work_cap = if t.input_mb > 0.0 {
                    delivered * t.work_total / t.input_mb
                } else {
                    work_step
                };
                work_step = work_step.min(work_cap);
            }
            let (consumed, _produced) = t.advance(work_step);
            trackers[t.node.0].meters.map_input.record(consumed);
            *map_input_processed_mb += consumed;
            job_counters[id.task.job.0].add(Counter::HdfsBytesRead, consumed);
            if let Some(&fail_at) = failure_points.get(id) {
                // reached_progress is the exact complement of the horizon's
                // time_to_progress, so a failure point landed on precisely
                // is never skipped (it used to be, one ulp under)
                if t.reached_progress(fail_at) {
                    failed.push(*id);
                    continue;
                }
            }
            if t.is_done() {
                done.push(*id);
            }
        }
        for id in failed {
            self.fail_map(id);
        }
        for id in done {
            self.complete_map(id);
        }
    }

    /// Kill a failed attempt and re-queue its block (Hadoop task retry).
    fn fail_map(&mut self, aid: MapAttemptId) {
        let task = self.remove_map_attempt(aid);
        self.map_failures += 1;
        self.job_counters[aid.task.job.0].inc(Counter::FailedMaps);
        self.events.push(Event::MapFailed {
            at: self.now,
            id: aid.task,
            node: task.node,
        });
        self.charge_tracker_failure(task.node);
    }

    /// Remove a running attempt, release its slot, and re-queue its block
    /// unless a sibling attempt still covers it. Shared by the retry and
    /// node-crash paths.
    fn remove_map_attempt(&mut self, aid: MapAttemptId) -> MapTask {
        let task = self
            .running_maps
            .remove(&aid)
            .expect("removing unknown map attempt");
        self.failure_points.remove(&aid);
        self.trackers[task.node.0].map_slots.release();
        let job = &mut self.jobs[aid.task.job.0];
        job.running_maps -= 1;
        let sibling = MapAttemptId {
            task: aid.task,
            attempt: 1 - aid.attempt,
        };
        if !job.completed_blocks[aid.task.index] && !self.running_maps.contains_key(&sibling) {
            job.pending_map_blocks.push(aid.task.index);
        }
        task
    }

    /// Count an attempt failure against its tracker; enough of them get
    /// the tracker blacklisted (Hadoop's `mapred.max.tracker.failures`).
    /// Crash kills are not charged — the tracker is already dead.
    fn charge_tracker_failure(&mut self, node: NodeId) {
        let tr = &mut self.trackers[node.0];
        tr.attempt_failures += 1;
        if !tr.blacklisted && tr.attempt_failures >= self.cfg.blacklist_threshold {
            tr.blacklisted = true;
            self.trackers_blacklisted += 1;
            self.events
                .push(Event::TrackerBlacklisted { at: self.now, node });
        }
    }

    /// Service-time factor for a new map attempt: base jitter, possibly
    /// multiplied by the degraded-path slowdown.
    fn draw_map_jitter(&mut self) -> f64 {
        let mut j = self.rng.jitter(self.cfg.jitter_amp);
        if self.cfg.straggler_rate > 0.0 && self.rng.unit() < self.cfg.straggler_rate {
            j *= self.cfg.straggler_slowdown;
        }
        j
    }

    /// Roll the dice for an attempt's injected failure.
    fn maybe_inject_failure(&mut self, aid: MapAttemptId) {
        if self.cfg.map_failure_rate > 0.0 && self.rng.unit() < self.cfg.map_failure_rate {
            // die somewhere in the middle of the run
            let fail_at = 0.1 + 0.8 * self.rng.unit();
            self.failure_points.insert(aid, fail_at);
        }
    }

    fn complete_map(&mut self, aid: MapAttemptId) {
        let task = self
            .running_maps
            .remove(&aid)
            .expect("completing unknown map attempt");
        self.failure_points.remove(&aid);
        let id = aid.task;
        let job = &mut self.jobs[id.job.0];
        self.trackers[task.node.0].map_slots.release();
        job.running_maps -= 1;
        if job.completed_blocks[id.index] {
            // a sibling attempt already delivered this block; this one
            // raced to the end and its work is discarded
            self.job_counters[id.job.0].inc(Counter::DiscardedMaps);
            self.events.push(Event::MapDiscarded {
                at: self.now,
                id,
                node: task.node,
            });
            return;
        }
        job.completed_blocks[id.index] = true;
        if aid.attempt > 0 {
            self.speculative_wins += 1;
        }
        // §IV-B: the MapTask records its output size upon completion; both
        // the meter and the shuffle availability are credited here. (The
        // slot manager averages the resulting lumpy rate over its balance
        // window — crediting production *continuously* instead would make
        // R_m lead R_s by a full task duration after every slot increase
        // and fake a shuffle lag.)
        self.trackers[task.node.0]
            .meters
            .map_output
            .record(task.output_mb);
        job.shuffle.on_map_complete(task.node, task.output_mb);
        let c = &mut self.job_counters[id.job.0];
        c.add(Counter::MapOutputMb, task.output_mb);
        c.add(Counter::SpilledRecords, task.output_mb);
        // remember where the output landed: if that node crashes while a
        // reducer still needs the data, the map is re-executed
        job.block_output_node[id.index] = Some(task.node);
        job.completed_maps += 1;
        job.map_durations
            .push(self.now.since(task.started_at).as_secs_f64());
        self.events.push(Event::MapCompleted {
            at: self.now,
            id,
            node: task.node,
            output_mb: task.output_mb,
        });
        // kill the losing sibling attempt, if any
        let sibling = MapAttemptId {
            task: id,
            attempt: 1 - aid.attempt,
        };
        if let Some(loser) = self.running_maps.remove(&sibling) {
            self.trackers[loser.node.0].map_slots.release();
            self.jobs[id.job.0].running_maps -= 1;
            self.job_counters[id.job.0].inc(Counter::KilledAttempts);
            self.events.push(Event::MapKilled {
                at: self.now,
                id,
                node: loser.node,
            });
        }
        let job = &mut self.jobs[id.job.0];
        if job.all_maps_done() {
            job.maps_done_at.get_or_insert(self.now);
            job.shuffle.set_maps_all_done();
            self.events.push(Event::BarrierCrossed {
                at: self.now,
                job: id.job,
            });
        }
    }

    /// Hadoop-style speculative execution: once a job has no pending maps,
    /// idle map slots may run backup attempts of its slowest running maps.
    fn launch_speculative_backups(&mut self) {
        let now = self.now;
        let min_rt = self.cfg.speculation_min_runtime;
        for j in 0..self.jobs.len() {
            let job = &self.jobs[j];
            if !job.is_active(now) || !job.pending_map_blocks.is_empty() || job.all_maps_done() {
                continue;
            }
            // LATE-style trigger: an original attempt is a straggler when
            // it has already run longer than the job's completed tasks
            // typically take (by the configured gap) yet is still short of
            // done. Comparing against *completed* durations (not the
            // running mean) keeps the trigger alive in the last wave,
            // where only stragglers remain running.
            if job.map_durations.len() < 5 {
                continue; // not enough history to call anyone slow
            }
            let mean_dur: f64 =
                job.map_durations.iter().sum::<f64>() / job.map_durations.len() as f64;
            let overdue = mean_dur * (1.0 + self.cfg.speculation_gap);
            let mut stragglers: Vec<(MapAttemptId, f64)> = self
                .running_maps
                .iter()
                .filter(|(a, t)| {
                    a.task.job.0 == j
                        && a.attempt == 0
                        && now.since(t.started_at) >= min_rt
                        && now.since(t.started_at).as_secs_f64() > overdue
                        && t.progress() < 0.95
                        && !self
                            .running_maps
                            .contains_key(&MapAttemptId::backup(a.task))
                        && !self.jobs[j].completed_blocks[a.task.index]
                })
                .map(|(a, t)| (*a, t.progress()))
                .collect();
            stragglers.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite progress"));
            for (aid, _) in stragglers {
                let origin = self.running_maps[&aid].node;
                // pick the tracker with the most free map slots, avoiding
                // the straggler's own (possibly overloaded) node
                let Some(i) = (0..self.trackers.len())
                    .filter(|&i| {
                        self.node_up[i]
                            && !self.trackers[i].blacklisted
                            && self.trackers[i].map_slots.free() > 0
                            && NodeId(i) != origin
                    })
                    .max_by_key(|&i| self.trackers[i].map_slots.free())
                else {
                    break; // no free slots anywhere else
                };
                let node = self.trackers[i].node;
                let (block_mb, remote_src) = {
                    let block = &self.jobs[j].layout.blocks[aid.task.index];
                    let src = if block.is_local_to(node) {
                        None
                    } else {
                        match block.replicas.first() {
                            Some(&s) => Some(s),
                            // every replica died with its node; the original
                            // attempt already has the data streamed/local
                            None => continue,
                        }
                    };
                    (block.size_mb, src)
                };
                let jitter = self.draw_map_jitter();
                let backup = MapTask::new(
                    aid.task,
                    node,
                    &self.profiles[j],
                    block_mb,
                    remote_src,
                    jitter,
                    now,
                );
                self.trackers[i].map_slots.launch();
                self.jobs[j].running_maps += 1;
                self.speculative_attempts += 1;
                let c = &mut self.job_counters[j];
                c.inc(Counter::SpeculativeMaps);
                c.inc(Counter::TotalLaunchedMaps);
                if remote_src.is_some() {
                    c.inc(Counter::RemoteMaps);
                } else {
                    c.inc(Counter::DataLocalMaps);
                }
                self.events.push(Event::MapLaunched {
                    at: now,
                    id: aid.task,
                    node,
                    remote_read: remote_src.is_some(),
                });
                let bid = MapAttemptId::backup(aid.task);
                self.maybe_inject_failure(bid);
                self.running_maps.insert(bid, backup);
            }
        }
    }

    fn advance_reduces(&mut self, dt: f64, scales: &[(TaskRef, f64)], fetch_posts: &[FetchPost]) {
        let mut done = Vec::new();
        let Sim {
            running_reduces,
            jobs,
            profiles,
            trackers,
            cfg,
            now,
            events,
            network_mb,
            job_counters,
            ..
        } = self;
        let mut fetch_cursor = 0usize;
        for (rid, r) in running_reduces.iter_mut() {
            let profile = &profiles[rid.job.0];
            let job = &jobs[rid.job.0];
            match r.phase {
                ReducePhase::Shuffle => {
                    let scale = scale_of(scales, TaskRef::Reduce(*rid));
                    let boost = if job.shuffle.maps_all_done() {
                        profile.shuffle_barrier_boost
                    } else {
                        1.0
                    };
                    // local copy first (no fabric), bounded by merge budget
                    let budget = profile.shuffle_merge_rate * scale * boost * dt;
                    let mut used = 0.0;
                    let local_rem = job.shuffle.remaining_from(r, r.node);
                    if local_rem > 0.0 {
                        let mb = local_rem.min(cfg.local_copy_rate * dt).min(budget);
                        if mb > 0.0 {
                            r.record_fetch(r.node, mb);
                            trackers[r.node.0].meters.shuffle.record(mb);
                            let c = &mut job_counters[rid.job.0];
                            c.add(Counter::ShuffleFetchedMb, mb);
                            c.add(Counter::SpilledRecords, mb);
                            used += mb;
                        }
                    }
                    // granted fabric fetches: this reduce's posts form a
                    // contiguous, ascending-`src` run (the posts are sorted
                    // by (reduce, src) and reduces iterate ascending), so a
                    // forward cursor replaces the old per-node hash probes
                    // while preserving the ascending-source apply order the
                    // budget arithmetic depends on
                    while fetch_cursor < fetch_posts.len()
                        && fetch_posts[fetch_cursor].reduce < *rid
                    {
                        fetch_cursor += 1;
                    }
                    let mut c_ix = fetch_cursor;
                    while c_ix < fetch_posts.len() && fetch_posts[c_ix].reduce == *rid {
                        let p = fetch_posts[c_ix];
                        c_ix += 1;
                        debug_assert!(p.src != r.node, "no fetch flow targets its own node");
                        if p.rate <= 0.0 {
                            continue;
                        }
                        let rem = job.shuffle.remaining_from(r, p.src);
                        let mb = (p.rate * dt).min(rem).min((budget - used).max(0.0));
                        if mb > 0.0 {
                            r.record_fetch(p.src, mb);
                            trackers[r.node.0].meters.shuffle.record(mb);
                            *network_mb += mb;
                            let c = &mut job_counters[rid.job.0];
                            c.add(Counter::ShuffleFetchedMb, mb);
                            c.add(Counter::ShuffleRemoteMb, mb);
                            c.add(Counter::SpilledRecords, mb);
                            used += mb;
                        }
                    }
                    fetch_cursor = c_ix;
                    if job.shuffle.shuffle_complete(r) {
                        let partition = job
                            .shuffle
                            .partition_mb()
                            .expect("barrier implies known partition");
                        r.finish_shuffle(partition, *now);
                        events.push(Event::ShuffleCompleted {
                            at: *now,
                            id: *rid,
                            partition_mb: partition,
                        });
                    }
                }
                ReducePhase::Sort | ReducePhase::Reduce => {
                    let scale = scale_of(scales, TaskRef::Reduce(*rid));
                    let work = r.phase_rate(profile) * scale * dt;
                    if r.advance_compute(work) {
                        done.push(*rid);
                    }
                }
                ReducePhase::Done => done.push(*rid),
            }
        }
        for rid in done {
            self.complete_reduce(rid);
        }
    }

    fn complete_reduce(&mut self, rid: ReduceTaskId) {
        let task = self
            .running_reduces
            .remove(&rid)
            .expect("completing unknown reduce");
        let job = &mut self.jobs[rid.job.0];
        self.trackers[task.node.0].reduce_slots.release();
        job.running_reduces -= 1;
        job.completed_reduces += 1;
        job.reduce_durations
            .push(self.now.since(task.started_at).as_secs_f64());
        self.events.push(Event::ReduceCompleted {
            at: self.now,
            id: rid,
            node: task.node,
        });
        if job.completed_reduces == job.total_reduces() && job.all_maps_done() {
            job.finished_at.get_or_insert(self.now);
            self.events.push(Event::JobFinished {
                at: self.now,
                job: rid.job,
            });
        }
    }

    // ------------------------------------------------------------------
    // Faults: crash/rejoin transitions, death detection, recovery
    // ------------------------------------------------------------------

    /// Apply every fault-plan transition with an instant in
    /// `(faults_done_until, now]`. In adaptive mode the horizon lands each
    /// step exactly on the next transition; in fixed mode an off-grid
    /// instant is picked up by the first later tick. Crashes sort before
    /// rejoins at the same instant so a zero-gap schedule still cycles.
    fn process_fault_transitions(&mut self) -> Result<(), SimError> {
        if self.cfg.fault_plan.is_empty() {
            return Ok(());
        }
        let mut transitions: Vec<(SimTime, bool, NodeId)> = Vec::new();
        for f in self.cfg.fault_plan.faults() {
            if f.at > self.faults_done_until && f.at <= self.now {
                transitions.push((f.at, false, f.node));
            }
            if let Some(r) = f.rejoin_at() {
                if r > self.faults_done_until && r <= self.now {
                    transitions.push((r, true, f.node));
                }
            }
        }
        self.faults_done_until = self.now;
        transitions.sort_by_key(|&(t, rejoin, n)| (t, rejoin, n.0));
        for (_, rejoin, node) in transitions {
            if rejoin {
                self.rejoin_node(node)?;
            } else {
                self.crash_node(node);
            }
        }
        Ok(())
    }

    /// The physical half of a crash, applied at the crash instant: the
    /// node stops offering CPU and bandwidth (its tasks freeze in place),
    /// remote readers streaming input *from* it lose their source
    /// immediately, and its DFS replicas are gone. The *scheduler's*
    /// reaction waits for heartbeat-timeout detection or re-registration.
    fn crash_node(&mut self, d: NodeId) {
        if !self.node_up[d.0] {
            return; // overlapping faults: already down
        }
        self.node_up[d.0] = false;
        self.node_crashes += 1;
        self.node_crash_counter.inc();
        let tr = &mut self.trackers[d.0];
        tr.down_since = Some(self.now);
        tr.lost_handled = false;
        self.events.push(Event::NodeCrashed {
            at: self.now,
            node: d,
        });
        let readers: Vec<MapAttemptId> = self
            .running_maps
            .iter()
            .filter(|(_, t)| t.node != d && t.remote_src == Some(d) && t.input_remaining > 1e-9)
            .map(|(a, _)| *a)
            .collect();
        for aid in readers {
            let task = self.remove_map_attempt(aid);
            self.crash_task_kills += 1;
            self.job_counters[aid.task.job.0].inc(Counter::KilledAttempts);
            self.events.push(Event::MapKilled {
                at: self.now,
                id: aid.task,
                node: task.node,
            });
        }
        self.lose_replicas(d);
    }

    /// Drop the dead node from every unfinished job's replica lists and
    /// queue under-replicated blocks for re-replication (survivors first).
    /// The per-node postings say exactly which blocks held a replica on
    /// `d`, so the scan is O(blocks on d), not O(all blocks × replicas).
    fn lose_replicas(&mut self, d: NodeId) {
        let live = self.node_up.iter().filter(|&&u| u).count();
        for (ji, job) in self.jobs.iter_mut().enumerate() {
            let mut posted = std::mem::take(&mut self.replica_postings[ji][d.0]);
            if job.is_finished() {
                continue; // stale postings of a finished job are never read
            }
            // re-replication appends out of block order; restore the
            // ascending-block queueing order of the old full scan
            posted.sort_unstable();
            for &bi in &posted {
                let bi = bi as usize;
                let block = &mut job.layout.blocks[bi];
                let before = block.replicas.len();
                block.replicas.retain(|&n| n != d);
                debug_assert!(block.replicas.len() < before, "posting without replica");
                let desired = self.replication.min(live);
                if self.cfg.rereplication_rate > 0.0
                    && !block.replicas.is_empty()
                    && block.replicas.len() < desired
                    && !self.rerep_queue.contains(&(ji, bi))
                {
                    self.rerep_queue.push_back((ji, bi));
                }
            }
        }
    }

    /// A transiently-failed node comes back: it re-registers as a fresh
    /// tracker — empty slots at the initial targets, no map output, no
    /// replicas, clean failure record. If it returns before the expiry
    /// interval fired, re-registration itself reveals the loss.
    fn rejoin_node(&mut self, d: NodeId) -> Result<(), SimError> {
        if !self.cfg.fault_plan.is_up(d, self.now) {
            return Ok(()); // another overlapping fault still holds it down
        }
        if !self.trackers[d.0].lost_handled {
            self.handle_node_loss(d)?;
        }
        let tr = &mut self.trackers[d.0];
        tr.down_since = None;
        tr.stall_ms = 0;
        tr.attempt_failures = 0;
        tr.blacklisted = false;
        tr.map_slots = SlotSet::new(self.cfg.init_map_slots);
        tr.reduce_slots = SlotSet::new(self.cfg.init_reduce_slots);
        tr.meters = TrackerMeters::new(self.now);
        self.node_up[d.0] = true;
        self.events.push(Event::NodeRejoined {
            at: self.now,
            node: d,
        });
        Ok(())
    }

    /// Heartbeat-timeout death detection: a tracker silent for
    /// [`EngineConfig::heartbeat_timeout`] is declared lost. Runs on
    /// heartbeat boundaries only, so fixed and adaptive stepping detect on
    /// identical instants.
    fn check_expired_trackers(&mut self) -> Result<(), SimError> {
        if self.cfg.fault_plan.is_empty() {
            return Ok(());
        }
        for i in 0..self.trackers.len() {
            let Some(since) = self.trackers[i].down_since else {
                continue;
            };
            if self.trackers[i].lost_handled {
                continue;
            }
            if self.now.since(since) >= self.cfg.heartbeat_timeout {
                self.handle_node_loss(NodeId(i))?;
            }
        }
        Ok(())
    }

    /// The scheduler's reaction to a confirmed tracker loss: kill and
    /// requeue its in-flight attempts, drain its map output from every
    /// shuffle, and re-execute completed maps whose output reducers still
    /// need — reopening the map barrier if it had been crossed. With
    /// recovery disabled, stranded work surfaces [`SimError::NodeLost`]
    /// instead (before any state is mutated).
    fn handle_node_loss(&mut self, d: NodeId) -> Result<(), SimError> {
        self.trackers[d.0].lost_handled = true;
        let map_victims: Vec<MapAttemptId> = self
            .running_maps
            .iter()
            .filter(|(_, t)| t.node == d)
            .map(|(a, _)| *a)
            .collect();
        let reduce_victims: Vec<ReduceTaskId> = self
            .running_reduces
            .iter()
            .filter(|(_, t)| t.node == d)
            .map(|(r, _)| *r)
            .collect();
        if !self.cfg.fault_recovery {
            let needed: usize = (0..self.jobs.len())
                .filter(|&ji| !self.jobs[ji].is_finished() && self.job_needs_map_output(ji))
                .map(|ji| {
                    let job = &self.jobs[ji];
                    job.block_output_node
                        .iter()
                        .filter(|&&n| n == Some(d))
                        .count()
                })
                .sum();
            let lost_inputs = self.jobs.iter().any(|j| {
                !j.is_finished()
                    && j.pending_map_blocks
                        .iter()
                        .any(|&b| j.layout.blocks[b].replicas.is_empty())
            });
            if !map_victims.is_empty() || !reduce_victims.is_empty() || needed > 0 || lost_inputs {
                return Err(SimError::NodeLost {
                    node: d,
                    at: self.trackers[d.0].down_since.unwrap_or(self.now),
                    pending_work: format!(
                        "{} running maps, {} running reduces, {} completed map outputs \
                         (fault recovery disabled)",
                        map_victims.len(),
                        reduce_victims.len(),
                        needed
                    ),
                });
            }
        }
        for aid in map_victims {
            self.remove_map_attempt(aid);
            self.crash_task_kills += 1;
            self.job_counters[aid.task.job.0].inc(Counter::KilledAttempts);
            self.events.push(Event::MapKilled {
                at: self.now,
                id: aid.task,
                node: d,
            });
        }
        for rid in reduce_victims {
            self.running_reduces.remove(&rid);
            self.trackers[d.0].reduce_slots.release();
            let job = &mut self.jobs[rid.job.0];
            job.running_reduces -= 1;
            job.pending_reduce_parts.push(rid.partition);
            job.pending_reduce_parts.sort_unstable();
            self.crash_task_kills += 1;
            let c = &mut self.job_counters[rid.job.0];
            c.inc(Counter::KilledAttempts);
            c.inc(Counter::KilledReduces);
            self.events.push(Event::ReduceKilled {
                at: self.now,
                id: rid,
                node: d,
            });
        }
        // lost map output: drain the dead node's availability from every
        // shuffle; maps whose output reducers still need are re-executed
        for ji in 0..self.jobs.len() {
            if self.jobs[ji].is_finished() {
                continue;
            }
            let needs = self.job_needs_map_output(ji);
            let job = &mut self.jobs[ji];
            let lost_mb = job.shuffle.on_node_lost(d);
            self.job_counters[ji].add(Counter::LostMapOutputMb, lost_mb);
            let lost: Vec<usize> = (0..job.block_output_node.len())
                .filter(|&b| job.block_output_node[b] == Some(d))
                .collect();
            for &b in &lost {
                job.block_output_node[b] = None;
            }
            if !needs || lost.is_empty() {
                continue;
            }
            let reopen = job.shuffle.maps_all_done();
            for &b in &lost {
                debug_assert!(job.completed_blocks[b]);
                job.completed_blocks[b] = false;
                job.completed_maps -= 1;
                job.pending_map_blocks.push(b);
                self.lost_map_outputs += 1;
                self.lost_output_counter.inc();
                self.job_counters[ji].inc(Counter::ReexecutedMaps);
                self.events.push(Event::MapOutputLost {
                    at: self.now,
                    id: MapTaskId {
                        job: job.spec.id,
                        index: b,
                    },
                    node: d,
                });
            }
            job.pending_map_blocks.sort_unstable();
            if reopen {
                // the barrier reopens; complete_map re-stamps it when the
                // re-executed maps land
                job.shuffle.clear_maps_all_done();
                job.maps_done_at = None;
            }
        }
        // unrecoverable data loss: a pending block with no replica left
        // anywhere can never be scheduled again
        for job in &self.jobs {
            if job.is_finished() {
                continue;
            }
            if let Some(&b) = job
                .pending_map_blocks
                .iter()
                .find(|&&b| job.layout.blocks[b].replicas.is_empty())
            {
                return Err(SimError::NodeLost {
                    node: d,
                    at: self.now,
                    pending_work: format!(
                        "input block {} of job '{}' lost its last replica",
                        b, job.spec.profile.name
                    ),
                });
            }
        }
        Ok(())
    }

    /// Does any reduce of job `ji` still need to fetch map output —
    /// pending (will start a fresh shuffle), or running and still in its
    /// shuffle phase?
    fn job_needs_map_output(&self, ji: usize) -> bool {
        !self.jobs[ji].pending_reduce_parts.is_empty()
            || self
                .running_reduces
                .iter()
                .any(|(r, t)| r.job.0 == ji && t.phase == ReducePhase::Shuffle)
    }

    /// Spend this step's re-replication budget restoring lost replicas
    /// onto surviving nodes, front of the queue first. The budget grows
    /// linearly in `dt`, so fixed and adaptive stepping accumulate
    /// identical amounts between heartbeat boundaries (where replica
    /// state is next read).
    fn advance_rereplication(&mut self, dt: f64) {
        if self.cfg.rereplication_rate <= 0.0 || self.rerep_queue.is_empty() {
            return;
        }
        self.rerep_progress += self.cfg.rereplication_rate * dt;
        while let Some(&(ji, bi)) = self.rerep_queue.front() {
            let live = self.node_up.iter().filter(|&&u| u).count();
            let desired = self.replication.min(live);
            let (finished, nreps, size) = {
                let job = &self.jobs[ji];
                let b = &job.layout.blocks[bi];
                (job.is_finished(), b.replicas.len(), b.size_mb)
            };
            // stale entries cost no budget: job done, source lost, or
            // already back at the desired replica count
            if finished || nreps == 0 || nreps >= desired {
                self.rerep_queue.pop_front();
                continue;
            }
            if self.rerep_progress < size {
                return;
            }
            let target = {
                let reps = &self.jobs[ji].layout.blocks[bi].replicas;
                (0..self.node_up.len())
                    .map(NodeId)
                    .find(|n| self.node_up[n.0] && !reps.contains(n))
            };
            let Some(target) = target else {
                self.rerep_queue.pop_front();
                continue;
            };
            self.rerep_progress -= size;
            self.network_mb += size;
            self.jobs[ji].layout.blocks[bi].replicas.push(target);
            self.replica_postings[ji][target.0].push(bi as u32);
            self.rerep_queue.pop_front();
            if nreps + 1 < desired {
                self.rerep_queue.push_back((ji, bi));
            }
        }
        if self.rerep_queue.is_empty() {
            self.rerep_progress = 0.0;
        }
    }

    // ------------------------------------------------------------------
    // Sampling and reporting
    // ------------------------------------------------------------------

    fn sample(&mut self) {
        let map_slots: usize = self
            .trackers
            .iter()
            .filter(|t| self.node_up[t.node.0])
            .map(|t| t.map_slots.target())
            .sum();
        let reduce_slots: usize = self
            .trackers
            .iter()
            .filter(|t| self.node_up[t.node.0])
            .map(|t| t.reduce_slots.target())
            .sum();
        self.map_slot_series.push(self.now, map_slots as f64);
        self.reduce_slot_series.push(self.now, reduce_slots as f64);
        self.usage.sample(self.now);

        // per-job progress: map% + reduce% in [0, 200]
        let mut map_progress = vec![0.0_f64; self.jobs.len()];
        let mut reduce_progress = vec![0.0_f64; self.jobs.len()];
        // with speculation two attempts of one task may run; count the
        // task's best attempt, not the sum. (BTreeMap: iteration order must
        // be deterministic or float summation order would vary per run.)
        let mut best: BTreeMap<MapTaskId, f64> = BTreeMap::new();
        for (id, t) in &self.running_maps {
            let e = best.entry(id.task).or_insert(0.0);
            *e = e.max(t.progress());
        }
        for (id, p) in best {
            map_progress[id.job.0] += p;
        }
        for (id, t) in &self.running_reduces {
            reduce_progress[id.job.0] += t.progress();
        }
        let now = self.now;
        for (i, job) in self.jobs.iter_mut().enumerate() {
            if !job.is_submitted(now) {
                continue;
            }
            if job.is_finished() && job.progress.last().is_some_and(|(_, v)| v >= 200.0 - 1e-6) {
                // final 200% sample already recorded
                continue;
            }
            let mp = (job.completed_maps as f64 + map_progress[i]) / job.total_maps() as f64;
            let rp =
                (job.completed_reduces as f64 + reduce_progress[i]) / job.total_reduces() as f64;
            job.progress.push(now, (mp + rp) * 100.0);
        }
    }

    fn build_report(&self) -> RunReport {
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| JobReport {
                job: j.spec.id,
                name: j.spec.profile.name.clone(),
                submit_at: j.spec.submit_at,
                started_at: j.first_launch.expect("finished job must have started"),
                maps_done_at: j.maps_done_at.expect("finished job crossed the barrier"),
                finished_at: j.finished_at.expect("job finished"),
                input_mb: j.spec.input_mb,
                shuffle_mb: j.shuffle.total_output_mb(),
                num_maps: j.total_maps(),
                num_reduces: j.total_reduces(),
                progress: j.progress.clone(),
                map_task_durations: simgrid::metrics::Summary::of(&j.map_durations),
                reduce_task_durations: simgrid::metrics::Summary::of(&j.reduce_durations),
                local_map_fraction: {
                    let c = &self.job_counters[i];
                    let total = c.get(Counter::TotalLaunchedMaps);
                    if total <= 0.0 {
                        1.0
                    } else {
                        c.get(Counter::DataLocalMaps) / total
                    }
                },
                counters: self.job_counters[i].clone(),
            })
            .collect();
        RunReport {
            policy: self.policy.name().to_string(),
            jobs,
            map_slot_series: self.map_slot_series.series().clone(),
            reduce_slot_series: self.reduce_slot_series.series().clone(),
            slot_changes: self.slot_changes,
            events: self.events.clone(),
            speculative_attempts: self.speculative_attempts,
            speculative_wins: self.speculative_wins,
            map_failures: self.map_failures,
            cpu_utilisation: if self.cpu_offered_core_s > 0.0 {
                self.cpu_granted_core_s / self.cpu_offered_core_s
            } else {
                0.0
            },
            network_mb: self.network_mb,
            steps: self.steps,
            node_crashes: self.node_crashes,
            crash_task_kills: self.crash_task_kills,
            lost_map_outputs: self.lost_map_outputs,
            trackers_blacklisted: self.trackers_blacklisted,
            map_input_processed_mb: self.map_input_processed_mb,
            counters: {
                let mut all = CounterLedger::new();
                for c in &self.job_counters {
                    all.merge(c);
                }
                all
            },
            node_utilization: self.usage.clone().into_report(),
            decisions: self.policy.decision_records(),
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing: capture / restore the complete run state
    // ------------------------------------------------------------------

    /// Capture everything a resumed run needs. `initial_sample_done` is
    /// true for captures taken inside the step loop (the adaptive
    /// pre-loop sample at t=0 has been recorded) and false for warm
    /// capsules taken before the run started.
    fn capture_state(&self, initial_sample_done: bool) -> EngineState {
        let mut failure_points: Vec<(MapAttemptId, f64)> =
            self.failure_points.iter().map(|(k, v)| (*k, *v)).collect();
        failure_points.sort_by_key(|&(k, _)| k);
        EngineState {
            config: self.cfg.clone(),
            now: self.now,
            policy_name: self.policy.name().to_string(),
            policy_state: self.policy.snapshot_state(),
            initial_sample_done,
            jobs: self.jobs.clone(),
            trackers: self.trackers.clone(),
            running_maps: self
                .running_maps
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            running_reduces: self
                .running_reduces
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            sched: self.sched,
            rng: self.rng.clone(),
            map_slot_series: self.map_slot_series.series().clone(),
            reduce_slot_series: self.reduce_slot_series.series().clone(),
            slot_changes: self.slot_changes,
            heartbeat_round: self.heartbeat_round,
            events: self.events.clone(),
            steps: self.steps,
            speculative_attempts: self.speculative_attempts,
            speculative_wins: self.speculative_wins,
            failure_points,
            map_failures: self.map_failures,
            cpu_granted_core_s: self.cpu_granted_core_s,
            cpu_offered_core_s: self.cpu_offered_core_s,
            network_mb: self.network_mb,
            node_up: self.node_up.clone(),
            faults_done_until: self.faults_done_until,
            replication: self.replication,
            rerep_queue: self.rerep_queue.clone(),
            rerep_progress: self.rerep_progress,
            node_crashes: self.node_crashes,
            crash_task_kills: self.crash_task_kills,
            lost_map_outputs: self.lost_map_outputs,
            trackers_blacklisted: self.trackers_blacklisted,
            map_input_processed_mb: self.map_input_processed_mb,
            job_counters: self.job_counters.clone(),
            usage: self.usage.clone(),
            state_hash: self.state_hash,
        }
    }

    /// Rebuild a live run from a captured state. The policy must match
    /// the captured `policy_name`; its run state is restored before the
    /// loop re-enters. Live handles (telemetry, event sinks) are attached
    /// fresh, per-step scratch is re-zeroed, and everything derivable
    /// from the config or the jobs (profiles, fabric) is reconstructed.
    fn from_state(
        state: EngineState,
        policy: &'p mut dyn SlotPolicy,
        telem: Telemetry,
    ) -> Result<Sim<'p>, SimError> {
        let scratch = Scratch::fresh(state.config.cluster.workers);
        Sim::from_state_in(state, policy, telem, scratch)
    }

    /// [`Sim::from_state`] with caller-supplied scratch — the arena-backed
    /// resume path.
    fn from_state_in(
        state: EngineState,
        policy: &'p mut dyn SlotPolicy,
        telem: Telemetry,
        scratch: Scratch,
    ) -> Result<Sim<'p>, SimError> {
        let cfg = state.config.clone();
        cfg.validate()?;
        if policy.name() != state.policy_name {
            return Err(SimError::InvalidConfig(format!(
                "capsule was captured under policy {} but resume got {}",
                state.policy_name,
                policy.name()
            )));
        }
        let workers = cfg.cluster.workers;
        if state.trackers.len() != workers || state.node_up.len() != workers {
            return Err(SimError::InvalidConfig(format!(
                "capsule cluster size mismatch: {} trackers / {} node states for {workers} workers",
                state.trackers.len(),
                state.node_up.len()
            )));
        }
        policy
            .restore_state(&state.policy_state)
            .map_err(|e| SimError::InvalidConfig(format!("capsule policy state: {e}")))?;
        let profiles = state.jobs.iter().map(|j| j.spec.profile.clone()).collect();
        // derived, deliberately absent from the capsule: rebuild the dense
        // replica postings from the restored layouts
        let replica_postings = build_replica_postings(&state.jobs, workers);
        let mut events = state.events;
        events.set_sink(telem.clone());
        Ok(Sim {
            sched: state.sched,
            fabric: Fabric::new(cfg.fabric),
            rng: state.rng,
            cfg,
            policy,
            jobs: state.jobs,
            profiles,
            trackers: state.trackers,
            running_maps: state.running_maps.into_iter().collect(),
            running_reduces: state.running_reduces.into_iter().collect(),
            now: state.now,
            map_slot_series: RecordedSeries::from_series(
                "map_slot_target",
                state.map_slot_series,
                telem.clone(),
            ),
            reduce_slot_series: RecordedSeries::from_series(
                "reduce_slot_target",
                state.reduce_slot_series,
                telem.clone(),
            ),
            slot_changes: state.slot_changes,
            heartbeat_round: state.heartbeat_round,
            events,
            steps: state.steps,
            step_counter: telem.counter("engine.steps"),
            heartbeat_counter: telem.counter("engine.heartbeat_rounds"),
            step_duration_us: telem.histogram("engine.step_duration_us"),
            node_crash_counter: telem.counter("engine.node_crashes"),
            lost_output_counter: telem.counter("engine.lost_map_outputs"),
            telem,
            speculative_attempts: state.speculative_attempts,
            speculative_wins: state.speculative_wins,
            failure_points: state.failure_points.into_iter().collect(),
            map_failures: state.map_failures,
            cpu_granted_core_s: state.cpu_granted_core_s,
            cpu_offered_core_s: state.cpu_offered_core_s,
            network_mb: state.network_mb,
            node_up: state.node_up,
            faults_done_until: state.faults_done_until,
            replication: state.replication,
            rerep_queue: state.rerep_queue,
            rerep_progress: state.rerep_progress,
            node_crashes: state.node_crashes,
            crash_task_kills: state.crash_task_kills,
            lost_map_outputs: state.lost_map_outputs,
            trackers_blacklisted: state.trackers_blacklisted,
            map_input_processed_mb: state.map_input_processed_mb,
            job_counters: state.job_counters,
            usage: state.usage,
            node_cpu: scratch.node_cpu,
            node_disk: scratch.node_disk,
            nic_in: scratch.nic_in,
            nic_out: scratch.nic_out,
            occ_map: scratch.occ_map,
            occ_reduce: scratch.occ_reduce,
            task_scratch: scratch.node_tasks,
            demand_scratch: scratch.demands,
            flow_scratch: scratch.flows,
            purpose_scratch: scratch.purposes,
            fabric_scratch: scratch.fabric,
            rate_scratch: scratch.rates,
            scales_scratch: scratch.scales,
            map_post_scratch: scratch.map_posts,
            fetch_post_scratch: scratch.fetch_posts,
            source_scratch: scratch.sources,
            snapshot_scratch: scratch.snapshots,
            replica_postings,
            snap_every: None,
            snapshots: Vec::new(),
            resumed: state.initial_sample_done,
            state_hash: state.state_hash,
            trace_hashes: false,
            hash_trace: Vec::new(),
        })
    }
}

/// The complete mutable state of one run at one simulated instant — the
/// payload of a checkpoint capsule.
///
/// Captured at the top of the step loop (before that instant's fault
/// transitions and heartbeat), at instants that are multiples of the
/// sample period, so both stepping modes stop there and a restored run
/// replays the remainder bit-identically. Deliberately excluded, because
/// they are live handles, derivable, or strictly observational: telemetry
/// sinks and counters, the fabric (a pure function of the config), per-job
/// profile copies (present inside each job's spec), and the allocate-phase
/// scratch arrays (rewritten from scratch every step).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineState {
    config: EngineConfig,
    now: SimTime,
    policy_name: String,
    /// Opaque policy run state ([`SlotPolicy::snapshot_state`]); `Null`
    /// for stateless policies and for capsules taken before the first
    /// decision.
    policy_state: serde::Value,
    initial_sample_done: bool,
    jobs: Vec<JobInProgress>,
    trackers: Vec<Tracker>,
    /// Struct-keyed maps travel as sorted pairs (the JSON object form
    /// only admits string-ish keys).
    running_maps: Vec<(MapAttemptId, MapTask)>,
    running_reduces: Vec<(ReduceTaskId, ReduceTask)>,
    sched: FifoScheduler,
    rng: SimRng,
    map_slot_series: simgrid::metrics::TimeSeries,
    reduce_slot_series: simgrid::metrics::TimeSeries,
    slot_changes: u64,
    heartbeat_round: u64,
    events: EventLog,
    steps: u64,
    speculative_attempts: u64,
    speculative_wins: u64,
    failure_points: Vec<(MapAttemptId, f64)>,
    map_failures: u64,
    cpu_granted_core_s: f64,
    cpu_offered_core_s: f64,
    network_mb: f64,
    node_up: Vec<bool>,
    faults_done_until: SimTime,
    replication: usize,
    rerep_queue: VecDeque<(usize, usize)>,
    rerep_progress: f64,
    node_crashes: u64,
    crash_task_kills: u64,
    lost_map_outputs: u64,
    trackers_blacklisted: u64,
    map_input_processed_mb: f64,
    job_counters: Vec<CounterLedger>,
    usage: NodeUsageSampler,
    /// Rolling per-step digest as of the capture instant (see
    /// [`fold_hash`]). `#[serde(default)]`: format-v1 capsules predate the
    /// digest and restore it as 0 — their resumed hash traces then simply
    /// start from a different basis, still internally consistent.
    #[serde(default)]
    state_hash: u64,
}

impl EngineState {
    /// The simulated instant the capture was taken at.
    pub fn at(&self) -> SimTime {
        self.now
    }

    /// Name of the policy that was driving the captured run.
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// The rolling per-step state digest as of the capture instant.
    pub fn state_hash(&self) -> u64 {
        self.state_hash
    }

    /// The configuration the captured run was started with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Swap the configuration for a warm-started resume. Only knobs that
    /// do not invalidate already-materialised state may change: the
    /// cluster shape, seed and block size (they determine the DFS layout
    /// and RNG streams baked into the capsule) must be identical.
    pub fn override_config(&mut self, cfg: EngineConfig) -> Result<(), SimError> {
        cfg.validate()?;
        if cfg.cluster.to_value() != self.config.cluster.to_value() {
            return Err(SimError::InvalidConfig(
                "warm-start config must keep the captured cluster shape".into(),
            ));
        }
        if cfg.seed != self.config.seed || cfg.block_mb != self.config.block_mb {
            return Err(SimError::InvalidConfig(
                "warm-start config must keep the captured seed and block size".into(),
            ));
        }
        self.config = cfg;
        Ok(())
    }

    /// Re-bind the capsule to a different policy for a warm-started
    /// resume. Only sound for capsules captured before the first
    /// heartbeat (the policy had no state yet); the bound state is reset
    /// to fresh.
    pub fn override_policy(&mut self, name: &str) -> Result<(), SimError> {
        if self.now != SimTime::ZERO || self.heartbeat_round != 0 {
            return Err(SimError::InvalidConfig(format!(
                "cannot re-bind policy at t={} ms: the captured policy already ran",
                self.now.as_millis()
            )));
        }
        self.policy_name = name.to_string();
        self.policy_state = serde::Value::Null;
        Ok(())
    }

    /// The capsule's canonical JSON encoding — the exact byte string
    /// [`EngineState::fingerprint`] hashes. The prefix cache keeps it
    /// alongside each resident capsule and compares it in full on every
    /// fingerprint hit, so a 64-bit collision can never silently alias
    /// two distinct prefixes.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("capsule serialises")
    }

    /// FNV-1a over a [`EngineState::canonical_json`] encoding.
    pub fn fingerprint_of(canonical: &str) -> u64 {
        Self::fingerprint_of_bytes(canonical.as_bytes())
    }

    /// FNV-1a over any serialized capsule encoding — the prefix cache
    /// interns by the packed binary encoding, which is several times
    /// shorter than canonical JSON and so several times cheaper to hash
    /// and to confirm on a fingerprint hit.
    pub fn fingerprint_of_bytes(encoding: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for byte in encoding {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// FNV-1a hash of the capsule's canonical JSON encoding — a cheap
    /// content identity for deduplicating shared warm-start prefixes:
    /// sweep cells whose capsules fingerprint alike resume from one
    /// in-memory capsule instead of re-preparing per cell.
    pub fn fingerprint(&self) -> u64 {
        Self::fingerprint_of(&self.canonical_json())
    }

    /// Submit a new job into the captured run at its capture instant.
    ///
    /// The DFS placement is decided by **deterministic NameNode replay**:
    /// the NameNode's RNG position is a pure function of the files created
    /// so far, so re-creating every existing job's file in submission
    /// order leaves the placement stream exactly where the live run left
    /// it — the injected job's blocks land where they would have landed
    /// had it been in the original submission list. Replicas placed on
    /// currently-down nodes are pruned at injection (mirroring the crash
    /// path); a block left with no live replica rejects the submission.
    ///
    /// The submission is folded into the rolling state digest so two runs
    /// that differ only in an injected command diverge immediately.
    pub fn inject_job(
        &mut self,
        profile: JobProfile,
        input_mb: f64,
        num_reduces: usize,
    ) -> Result<JobId, SimError> {
        if input_mb.is_nan() || input_mb <= 0.0 {
            return Err(SimError::InvalidConfig(
                "injected job input must be positive".into(),
            ));
        }
        if num_reduces == 0 {
            return Err(SimError::InvalidConfig(
                "injected job needs at least one reduce".into(),
            ));
        }
        let workers = self.config.cluster.workers;
        let root = SimRng::new(self.config.seed);
        let placement = dfs::PlacementPolicy::default();
        let mut namenode = NameNode::new(
            self.config.cluster.clone(),
            placement,
            self.config.block_mb,
            root.derive("dfs"),
        );
        for j in &self.jobs {
            namenode.create_file(j.spec.input_mb);
        }
        let mut layout = namenode.create_file(input_mb);
        let live = self.node_up.iter().filter(|&&u| u).count();
        let desired = self.replication.min(live);
        let ji = self.jobs.len();
        // validate every block before mutating any shared state, so a
        // rejected submission leaves the capsule exactly as it was
        for (bi, block) in layout.blocks.iter_mut().enumerate() {
            block.replicas.retain(|&n| self.node_up[n.0]);
            if block.replicas.is_empty() {
                return Err(SimError::InvalidConfig(format!(
                    "injected job rejected: block {bi} has no replica on a live node"
                )));
            }
        }
        for (bi, block) in layout.blocks.iter().enumerate() {
            if self.config.rereplication_rate > 0.0
                && block.replicas.len() < desired
                && !self.rerep_queue.contains(&(ji, bi))
            {
                self.rerep_queue.push_back((ji, bi));
            }
        }
        let spec = JobSpec::new(ji, profile, input_mb, num_reduces, self.now);
        self.jobs.push(JobInProgress::new(spec, layout, workers));
        self.job_counters.push(CounterLedger::new());
        self.state_hash = fold_hash(
            fold_hash(fold_hash(self.state_hash, ji as u64), input_mb.to_bits()),
            num_reduces as u64,
        );
        Ok(JobId(ji))
    }

    /// Schedule a node fault into the captured run. The fault instant must
    /// lie strictly after the capture instant: transitions at or before
    /// `now` are already marked applied and would never fire. The extended
    /// plan is re-validated before it is committed.
    pub fn inject_fault(&mut self, fault: simgrid::fault::NodeFault) -> Result<(), SimError> {
        if fault.node.0 >= self.config.cluster.workers {
            return Err(SimError::InvalidConfig(format!(
                "fault node {} out of range for {} workers",
                fault.node.0, self.config.cluster.workers
            )));
        }
        if fault.at <= self.now {
            return Err(SimError::InvalidConfig(format!(
                "fault at {} ms must be strictly after the capture instant {} ms",
                fault.at.as_millis(),
                self.now.as_millis()
            )));
        }
        let mut cfg = self.config.clone();
        cfg.fault_plan.push(fault);
        cfg.validate()?;
        self.config = cfg;
        self.state_hash = fold_hash(
            fold_hash(self.state_hash, fault.at.as_millis() ^ (1 << 63)),
            fault.node.0 as u64,
        );
        Ok(())
    }

    /// Project the capsule into a serializable observation frame: sim
    /// clock, per-job progress, and per-node slot split / occupancy /
    /// liveness. Strictly read-only — observing never perturbs the run.
    pub fn observe(&self) -> EngineObservation {
        let jobs = self
            .jobs
            .iter()
            .map(|j| JobObservation {
                id: j.spec.id.0,
                name: j.spec.profile.name.clone(),
                submit_at_ms: j.spec.submit_at.as_millis(),
                finished: j.is_finished(),
                completed_maps: j.completed_maps,
                total_maps: j.total_maps(),
                completed_reduces: j.completed_reduces,
                total_reduces: j.total_reduces(),
                progress_pct: j.progress.last().map(|(_, v)| v).unwrap_or(0.0),
            })
            .collect();
        let nodes = self
            .trackers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let target = t.map_slots.target() + t.reduce_slots.target();
                let occupied = t.map_slots.occupied() + t.reduce_slots.occupied();
                NodeObservation {
                    up: self.node_up[i],
                    map_target: t.map_slots.target(),
                    map_occupied: t.map_slots.occupied(),
                    reduce_target: t.reduce_slots.target(),
                    reduce_occupied: t.reduce_slots.occupied(),
                    utilization: if target > 0 {
                        occupied as f64 / target as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        EngineObservation {
            at_ms: self.now.as_millis(),
            steps: self.steps,
            state_hash: self.state_hash,
            heartbeat_rounds: self.heartbeat_round,
            slot_changes: self.slot_changes,
            all_finished: self.jobs.iter().all(|j| j.is_finished()),
            jobs,
            nodes,
        }
    }
}

/// A read-only projection of one [`EngineState`] for live observers (the
/// realtime service's observation frames are built from these).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineObservation {
    /// Sim clock of the projected instant (ms).
    pub at_ms: u64,
    /// Integration steps executed so far.
    pub steps: u64,
    /// Rolling per-step state digest at this instant.
    pub state_hash: u64,
    /// Heartbeat rounds executed so far.
    pub heartbeat_rounds: u64,
    /// Cumulative slot-change commands applied by the policy.
    pub slot_changes: u64,
    /// Every job has finished (the run is idle).
    pub all_finished: bool,
    pub jobs: Vec<JobObservation>,
    pub nodes: Vec<NodeObservation>,
}

/// One job's progress inside an [`EngineObservation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobObservation {
    pub id: usize,
    pub name: String,
    pub submit_at_ms: u64,
    pub finished: bool,
    pub completed_maps: usize,
    pub total_maps: usize,
    pub completed_reduces: usize,
    pub total_reduces: usize,
    /// Last recorded progress sample: map% + reduce% in `[0, 200]`.
    pub progress_pct: f64,
}

/// One node's slot split and occupancy inside an [`EngineObservation`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeObservation {
    pub up: bool,
    pub map_target: usize,
    pub map_occupied: usize,
    pub reduce_target: usize,
    pub reduce_occupied: usize,
    /// Occupied fraction of the current slot targets, both kinds pooled.
    pub utilization: f64,
}

/// Outcome of one bounded [`Engine::advance_until_in`] advance.
#[derive(Debug)]
pub struct Advanced {
    /// The run re-captured at the stop instant (or at the finish instant
    /// with the clock frozen, once every job has completed).
    pub state: EngineState,
    /// Every job has finished; further advances are no-ops.
    pub finished: bool,
    /// Integration steps executed by this advance.
    pub steps_run: u64,
    /// The full run report, available once `finished` is true.
    pub report: Option<RunReport>,
}

impl Engine {
    /// Validate a checkpoint period: it must be non-zero and a multiple
    /// of the sample period so capture instants are step boundaries both
    /// stepping modes already land on (capture is then purely
    /// observational — step counts and draws are unchanged).
    fn validate_snapshot_period(&self, every: SimDuration) -> Result<(), SimError> {
        if every == SimDuration::ZERO {
            return Err(SimError::InvalidConfig(
                "checkpoint period must be non-zero".into(),
            ));
        }
        let sample = self.config.sample_period.as_millis();
        if sample == 0 || !every.as_millis().is_multiple_of(sample) {
            return Err(SimError::InvalidConfig(format!(
                "checkpoint period {} ms must be a multiple of the sample period {} ms",
                every.as_millis(),
                sample
            )));
        }
        Ok(())
    }

    /// Build a run and capture its state before the first step: the
    /// cluster is booted and the DFS layouts are materialised, but no
    /// time has passed and the policy has not run. Sweeps resume this one
    /// capsule under different fault plans and policies
    /// ([`EngineState::override_config`] / [`EngineState::override_policy`])
    /// instead of re-doing the common prefix per cell.
    pub fn prepare(&self, jobs: Vec<JobSpec>) -> Result<EngineState, SimError> {
        self.config.validate()?;
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig("no jobs submitted".into()));
        }
        let mut policy = crate::policy::StaticSlotPolicy;
        let sim = Sim::new(&self.config, jobs, &mut policy, Telemetry::disabled())?;
        let mut state = sim.capture_state(false);
        state.policy_name = String::new(); // not bound to a policy yet
        Ok(state)
    }

    /// [`Engine::run`], additionally capturing a state capsule at every
    /// multiple of `every` (which must be a multiple of the sample
    /// period).
    pub fn run_with_snapshots(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn SlotPolicy,
        every: SimDuration,
    ) -> Result<(RunReport, Vec<EngineState>), SimError> {
        self.config.validate()?;
        self.validate_snapshot_period(every)?;
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig("no jobs submitted".into()));
        }
        let telem = Telemetry::disabled();
        policy.attach_telemetry(&telem);
        let mut sim = Sim::new(&self.config, jobs, policy, telem)?;
        sim.snap_every = Some(every);
        let report = sim.run_to_completion()?;
        Ok((report, std::mem::take(&mut sim.snapshots)))
    }

    /// [`Engine::run_with_snapshots`], additionally recording the per-step
    /// hash trace ([`HashPoint`] per completed step). Tracing is strictly
    /// observational: the report and capsules are identical to the
    /// untraced run's.
    pub fn run_with_snapshots_traced(
        &self,
        jobs: Vec<JobSpec>,
        policy: &mut dyn SlotPolicy,
        every: SimDuration,
    ) -> Result<(RunReport, Vec<EngineState>, Vec<HashPoint>), SimError> {
        self.config.validate()?;
        self.validate_snapshot_period(every)?;
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig("no jobs submitted".into()));
        }
        let telem = Telemetry::disabled();
        policy.attach_telemetry(&telem);
        let mut sim = Sim::new(&self.config, jobs, policy, telem)?;
        sim.snap_every = Some(every);
        sim.trace_hashes = true;
        let report = sim.run_to_completion()?;
        Ok((
            report,
            std::mem::take(&mut sim.snapshots),
            std::mem::take(&mut sim.hash_trace),
        ))
    }

    /// Resume a captured run to completion. The configuration comes from
    /// the capsule; `policy` must be a fresh instance of the captured
    /// policy (matched by name) and is handed the captured state.
    pub fn resume(state: EngineState, policy: &mut dyn SlotPolicy) -> Result<RunReport, SimError> {
        Engine::resume_with(state, policy, &Telemetry::disabled())
    }

    /// [`Engine::resume`] with a telemetry sink attached to the restored
    /// run (telemetry is strictly observational either way).
    pub fn resume_with(
        state: EngineState,
        policy: &mut dyn SlotPolicy,
        telem: &Telemetry,
    ) -> Result<RunReport, SimError> {
        policy.attach_telemetry(telem);
        let mut sim = Sim::from_state(state, policy, telem.clone())?;
        sim.run_to_completion()
    }

    /// [`Engine::resume_with`] drawing scratch from (and returning it to)
    /// `arena` — the warm-start path of an arena-backed sweep cell.
    pub fn resume_in(
        state: EngineState,
        policy: &mut dyn SlotPolicy,
        telem: &Telemetry,
        arena: &mut EngineArena,
    ) -> Result<RunReport, SimError> {
        policy.attach_telemetry(telem);
        let scratch = arena.checkout(state.config.cluster.workers);
        let mut sim = Sim::from_state_in(state, policy, telem.clone(), scratch)?;
        let out = sim.run_to_completion();
        arena.check_in(sim.take_scratch());
        out
    }

    /// Advance a captured run until its sim clock reaches `target` (or
    /// every job finishes, whichever comes first) and re-capture it — the
    /// incremental stepping primitive behind the realtime service's tick
    /// loop. Scratch is drawn from (and returned to) `arena`.
    ///
    /// The stop lands at the top of the step loop, exactly where periodic
    /// captures land, so chaining bounded advances replays the identical
    /// step/draw/hash sequence of one straight run: step boundaries are
    /// pure functions of sim state, and an interrupted run resumes with
    /// the stop instant's fault transitions and heartbeat still pending.
    /// Once every job has finished the sim clock freezes (further
    /// advances return immediately) and the full [`RunReport`] is built.
    pub fn advance_until_in(
        state: EngineState,
        policy: &mut dyn SlotPolicy,
        target: SimTime,
        telem: &Telemetry,
        arena: &mut EngineArena,
    ) -> Result<Advanced, SimError> {
        policy.attach_telemetry(telem);
        let scratch = arena.checkout(state.config.cluster.workers);
        let mut sim = Sim::from_state_in(state, policy, telem.clone(), scratch)?;
        let steps_before = sim.steps;
        let outcome = sim.advance(Some(target));
        match outcome {
            Ok(finished) => {
                let state = sim.capture_state(true);
                let report = if finished {
                    Some(sim.build_report())
                } else {
                    None
                };
                let steps_run = sim.steps - steps_before;
                arena.check_in(sim.take_scratch());
                Ok(Advanced {
                    state,
                    finished,
                    steps_run,
                    report,
                })
            }
            Err(e) => {
                arena.check_in(sim.take_scratch());
                Err(e)
            }
        }
    }

    /// [`Engine::resume`], additionally recording the per-step hash trace
    /// of the replayed suffix. The first trace entry continues from the
    /// capsule's restored `state_hash`, so when replay is equivalent the
    /// trace is exactly the straight run's trace restricted to the steps
    /// after the capture instant.
    pub fn resume_traced(
        state: EngineState,
        policy: &mut dyn SlotPolicy,
    ) -> Result<(RunReport, Vec<HashPoint>), SimError> {
        let telem = Telemetry::disabled();
        policy.attach_telemetry(&telem);
        let mut sim = Sim::from_state(state, policy, telem)?;
        sim.trace_hashes = true;
        let report = sim.run_to_completion()?;
        Ok((report, std::mem::take(&mut sim.hash_trace)))
    }

    /// Resume a captured run, continuing to capture capsules at every
    /// multiple of `every` — the replay half of divergence bisection.
    pub fn resume_with_snapshots(
        state: EngineState,
        policy: &mut dyn SlotPolicy,
        every: SimDuration,
    ) -> Result<(RunReport, Vec<EngineState>), SimError> {
        let engine = Engine::new(state.config.clone());
        engine.validate_snapshot_period(every)?;
        let telem = Telemetry::disabled();
        policy.attach_telemetry(&telem);
        let mut sim = Sim::from_state(state, policy, telem)?;
        sim.snap_every = Some(every);
        let report = sim.run_to_completion()?;
        Ok((report, std::mem::take(&mut sim.snapshots)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobProfile;
    use crate::policy::StaticSlotPolicy;

    fn run_single(profile: JobProfile, input_mb: f64, workers: usize, seed: u64) -> RunReport {
        let cfg = EngineConfig::small_test(workers, seed);
        let job = JobSpec::new(0, profile, input_mb, workers * 2, SimTime::ZERO);
        Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("run completes")
    }

    #[test]
    fn map_heavy_job_completes() {
        let r = run_single(JobProfile::synthetic_map_heavy(), 2048.0, 4, 1);
        let j = r.single();
        assert_eq!(j.num_maps, 16);
        assert!(j.map_time().as_secs_f64() > 0.0);
        assert!(j.reduce_time().as_secs_f64() > 0.0);
        assert!(j.finished_at > j.maps_done_at);
        assert!(j.maps_done_at > j.started_at);
        // tiny shuffle for map-heavy profile
        assert!((j.shuffle_mb - 2048.0 * 0.02).abs() < 1e-6);
    }

    #[test]
    fn reduce_heavy_job_completes_with_full_shuffle() {
        let r = run_single(JobProfile::synthetic_reduce_heavy(), 1024.0, 4, 2);
        let j = r.single();
        assert!((j.shuffle_mb - 1024.0).abs() < 1e-6);
        // reduce-heavy: the tail (sort+reduce of the full input) dominates
        assert!(j.reduce_time().as_secs_f64() > 1.0);
    }

    #[test]
    fn chunked_advance_until_matches_straight_run_in_both_modes() {
        for fixed in [false, true] {
            let mut cfg = EngineConfig::small_test(4, 17);
            if fixed {
                cfg.tick.mode = SteppingMode::Fixed;
            }
            let job = JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                1024.0,
                8,
                SimTime::ZERO,
            );
            let engine = Engine::new(cfg);
            let straight = engine
                .run(vec![job.clone()], &mut StaticSlotPolicy)
                .unwrap();

            // same run, advanced in 5-sim-second quanta through the
            // capsule path the realtime service uses per tick
            let telem = Telemetry::disabled();
            let mut arena = EngineArena::new();
            let mut state = engine.prepare(vec![job]).unwrap();
            state.override_policy("HadoopV1").unwrap();
            let mut report = None;
            let mut chunks = 0u32;
            while report.is_none() {
                let target = state.at() + SimDuration::from_secs(5);
                let adv = Engine::advance_until_in(
                    state,
                    &mut StaticSlotPolicy,
                    target,
                    &telem,
                    &mut arena,
                )
                .unwrap();
                state = adv.state;
                report = adv.report;
                chunks += 1;
                assert!(chunks < 10_000, "fixed={fixed}: run never converged");
            }
            assert!(chunks > 2, "fixed={fixed}: want a genuinely chunked run");
            let json = |r: &RunReport| serde_json::to_string(r).unwrap();
            assert_eq!(
                json(&straight),
                json(&report.unwrap()),
                "fixed={fixed}: chunked advance must be invisible"
            );

            // further advances of a finished run are no-ops that leave the
            // sim clock frozen
            let at = state.at();
            let adv = Engine::advance_until_in(
                state,
                &mut StaticSlotPolicy,
                at + SimDuration::from_secs(100),
                &telem,
                &mut arena,
            )
            .unwrap();
            assert!(adv.finished);
            assert_eq!(adv.steps_run, 0);
            assert_eq!(adv.state.at(), at);
        }
    }

    #[test]
    fn injected_job_is_deterministic_and_audits_clean() {
        let run_with_injection = || {
            let telem = Telemetry::disabled();
            let mut arena = EngineArena::new();
            let mut state = Engine::new(EngineConfig::small_test(4, 23))
                .prepare(vec![JobSpec::new(
                    0,
                    JobProfile::synthetic_map_heavy(),
                    4096.0,
                    8,
                    SimTime::ZERO,
                )])
                .unwrap();
            state.override_policy("HadoopV1").unwrap();
            // advance a while, then inject a second job mid-run
            let adv = Engine::advance_until_in(
                state,
                &mut StaticSlotPolicy,
                SimTime::from_secs(15),
                &telem,
                &mut arena,
            )
            .unwrap();
            let mut state = adv.state;
            assert!(!adv.finished, "first job must still be running");
            let id = state
                .inject_job(JobProfile::synthetic_reduce_heavy(), 512.0, 4)
                .unwrap();
            assert_eq!(id.0, 1);
            loop {
                let target = state.at() + SimDuration::from_secs(20);
                let adv = Engine::advance_until_in(
                    state,
                    &mut StaticSlotPolicy,
                    target,
                    &telem,
                    &mut arena,
                )
                .unwrap();
                state = adv.state;
                if let Some(report) = adv.report {
                    return (state.state_hash(), report);
                }
            }
        };
        let (hash_a, report_a) = run_with_injection();
        let (hash_b, report_b) = run_with_injection();
        assert_eq!(hash_a, hash_b, "injection must be deterministic");
        assert_eq!(
            serde_json::to_string(&report_a).unwrap(),
            serde_json::to_string(&report_b).unwrap()
        );
        assert_eq!(report_a.jobs.len(), 2);
        assert!(report_a.jobs[1].submit_at > SimTime::ZERO);
        // the injected job went through the same bookkeeping as a
        // prepared one: the full invariant audit holds
        let setup = crate::auditor::AuditSetup::from_config(&EngineConfig::small_test(4, 23));
        let violations = crate::auditor::audit(&report_a, &setup);
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn inject_rejects_bad_input_and_leaves_state_untouched() {
        let mut state = Engine::new(EngineConfig::small_test(4, 5))
            .prepare(vec![JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                512.0,
                4,
                SimTime::ZERO,
            )])
            .unwrap();
        state.override_policy("HadoopV1").unwrap();
        let before = state.state_hash();
        assert!(state
            .inject_job(JobProfile::synthetic_map_heavy(), 0.0, 4)
            .is_err());
        assert!(state
            .inject_job(JobProfile::synthetic_map_heavy(), 512.0, 0)
            .is_err());
        // faults must be strictly in the future and on a real node
        use simgrid::cluster::NodeId;
        use simgrid::fault::NodeFault;
        assert!(state
            .inject_fault(NodeFault::permanent(NodeId(99), SimTime::from_secs(10)))
            .is_err());
        assert!(state
            .inject_fault(NodeFault::permanent(NodeId(1), SimTime::ZERO))
            .is_err());
        assert_eq!(before, state.state_hash(), "rejections must not mutate");
    }

    #[test]
    fn snapshot_resume_is_byte_identical_in_both_modes() {
        for fixed in [false, true] {
            let mut cfg = EngineConfig::small_test(4, 9);
            if fixed {
                cfg.tick.mode = SteppingMode::Fixed;
            }
            cfg.record_events = true;
            let job = JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                1024.0,
                8,
                SimTime::ZERO,
            );
            let engine = Engine::new(cfg);
            let straight = engine
                .run(vec![job.clone()], &mut StaticSlotPolicy)
                .unwrap();
            let every = SimDuration::from_secs(10);
            let (checkpointed, snaps) = engine
                .run_with_snapshots(vec![job], &mut StaticSlotPolicy, every)
                .unwrap();
            let json = |r: &RunReport| serde_json::to_string(r).unwrap();
            // capturing perturbs nothing
            assert_eq!(json(&straight), json(&checkpointed), "fixed={fixed}");
            assert!(snaps.len() >= 2, "fixed={fixed}: want multiple capsules");
            assert_eq!(snaps[0].at(), SimTime::ZERO);
            // restore from a mid-run capsule and run to the end
            let mid = snaps[snaps.len() / 2].clone();
            assert!(mid.at() > SimTime::ZERO);
            let resumed = Engine::resume(mid, &mut StaticSlotPolicy).unwrap();
            assert_eq!(json(&straight), json(&resumed), "fixed={fixed}");
        }
    }

    #[test]
    fn resume_rejects_mismatched_policy() {
        let cfg = EngineConfig::small_test(4, 9);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            512.0,
            8,
            SimTime::ZERO,
        );
        let (_, snaps) = Engine::new(cfg)
            .run_with_snapshots(vec![job], &mut StaticSlotPolicy, SimDuration::from_secs(10))
            .unwrap();
        struct Other;
        impl SlotPolicy for Other {
            fn name(&self) -> &'static str {
                "Other"
            }
            fn decide(&mut self, _: &PolicyContext<'_>) -> Vec<crate::policy::SlotDirective> {
                Vec::new()
            }
        }
        let err = Engine::resume(snaps[0].clone(), &mut Other).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn snapshot_period_must_align_with_sampling() {
        let cfg = EngineConfig::small_test(4, 9);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            512.0,
            8,
            SimTime::ZERO,
        );
        let err = Engine::new(cfg)
            .run_with_snapshots(
                vec![job],
                &mut StaticSlotPolicy,
                SimDuration::from_millis(1500),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn engine_state_serde_round_trip_preserves_replay() {
        let mut cfg = EngineConfig::small_test(4, 21);
        cfg.record_events = true;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        let engine = Engine::new(cfg);
        let (straight, snaps) = engine
            .run_with_snapshots(vec![job], &mut StaticSlotPolicy, SimDuration::from_secs(10))
            .unwrap();
        let mid = &snaps[snaps.len() / 2];
        // through the wire format and back
        let wire = serde_json::to_string(mid).unwrap();
        let back: EngineState = serde_json::from_str(&wire).unwrap();
        assert_eq!(back.at(), mid.at());
        let resumed = Engine::resume(back, &mut StaticSlotPolicy).unwrap();
        assert_eq!(
            serde_json::to_string(&straight).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn prepared_capsule_resumes_like_a_fresh_run() {
        let cfg = EngineConfig::small_test(4, 13);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        let engine = Engine::new(cfg);
        let straight = engine
            .run(vec![job.clone()], &mut StaticSlotPolicy)
            .unwrap();
        let mut warm = engine.prepare(vec![job]).unwrap();
        warm.override_policy("HadoopV1").unwrap();
        let resumed = Engine::resume(warm, &mut StaticSlotPolicy).unwrap();
        assert_eq!(
            serde_json::to_string(&straight).unwrap(),
            serde_json::to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn determinism_same_seed_same_timings() {
        let a = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 7);
        let b = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 7);
        assert_eq!(
            a.single().finished_at.as_millis(),
            b.single().finished_at.as_millis()
        );
        assert_eq!(
            a.single().maps_done_at.as_millis(),
            b.single().maps_done_at.as_millis()
        );
    }

    #[test]
    fn local_map_fraction_matches_event_log() {
        // regression for the counter derivation: the fraction reported
        // from DATA_LOCAL_MAPS / TOTAL_LAUNCHED_MAPS must equal the one
        // computed from the launch events' remote_read flags — two
        // independently-maintained paths over the same launches
        let mut cfg = EngineConfig::small_test(4, 11);
        cfg.record_events = true;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .unwrap();
        let (mut local, mut total) = (0u64, 0u64);
        for e in r.events.events() {
            if let Event::MapLaunched { remote_read, .. } = e {
                total += 1;
                if !remote_read {
                    local += 1;
                }
            }
        }
        assert!(total > 0);
        let from_events = local as f64 / total as f64;
        assert_eq!(r.single().local_map_fraction, from_events);
        let c = &r.single().counters;
        assert_eq!(c.get(Counter::TotalLaunchedMaps), total as f64);
        assert_eq!(c.get(Counter::DataLocalMaps), local as f64);
    }

    #[test]
    fn counters_close_their_conservation_laws() {
        let r = run_single(JobProfile::synthetic_reduce_heavy(), 1024.0, 4, 9);
        let j = r.single();
        let c = &j.counters;
        // fault-free: every MB of input read once, output == shuffle, and
        // every produced MB was fetched by exactly one reducer
        assert!((c.get(Counter::HdfsBytesRead) - 1024.0).abs() < 1e-6);
        assert!((c.get(Counter::MapOutputMb) - j.shuffle_mb).abs() < 1e-6);
        assert!((c.get(Counter::ShuffleFetchedMb) - j.shuffle_mb).abs() < 1e-6);
        assert_eq!(c.get(Counter::LostMapOutputMb), 0.0);
        assert_eq!(c.get(Counter::KilledAttempts), 0.0);
        // remote shuffle is a subset of fetched, and feeds network_mb
        assert!(c.get(Counter::ShuffleRemoteMb) <= c.get(Counter::ShuffleFetchedMb));
        assert!(
            c.get(Counter::RemoteBytesRead) + c.get(Counter::ShuffleRemoteMb)
                <= r.network_mb + 1e-6
        );
        // run-level ledger is the single job's ledger
        assert_eq!(r.counters, j.counters);
    }

    #[test]
    fn node_utilization_is_recorded_and_bounded() {
        let r = run_single(JobProfile::synthetic_map_heavy(), 2048.0, 4, 13);
        assert_eq!(r.node_utilization.len(), 4);
        let busy: usize = r.node_utilization.iter().map(|u| u.cpu.len()).sum();
        assert!(busy > 0, "some node must have recorded CPU samples");
        for u in &r.node_utilization {
            for &(_, x) in u.cpu.points() {
                assert!((0.0..=1.0 + 1e-9).contains(&x), "cpu {x}");
            }
            for &(_, x) in u.map_occupied.points() {
                assert!(x >= 0.0);
            }
        }
        // static policy, no decisions recorded
        assert!(r.decisions.is_empty());
    }

    #[test]
    fn different_seeds_vary_slightly() {
        let a = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 1);
        let b = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 2);
        // jitter and placement differ; totals should be close but the runs
        // are genuinely different executions
        let ta = a.single().total_time().as_secs_f64();
        let tb = b.single().total_time().as_secs_f64();
        assert!((ta - tb).abs() / ta < 0.30, "ta={ta} tb={tb}");
    }

    #[test]
    fn progress_reaches_200_percent() {
        let r = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 3);
        let j = r.single();
        let (_, last) = j.progress.last().expect("progress recorded");
        assert!(last > 195.0, "final progress {last}");
        // and it is monotone non-decreasing
        let pts = j.progress.points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-6);
        }
    }

    #[test]
    fn multi_job_fifo_ordering() {
        let cfg = EngineConfig::small_test(4, 5);
        let jobs = vec![
            JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                1024.0,
                8,
                SimTime::ZERO,
            ),
            JobSpec::new(
                1,
                JobProfile::synthetic_map_heavy(),
                1024.0,
                8,
                SimTime::from_secs(5),
            ),
        ];
        let r = Engine::new(cfg).run(jobs, &mut StaticSlotPolicy).unwrap();
        assert_eq!(r.jobs.len(), 2);
        // FIFO: the first job finishes first
        assert!(r.jobs[0].finished_at <= r.jobs[1].finished_at);
        assert!(r.makespan() >= r.jobs[1].execution_time());
        assert!(r.mean_execution_time().as_secs_f64() > 0.0);
    }

    #[test]
    fn static_policy_never_changes_slots() {
        let r = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 1);
        assert_eq!(r.slot_changes, 0);
        // slot series is flat at workers * init
        for &(_, v) in r.map_slot_series.points() {
            assert_eq!(v, 12.0); // 4 workers * 3 slots
        }
        for &(_, v) in r.reduce_slot_series.points() {
            assert_eq!(v, 8.0);
        }
    }

    #[test]
    fn rejects_empty_and_invalid() {
        let cfg = EngineConfig::small_test(4, 1);
        assert!(Engine::new(cfg.clone())
            .run(vec![], &mut StaticSlotPolicy)
            .is_err());
        let mut bad = cfg.clone();
        bad.init_map_slots = 0;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            128.0,
            1,
            SimTime::ZERO,
        );
        assert!(Engine::new(bad)
            .run(vec![job.clone()], &mut StaticSlotPolicy)
            .is_err());
        // off-grid heartbeat is only an error under fixed ticking
        let mut bad2 = cfg;
        bad2.tick.mode = SteppingMode::Fixed;
        bad2.heartbeat = SimDuration::from_millis(150);
        assert!(Engine::new(bad2)
            .run(vec![job], &mut StaticSlotPolicy)
            .is_err());
    }

    #[test]
    fn validation_rejects_zero_periods_in_both_modes() {
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            128.0,
            1,
            SimTime::ZERO,
        );
        for mode in [SteppingMode::Fixed, SteppingMode::Adaptive] {
            let base = EngineConfigBuilder::paper()
                .workers(2)
                .stepping(mode)
                .build();
            let mut bad = base.clone();
            bad.heartbeat = SimDuration::ZERO;
            let err = Engine::new(bad)
                .run(vec![job.clone()], &mut StaticSlotPolicy)
                .unwrap_err();
            assert!(format!("{err}").contains("heartbeat"), "{err}");
            let mut bad = base.clone();
            bad.sample_period = SimDuration::ZERO;
            let err = Engine::new(bad)
                .run(vec![job.clone()], &mut StaticSlotPolicy)
                .unwrap_err();
            assert!(format!("{err}").contains("sample_period"), "{err}");
        }
        // a zero tick only matters when it is actually the step length
        let mut bad = EngineConfigBuilder::paper()
            .workers(2)
            .stepping(SteppingMode::Fixed)
            .build();
        bad.tick.tick = SimDuration::ZERO;
        let err = Engine::new(bad)
            .run(vec![job.clone()], &mut StaticSlotPolicy)
            .unwrap_err();
        assert!(format!("{err}").contains("tick"), "{err}");
    }

    #[test]
    fn adaptive_mode_accepts_off_grid_periods() {
        let cfg = EngineConfigBuilder::paper()
            .workers(2)
            .seed(7)
            .stepping(SteppingMode::Adaptive)
            .heartbeat(SimDuration::from_millis(150))
            .sample_period(SimDuration::from_millis(70))
            .build();
        let job = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 64.0, 2, SimTime::ZERO);
        let report = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("off-grid periods are fine without a tick grid");
        assert!(report.single().total_time().as_secs_f64() > 0.0);
    }

    /// The two stepping modes are different discretisations of the same
    /// physics: paper-scale observables must agree closely, and the
    /// adaptive core must need far fewer steps to get there.
    #[test]
    fn fixed_and_adaptive_modes_agree_on_observables() {
        let job = || {
            JobSpec::new(
                0,
                JobProfile::synthetic_reduce_heavy(),
                1024.0,
                8,
                SimTime::ZERO,
            )
        };
        let run = |mode: SteppingMode| {
            let cfg = EngineConfigBuilder::paper()
                .workers(4)
                .seed(11)
                .stepping(mode)
                .build();
            Engine::new(cfg)
                .run(vec![job()], &mut StaticSlotPolicy)
                .expect("run completes")
        };
        let fixed = run(SteppingMode::Fixed);
        let adaptive = run(SteppingMode::Adaptive);
        let (tf, ta) = (
            fixed.single().total_time().as_secs_f64(),
            adaptive.single().total_time().as_secs_f64(),
        );
        let rel = (tf - ta).abs() / tf.max(ta);
        assert!(
            rel < 0.05,
            "total time diverged: fixed {tf}s adaptive {ta}s"
        );
        assert!(
            (fixed.single().shuffle_mb - adaptive.single().shuffle_mb).abs() < 1e-6,
            "shuffle volume is exact in both modes"
        );
        // on this deliberately small run the 1 s sample boundary dominates
        // the step count; paper-scale runs (see the engine bench) clear 5x
        assert!(
            adaptive.steps * 4 <= fixed.steps,
            "adaptive must take far fewer steps ({} vs {})",
            adaptive.steps,
            fixed.steps
        );
    }

    #[test]
    fn rejects_non_dense_job_ids() {
        let cfg = EngineConfig::small_test(2, 1);
        let job = JobSpec::new(
            3,
            JobProfile::synthetic_map_heavy(),
            128.0,
            1,
            SimTime::ZERO,
        );
        assert!(Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .is_err());
    }

    #[test]
    fn more_input_takes_longer() {
        let small = run_single(JobProfile::synthetic_map_heavy(), 512.0, 4, 1);
        let large = run_single(JobProfile::synthetic_map_heavy(), 4096.0, 4, 1);
        assert!(
            large.single().total_time() > small.single().total_time(),
            "8x input must take longer"
        );
    }

    #[test]
    fn speculation_races_and_wins_on_stragglers() {
        let mut cfg = EngineConfig::small_test(4, 21);
        cfg.jitter_amp = 0.6; // strong stragglers
        cfg.speculative_maps = true;
        cfg.speculation_min_runtime = SimDuration::from_secs(5);
        cfg.record_events = true;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .unwrap();
        assert!(
            r.speculative_attempts > 0,
            "stragglers should trigger backups"
        );
        assert!(r.speculative_wins <= r.speculative_attempts);
        // output conservation: every block delivered exactly once
        let j = r.single();
        assert!((j.shuffle_mb - 2048.0 * 0.02).abs() < 1e-6);
        // every race ends either with the losing attempt killed (still
        // running when the winner delivered) or silently discarded (it
        // finished after delivery) — never more kills than races
        let kills = r
            .events
            .count(|e| matches!(e, crate::events::Event::MapKilled { .. }));
        assert!(kills as u64 <= r.speculative_attempts);
        assert_eq!(r.map_failures, 0);
    }

    #[test]
    fn speculation_off_means_zero_attempts() {
        let r = run_single(JobProfile::synthetic_map_heavy(), 1024.0, 4, 1);
        assert_eq!(r.speculative_attempts, 0);
        assert_eq!(r.speculative_wins, 0);
    }

    #[test]
    fn injected_failures_are_retried_to_completion() {
        let mut cfg = EngineConfig::small_test(4, 8);
        cfg.map_failure_rate = 0.15;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .unwrap();
        let j = r.single();
        assert!(r.map_failures > 0, "failures should have been injected");
        assert_eq!(j.num_maps, 16, "all blocks still delivered");
        assert!(
            (j.shuffle_mb - 2048.0 * 0.02).abs() < 1e-6,
            "no double output"
        );
        let (_, p) = j.progress.last().unwrap();
        assert!(p >= 200.0 - 1e-6);
    }

    #[test]
    fn failures_plus_speculation_compose() {
        let mut cfg = EngineConfig::small_test(4, 13);
        cfg.map_failure_rate = 0.1;
        cfg.speculative_maps = true;
        cfg.jitter_amp = 0.5;
        cfg.speculation_min_runtime = SimDuration::from_secs(5);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .unwrap();
        let j = r.single();
        assert!(
            (j.shuffle_mb - 1024.0).abs() < 1e-6,
            "exactly-once delivery"
        );
    }

    #[test]
    fn invalid_failure_rate_rejected() {
        let mut cfg = EngineConfig::small_test(2, 1);
        cfg.map_failure_rate = 1.0;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            128.0,
            1,
            SimTime::ZERO,
        );
        assert!(Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .is_err());
    }

    #[test]
    fn map_time_scales_with_map_slots() {
        // more map slots (below thrashing) => shorter map time
        let mut cfg = EngineConfig::small_test(4, 9);
        cfg.init_map_slots = 2;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let slow = Engine::new(cfg.clone())
            .run(vec![job.clone()], &mut StaticSlotPolicy)
            .unwrap();
        cfg.init_map_slots = 6;
        let fast = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .unwrap();
        assert!(
            fast.single().map_time() < slow.single().map_time(),
            "6 slots {:?} should beat 2 slots {:?}",
            fast.single().map_time(),
            slow.single().map_time()
        );
    }

    // ------------------------------------------------------------------
    // Node-crash fault injection and recovery
    // ------------------------------------------------------------------

    /// Fault-free baseline barrier instant, rounded down to the heartbeat
    /// grid — a crash there lands mid-map-phase in both stepping modes.
    fn mid_map_crash_instant(cfg: &EngineConfig, job: &JobSpec) -> SimTime {
        let base = Engine::new(cfg.clone())
            .run(vec![job.clone()], &mut StaticSlotPolicy)
            .expect("baseline completes");
        // 5/8 of the barrier: past the first task wave (so completed map
        // output exists on every node) but with maps and shuffling reduces
        // still in flight
        let mid_ms = base.single().maps_done_at.as_millis() * 5 / 8;
        SimTime::from_millis((mid_ms / 3000).max(1) * 3000)
    }

    #[test]
    fn crash_mid_map_recovers_and_reexecutes_lost_output() {
        let cfg = EngineConfig::small_test(4, 5);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let crash_at = mid_map_crash_instant(&cfg, &job);
        let plan =
            simgrid::FaultPlan::new(vec![simgrid::NodeFault::permanent(NodeId(1), crash_at)]);
        let mut cfg = cfg;
        cfg.fault_plan = plan;
        cfg.record_events = true;
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("recovery completes the job");
        let j = r.single();
        assert_eq!(r.node_crashes, 1);
        assert!(
            r.lost_map_outputs > 0,
            "the dead node held completed map output reducers still needed"
        );
        assert!(r.crash_task_kills > 0, "in-flight work died with the node");
        assert!(
            (j.shuffle_mb - 2048.0).abs() < 1e-6,
            "full shuffle delivered"
        );
        let (_, p) = j.progress.last().unwrap();
        assert!(p >= 200.0 - 1e-6);
        assert!(
            r.events
                .events()
                .iter()
                .any(|e| matches!(e, Event::MapOutputLost { .. })),
            "lost output must be recorded"
        );
        assert!(
            r.map_input_processed_mb >= 2048.0 - 1e-6,
            "work conservation: re-execution only adds map input"
        );
    }

    #[test]
    fn crash_without_recovery_surfaces_clean_error() {
        let cfg = EngineConfig::small_test(4, 5);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let crash_at = mid_map_crash_instant(&cfg, &job);
        let plan =
            simgrid::FaultPlan::new(vec![simgrid::NodeFault::permanent(NodeId(1), crash_at)]);
        let mut cfg = cfg;
        cfg.fault_plan = plan;
        cfg.fault_recovery = false;
        let err = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect_err("stranded work must error, not hang");
        match err {
            SimError::NodeLost { node, .. } => assert_eq!(node, NodeId(1)),
            other => panic!("expected NodeLost, got {other:?}"),
        }
    }

    #[test]
    fn transient_crash_rejoins_as_fresh_tracker() {
        let cfg = EngineConfig::small_test(4, 6);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let crash_at = mid_map_crash_instant(&cfg, &job);
        // downtime longer than the expiry interval: loss is detected by
        // timeout first, then the node re-registers and takes work again
        let plan = simgrid::FaultPlan::new(vec![simgrid::NodeFault::transient(
            NodeId(2),
            crash_at,
            SimDuration::from_secs(60),
        )]);
        let mut cfg = cfg;
        cfg.fault_plan = plan;
        cfg.record_events = true;
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("transient crash recovers");
        assert_eq!(r.node_crashes, 1);
        assert!(r
            .events
            .events()
            .iter()
            .any(|e| matches!(e, Event::NodeRejoined { node, .. } if *node == NodeId(2))),);
    }

    #[test]
    fn early_rejoin_before_expiry_still_reveals_loss() {
        let cfg = EngineConfig::small_test(4, 6);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let crash_at = mid_map_crash_instant(&cfg, &job);
        // downtime shorter than heartbeat_timeout (30 s): re-registration,
        // not expiry, is what reveals the lost state
        let plan = simgrid::FaultPlan::new(vec![simgrid::NodeFault::transient(
            NodeId(1),
            crash_at,
            SimDuration::from_secs(9),
        )]);
        let mut cfg = cfg;
        cfg.fault_plan = plan;
        let r = Engine::new(cfg)
            .run(vec![job], &mut StaticSlotPolicy)
            .expect("early rejoin recovers");
        assert_eq!(r.node_crashes, 1);
        let (_, p) = r.single().progress.last().unwrap();
        assert!(p >= 200.0 - 1e-6);
    }

    #[test]
    fn repeated_failures_blacklist_tracker() {
        let cfg = EngineConfig::small_test(4, 3);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        let mut policy = StaticSlotPolicy;
        let mut sim = Sim::new(&cfg, vec![job], &mut policy, Telemetry::disabled()).unwrap();
        for _ in 0..cfg.blacklist_threshold {
            sim.charge_tracker_failure(NodeId(0));
        }
        assert!(sim.trackers[0].blacklisted);
        assert_eq!(sim.trackers_blacklisted, 1);
        // further failures never double-count the tracker
        sim.charge_tracker_failure(NodeId(0));
        assert_eq!(sim.trackers_blacklisted, 1);
        // and it is skipped at assignment time
        sim.heartbeat_round();
        assert!(!sim.running_maps.is_empty(), "healthy trackers got work");
        assert!(
            sim.running_maps.values().all(|t| t.node != NodeId(0)),
            "blacklisted tracker must receive no work"
        );
    }

    /// Regression for the float-boundary bug: a failure point the adaptive
    /// horizon lands on *exactly* used to be skipped by `progress() >=
    /// fail_at` (one ulp under after the division), deferring the failure
    /// to the next step in one mode but not the other.
    #[test]
    fn failure_points_fire_identically_in_both_modes() {
        let run = |mode: SteppingMode| {
            let mut cfg = EngineConfigBuilder::paper()
                .workers(4)
                .seed(21)
                .stepping(mode)
                .build();
            cfg.map_failure_rate = 0.2;
            let job = JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                2048.0,
                8,
                SimTime::ZERO,
            );
            Engine::new(cfg)
                .run(vec![job], &mut StaticSlotPolicy)
                .expect("run completes")
        };
        let fixed = run(SteppingMode::Fixed);
        let adaptive = run(SteppingMode::Adaptive);
        assert!(adaptive.map_failures > 0, "failures should fire");
        assert_eq!(
            fixed.map_failures, adaptive.map_failures,
            "every injected failure point must fire in both modes"
        );
    }

    #[test]
    fn validation_rejects_bad_fault_plans() {
        let job = || {
            vec![JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                512.0,
                4,
                SimTime::ZERO,
            )]
        };
        // unknown node
        let mut cfg = EngineConfig::small_test(4, 1);
        let plan = simgrid::FaultPlan::new(vec![simgrid::NodeFault::permanent(
            NodeId(9),
            SimTime::from_secs(5),
        )]);
        cfg.fault_plan = plan;
        assert!(Engine::new(cfg).run(job(), &mut StaticSlotPolicy).is_err());
        // crash at t=0
        let mut cfg = EngineConfig::small_test(4, 1);
        let plan = simgrid::FaultPlan::new(vec![simgrid::NodeFault::permanent(
            NodeId(1),
            SimTime::ZERO,
        )]);
        cfg.fault_plan = plan;
        assert!(Engine::new(cfg).run(job(), &mut StaticSlotPolicy).is_err());
        // zero downtime
        let mut cfg = EngineConfig::small_test(4, 1);
        let plan = simgrid::FaultPlan::new(vec![simgrid::NodeFault::transient(
            NodeId(1),
            SimTime::from_secs(5),
            SimDuration::ZERO,
        )]);
        cfg.fault_plan = plan;
        assert!(Engine::new(cfg).run(job(), &mut StaticSlotPolicy).is_err());
        // zero blacklist threshold
        let mut cfg = EngineConfig::small_test(4, 1);
        cfg.blacklist_threshold = 0;
        assert!(Engine::new(cfg).run(job(), &mut StaticSlotPolicy).is_err());
        // negative re-replication rate
        let mut cfg = EngineConfig::small_test(4, 1);
        cfg.rereplication_rate = -1.0;
        assert!(Engine::new(cfg).run(job(), &mut StaticSlotPolicy).is_err());
    }
}

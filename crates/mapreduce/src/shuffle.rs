//! Map-output availability and shuffle accounting for one job.
//!
//! Each finished map task leaves its output on the node that ran it, split
//! uniformly across the job's reduce partitions (the same uniformity
//! assumption the paper's slot manager makes when estimating `R_m`,
//! §IV-A3). A reduce task may fetch, from source node `s`, one `1/R` share
//! of all map output produced on `s` so far. The shuffle of a reduce can
//! only *complete* once the job's last map has finished — the
//! synchronisation barrier.

use crate::task::ReduceTask;
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;

/// Shuffle-side state of one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShuffleState {
    /// Map output MB accumulated on each worker node (by `NodeId.0`).
    avail_by_src: Vec<f64>,
    /// Total map output so far (MB).
    total_output_mb: f64,
    num_reduces: usize,
    maps_all_done: bool,
}

impl ShuffleState {
    pub fn new(workers: usize, num_reduces: usize) -> ShuffleState {
        assert!(num_reduces > 0);
        ShuffleState {
            avail_by_src: vec![0.0; workers],
            total_output_mb: 0.0,
            num_reduces,
            maps_all_done: false,
        }
    }

    /// Record a finished map's output on `node`.
    pub fn on_map_complete(&mut self, node: NodeId, output_mb: f64) {
        debug_assert!(output_mb >= 0.0);
        self.avail_by_src[node.0] += output_mb;
        self.total_output_mb += output_mb;
    }

    /// Mark the barrier: no more map output will appear.
    pub fn set_maps_all_done(&mut self) {
        self.maps_all_done = true;
    }

    /// Re-open the barrier after a node loss forces completed maps back
    /// into the pending queue. Reduces already past their shuffle keep
    /// going; reduces still shuffling wait for the re-executed output.
    pub fn clear_maps_all_done(&mut self) {
        self.maps_all_done = false;
    }

    /// Drop all map output stored on `node` (the node crashed). Reducers
    /// see their fetch sources dry up — `remaining_from(node)` clamps to
    /// zero even for partially-fetched shares — and the lost MB leaves the
    /// partition totals until the maps are re-executed elsewhere. Returns
    /// the MB lost.
    pub fn on_node_lost(&mut self, node: NodeId) -> f64 {
        let lost = std::mem::take(&mut self.avail_by_src[node.0]);
        self.total_output_mb -= lost;
        lost
    }

    pub fn maps_all_done(&self) -> bool {
        self.maps_all_done
    }

    pub fn total_output_mb(&self) -> f64 {
        self.total_output_mb
    }

    /// The final size of each reduce partition; `None` until the barrier.
    pub fn partition_mb(&self) -> Option<f64> {
        if self.maps_all_done {
            Some(self.total_output_mb / self.num_reduces as f64)
        } else {
            None
        }
    }

    /// MB still fetchable *right now* by `reduce` from source node `src`.
    pub fn remaining_from(&self, reduce: &ReduceTask, src: NodeId) -> f64 {
        let share = self.avail_by_src[src.0] / self.num_reduces as f64;
        (share - reduce.fetched_by_src[src.0]).max(0.0)
    }

    /// Total MB still fetchable right now by `reduce` across all sources.
    pub fn remaining_total(&self, reduce: &ReduceTask) -> f64 {
        (0..self.avail_by_src.len())
            .map(|s| self.remaining_from(reduce, NodeId(s)))
            .sum()
    }

    /// True when `reduce` has fetched its entire partition *and* the
    /// barrier has been crossed — the conditions for leaving the shuffle
    /// phase.
    pub fn shuffle_complete(&self, reduce: &ReduceTask) -> bool {
        self.maps_all_done && self.remaining_total(reduce) <= 1e-6
    }

    /// Source nodes with data still fetchable by `reduce`, largest backlog
    /// first, truncated to `max_sources` (the parallel-copies limit).
    pub fn fetch_sources(&self, reduce: &ReduceTask, max_sources: usize) -> Vec<(NodeId, f64)> {
        let mut srcs = Vec::new();
        self.fetch_sources_into(reduce, max_sources, &mut srcs);
        srcs
    }

    /// [`ShuffleState::fetch_sources`] writing into a caller-owned
    /// (recycled) buffer, so the per-step flow build allocates nothing.
    pub fn fetch_sources_into(
        &self,
        reduce: &ReduceTask,
        max_sources: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) {
        out.clear();
        out.extend((0..self.avail_by_src.len()).filter_map(|s| {
            let rem = self.remaining_from(reduce, NodeId(s));
            (rem > 1e-9).then_some((NodeId(s), rem))
        }));
        // largest-first; tie-break on node id for determinism
        out.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0 .0.cmp(&b.0 .0)));
        out.truncate(max_sources);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::task::ReduceTaskId;
    use simgrid::time::SimTime;

    fn reduce(node: usize, workers: usize) -> ReduceTask {
        ReduceTask::new(
            ReduceTaskId {
                job: JobId(0),
                partition: 0,
            },
            NodeId(node),
            workers,
            1.0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn availability_accrues_per_source() {
        let mut sh = ShuffleState::new(4, 2);
        sh.on_map_complete(NodeId(1), 100.0);
        sh.on_map_complete(NodeId(1), 60.0);
        sh.on_map_complete(NodeId(3), 40.0);
        let r = reduce(0, 4);
        assert!((sh.remaining_from(&r, NodeId(1)) - 80.0).abs() < 1e-12);
        assert!((sh.remaining_from(&r, NodeId(3)) - 20.0).abs() < 1e-12);
        assert_eq!(sh.remaining_from(&r, NodeId(0)), 0.0);
        assert!((sh.remaining_total(&r) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn fetch_reduces_remaining() {
        let mut sh = ShuffleState::new(2, 2);
        sh.on_map_complete(NodeId(0), 100.0);
        let mut r = reduce(1, 2);
        r.record_fetch(NodeId(0), 30.0);
        assert!((sh.remaining_from(&r, NodeId(0)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_gates_completion() {
        let mut sh = ShuffleState::new(2, 1);
        sh.on_map_complete(NodeId(0), 10.0);
        let mut r = reduce(1, 2);
        r.record_fetch(NodeId(0), 10.0);
        // everything fetched, but maps not done: not complete
        assert!(!sh.shuffle_complete(&r));
        assert_eq!(sh.partition_mb(), None);
        sh.set_maps_all_done();
        assert!(sh.shuffle_complete(&r));
        assert_eq!(sh.partition_mb(), Some(10.0));
    }

    #[test]
    fn incomplete_fetch_blocks_completion_after_barrier() {
        let mut sh = ShuffleState::new(2, 1);
        sh.on_map_complete(NodeId(0), 10.0);
        sh.set_maps_all_done();
        let r = reduce(1, 2);
        assert!(!sh.shuffle_complete(&r));
    }

    #[test]
    fn fetch_sources_ordered_and_truncated() {
        let mut sh = ShuffleState::new(5, 1);
        sh.on_map_complete(NodeId(0), 10.0);
        sh.on_map_complete(NodeId(2), 50.0);
        sh.on_map_complete(NodeId(4), 30.0);
        let r = reduce(1, 5);
        let srcs = sh.fetch_sources(&r, 2);
        assert_eq!(srcs.len(), 2);
        assert_eq!(srcs[0].0, NodeId(2));
        assert_eq!(srcs[1].0, NodeId(4));
    }

    #[test]
    fn deterministic_tiebreak_by_node_id() {
        let mut sh = ShuffleState::new(3, 1);
        sh.on_map_complete(NodeId(2), 10.0);
        sh.on_map_complete(NodeId(0), 10.0);
        let r = reduce(1, 3);
        let srcs = sh.fetch_sources(&r, 3);
        assert_eq!(srcs[0].0, NodeId(0));
        assert_eq!(srcs[1].0, NodeId(2));
    }

    proptest::proptest! {
        /// Conservation: however fetches interleave, the total a reduce can
        /// ever fetch equals its exact partition share, and remaining never
        /// goes negative.
        #[test]
        fn prop_fetch_conservation(
            outputs in proptest::collection::vec((0usize..4, 0.0f64..500.0), 1..20),
            fetch_fracs in proptest::collection::vec(0.0f64..1.5, 1..40),
        ) {
            let workers = 4;
            let reduces = 3;
            let mut sh = ShuffleState::new(workers, reduces);
            for &(node, mb) in &outputs {
                sh.on_map_complete(NodeId(node), mb);
            }
            let mut r = reduce(0, workers);
            // greedy fetches in arbitrary fractional steps
            for (i, frac) in fetch_fracs.into_iter().enumerate() {
                let src = NodeId(i % workers);
                let rem = sh.remaining_from(&r, src);
                let step = (rem * frac).min(rem);
                if step > 0.0 {
                    r.record_fetch(src, step);
                }
                proptest::prop_assert!(sh.remaining_from(&r, src) >= -1e-9);
            }
            // drain completely
            for w in 0..workers {
                let rem = sh.remaining_from(&r, NodeId(w));
                if rem > 0.0 {
                    r.record_fetch(NodeId(w), rem);
                }
            }
            let total_out: f64 = outputs.iter().map(|(_, mb)| mb).sum();
            let share = total_out / reduces as f64;
            proptest::prop_assert!((r.fetched_mb - share).abs() < 1e-6,
                "fetched {} vs share {}", r.fetched_mb, share);
            sh.set_maps_all_done();
            proptest::prop_assert!(sh.shuffle_complete(&r));
        }
    }

    #[test]
    fn node_loss_drains_source_and_reopens_barrier() {
        let mut sh = ShuffleState::new(3, 2);
        sh.on_map_complete(NodeId(0), 100.0);
        sh.on_map_complete(NodeId(1), 60.0);
        sh.set_maps_all_done();
        let mut r = reduce(2, 3);
        r.record_fetch(NodeId(0), 20.0);
        let lost = sh.on_node_lost(NodeId(0));
        assert!((lost - 100.0).abs() < 1e-12);
        assert!((sh.total_output_mb() - 60.0).abs() < 1e-12);
        // the partially fetched share clamps to zero, it does not go negative
        assert_eq!(sh.remaining_from(&r, NodeId(0)), 0.0);
        sh.clear_maps_all_done();
        assert!(!sh.maps_all_done());
        assert_eq!(sh.partition_mb(), None);
        // the re-executed map lands on a survivor and is fetchable again
        sh.on_map_complete(NodeId(1), 100.0);
        sh.set_maps_all_done();
        assert!((sh.total_output_mb() - 160.0).abs() < 1e-12);
        // losing an empty source is a no-op
        assert_eq!(sh.on_node_lost(NodeId(2)), 0.0);
    }

    #[test]
    fn partitions_split_uniformly() {
        let mut sh = ShuffleState::new(2, 4);
        sh.on_map_complete(NodeId(0), 100.0);
        sh.set_maps_all_done();
        assert_eq!(sh.partition_mb(), Some(25.0));
        let r = reduce(1, 2);
        assert!((sh.remaining_from(&r, NodeId(0)) - 25.0).abs() < 1e-12);
    }
}

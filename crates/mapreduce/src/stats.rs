//! Runtime statistics: what heartbeats carry and what the slot manager sees.
//!
//! §III-C: each task tracker piggy-backs on its heartbeat *the map input
//! processing rate, the shuffle rate and the map output rate*; the job
//! tracker aggregates them. [`TrackerMeters`] is the tracker side,
//! [`ClusterStats`] the aggregated job-tracker side handed to the
//! [`crate::policy::SlotPolicy`].

use serde::{Deserialize, Serialize};
use simgrid::metrics::RateMeter;
use simgrid::time::SimTime;

/// Per-tracker accumulation between heartbeats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackerMeters {
    /// Input MB consumed by map tasks on this tracker.
    pub map_input: RateMeter,
    /// Output MB produced by map tasks (credited on task completion, as the
    /// paper's `MapTask` modification records output size at completion).
    pub map_output: RateMeter,
    /// MB fetched by reduce shuffles running on this tracker.
    pub shuffle: RateMeter,
}

impl TrackerMeters {
    pub fn new(now: SimTime) -> TrackerMeters {
        TrackerMeters {
            map_input: RateMeter::new(now),
            map_output: RateMeter::new(now),
            shuffle: RateMeter::new(now),
        }
    }

    /// Close the heartbeat window, yielding the three rates (MB/s).
    pub fn harvest(&mut self, now: SimTime) -> HeartbeatStats {
        HeartbeatStats {
            map_input_rate: self.map_input.harvest(now),
            map_output_rate: self.map_output.harvest(now),
            shuffle_rate: self.shuffle.harvest(now),
        }
    }
}

/// The statistics block added to each heartbeat message.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HeartbeatStats {
    pub map_input_rate: f64,
    pub map_output_rate: f64,
    pub shuffle_rate: f64,
}

/// Aggregated cluster-wide view computed by the job tracker's heartbeat
/// handler each heartbeat round; the input to slot-management decisions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterStats {
    pub now: SimTime,
    /// Σ map input rate over trackers (MB/s).
    pub map_input_rate: f64,
    /// Σ map output rate over trackers (MB/s) — `R_t` in §IV-A3.
    pub map_output_rate: f64,
    /// Σ shuffle rate over trackers (MB/s) — `R_s`.
    pub shuffle_rate: f64,
    pub total_maps: usize,
    pub pending_maps: usize,
    pub running_maps: usize,
    pub completed_maps: usize,
    pub total_reduces: usize,
    pub pending_reduces: usize,
    /// Pending reduces whose job has passed its reduce slow-start (i.e.
    /// the scheduler would launch them now, given a free slot). What a
    /// container-based RM sees as live reduce demand.
    pub eligible_pending_reduces: usize,
    pub running_reduces: usize,
    /// Running reduces currently in their **shuffle** phase — the `n` of
    /// the paper's `R_m = (n/N)·R_t`: only these consume map output, so
    /// only their partitions' production rate is comparable to `R_s`.
    /// (A reduce that has crossed into sort/reduce no longer fetches.)
    pub shuffling_reduces: usize,
    pub completed_reduces: usize,
    /// Σ per-tracker map slot targets.
    pub map_slot_target: usize,
    /// Σ per-tracker reduce slot targets.
    pub reduce_slot_target: usize,
    /// Observed total map-output volume so far (MB).
    pub map_output_mb: f64,
    /// Estimated total shuffle volume of all active jobs (MB), from the
    /// specs' expected selectivity — used by the tail-stretch guard.
    pub est_shuffle_total_mb: f64,
    /// Estimated shuffle volume per reduce task (MB).
    pub est_shuffle_per_reduce_mb: f64,
}

impl ClusterStats {
    /// Fraction of map tasks finished, in `[0, 1]`; 1.0 when there are no
    /// maps (nothing to wait for).
    pub fn map_completion_fraction(&self) -> f64 {
        if self.total_maps == 0 {
            1.0
        } else {
            self.completed_maps as f64 / self.total_maps as f64
        }
    }

    /// `R_m` of §IV-A3: the map output rate of the partitions belonging to
    /// the *shuffling* reduce tasks, estimated under uniform partitioning:
    /// `R_m = (n / N) · R_t`.
    pub fn partition_output_rate(&self) -> f64 {
        if self.total_reduces == 0 {
            return 0.0;
        }
        (self.shuffling_reduces as f64 / self.total_reduces as f64) * self.map_output_rate
    }

    /// The balance factor `f = R_s / R_m`. `None` when `R_m` is ~zero (no
    /// map output flowing — comparison meaningless, e.g. before slow start
    /// or after the barrier).
    pub fn balance_factor(&self) -> Option<f64> {
        let rm = self.partition_output_rate();
        if rm <= 1e-9 {
            None
        } else {
            Some(self.shuffle_rate / rm)
        }
    }

    /// True when every map task of every active job has finished (the tail
    /// stretch).
    pub fn all_maps_done(&self) -> bool {
        self.completed_maps == self.total_maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meters_harvest_rates() {
        let mut m = TrackerMeters::new(SimTime::ZERO);
        m.map_input.record(30.0);
        m.map_output.record(15.0);
        m.shuffle.record(6.0);
        let hb = m.harvest(SimTime::from_secs(3));
        assert!((hb.map_input_rate - 10.0).abs() < 1e-12);
        assert!((hb.map_output_rate - 5.0).abs() < 1e-12);
        assert!((hb.shuffle_rate - 2.0).abs() < 1e-12);
    }

    fn stats() -> ClusterStats {
        ClusterStats {
            total_maps: 100,
            completed_maps: 25,
            total_reduces: 30,
            running_reduces: 15,
            shuffling_reduces: 15,
            map_output_rate: 80.0,
            shuffle_rate: 30.0,
            ..ClusterStats::default()
        }
    }

    #[test]
    fn completion_fraction() {
        assert!((stats().map_completion_fraction() - 0.25).abs() < 1e-12);
        let empty = ClusterStats::default();
        assert_eq!(empty.map_completion_fraction(), 1.0);
    }

    #[test]
    fn partition_output_rate_follows_equation() {
        // R_m = (n/N) * R_t = (15/30) * 80 = 40
        assert!((stats().partition_output_rate() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn balance_factor_is_rs_over_rm() {
        // f = 30 / 40
        let f = stats().balance_factor().unwrap();
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn balance_factor_none_without_map_output() {
        let mut s = stats();
        s.map_output_rate = 0.0;
        assert!(s.balance_factor().is_none());
        s.map_output_rate = 80.0;
        s.shuffling_reduces = 0;
        assert!(
            s.balance_factor().is_none(),
            "reduces that finished shuffling are not consumers"
        );
    }

    #[test]
    fn all_maps_done_flag() {
        let mut s = stats();
        assert!(!s.all_maps_done());
        s.completed_maps = 100;
        assert!(s.all_maps_done());
    }
}

//! Task-lifecycle event log.
//!
//! When enabled ([`crate::EngineConfig::record_events`]), the engine
//! appends one [`Event`] per lifecycle transition — task launches and
//! completions, barrier crossings, slot-target changes, job completions —
//! giving downstream users the same debugging surface Hadoop's job history
//! files provide. Events are strictly time-ordered; invariants such as
//! "every completion has a launch" are enforced by the integration tests.

use crate::job::JobId;
use crate::task::{MapTaskId, ReduceTaskId};
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::time::SimTime;

/// One lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    MapLaunched {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
        /// `true` when the input block had no replica on `node`.
        remote_read: bool,
    },
    MapCompleted {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
        output_mb: f64,
    },
    /// A speculative attempt lost the race and was killed — or a node
    /// crash killed an in-flight attempt.
    MapKilled {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
    },
    /// An injected task failure terminated the attempt; the block is
    /// requeued and retried.
    MapFailed {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
    },
    /// The attempt finished after its sibling had already delivered the
    /// block; its output is thrown away.
    MapDiscarded {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
    },
    /// A node crash killed an in-flight reduce attempt; its partition is
    /// requeued.
    ReduceKilled {
        at: SimTime,
        id: ReduceTaskId,
        node: NodeId,
    },
    ReduceLaunched {
        at: SimTime,
        id: ReduceTaskId,
        node: NodeId,
    },
    /// The reduce finished fetching its whole partition (necessarily at or
    /// after the job's barrier).
    ShuffleCompleted {
        at: SimTime,
        id: ReduceTaskId,
        partition_mb: f64,
    },
    ReduceCompleted {
        at: SimTime,
        id: ReduceTaskId,
        node: NodeId,
    },
    /// The job's last map finished (the synchronisation barrier).
    BarrierCrossed {
        at: SimTime,
        job: JobId,
    },
    /// A tracker accepted new slot targets from the job tracker.
    SlotTargetsChanged {
        at: SimTime,
        node: NodeId,
        map_slots: usize,
        reduce_slots: usize,
    },
    JobFinished {
        at: SimTime,
        job: JobId,
    },
    /// A node went down: every running attempt, stored map output and
    /// block replica on it is gone.
    NodeCrashed {
        at: SimTime,
        node: NodeId,
    },
    /// A crashed node came back up, empty.
    NodeRejoined {
        at: SimTime,
        node: NodeId,
    },
    /// A completed map's output died with its node while reducers still
    /// needed it; the map is requeued for re-execution.
    MapOutputLost {
        at: SimTime,
        id: MapTaskId,
        node: NodeId,
    },
    /// The job tracker stopped assigning work to a tracker after repeated
    /// attempt failures.
    TrackerBlacklisted {
        at: SimTime,
        node: NodeId,
    },
}

impl Event {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match *self {
            Event::MapLaunched { at, .. }
            | Event::MapCompleted { at, .. }
            | Event::MapKilled { at, .. }
            | Event::MapFailed { at, .. }
            | Event::MapDiscarded { at, .. }
            | Event::ReduceKilled { at, .. }
            | Event::ReduceLaunched { at, .. }
            | Event::ShuffleCompleted { at, .. }
            | Event::ReduceCompleted { at, .. }
            | Event::BarrierCrossed { at, .. }
            | Event::SlotTargetsChanged { at, .. }
            | Event::JobFinished { at, .. }
            | Event::NodeCrashed { at, .. }
            | Event::NodeRejoined { at, .. }
            | Event::MapOutputLost { at, .. }
            | Event::TrackerBlacklisted { at, .. } => at,
        }
    }
}

/// An append-only, time-ordered event log. Disabled logs drop events with
/// no allocation cost. An optional telemetry sink mirrors every event as a
/// trace instant, independent of whether the log itself retains it — the
/// sink is observational and never serialized with the log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
    #[serde(skip)]
    sink: telemetry::Telemetry,
}

impl EventLog {
    pub fn new(enabled: bool) -> EventLog {
        EventLog {
            enabled,
            events: Vec::new(),
            sink: telemetry::Telemetry::disabled(),
        }
    }

    /// Mirror all subsequent events to `sink` as `lifecycle` instants.
    pub fn set_sink(&mut self, sink: telemetry::Telemetry) {
        self.sink = sink;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled; still mirrored to the sink).
    /// Time order is enforced in debug builds.
    pub fn push(&mut self, e: Event) {
        self.mirror(&e);
        if !self.enabled {
            return;
        }
        debug_assert!(
            self.events.last().is_none_or(|last| last.at() <= e.at()),
            "events must be appended in time order"
        );
        self.events.push(e);
    }

    fn mirror(&self, e: &Event) {
        if !self.sink.is_enabled() {
            return;
        }
        use telemetry::ArgValue as V;
        let sim_ms = e.at().as_millis();
        let (name, args): (&'static str, Vec<(&'static str, V)>) = match *e {
            Event::MapLaunched {
                id,
                node,
                remote_read,
                ..
            } => (
                "map_launched",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                    ("remote_read", V::Bool(remote_read)),
                ],
            ),
            Event::MapCompleted {
                id,
                node,
                output_mb,
                ..
            } => (
                "map_completed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                    ("output_mb", V::F64(output_mb)),
                ],
            ),
            Event::MapKilled { id, node, .. } => (
                "map_killed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::MapFailed { id, node, .. } => (
                "map_failed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::MapDiscarded { id, node, .. } => (
                "map_discarded",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::ReduceLaunched { id, node, .. } => (
                "reduce_launched",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("partition", V::U64(id.partition as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::ShuffleCompleted {
                id, partition_mb, ..
            } => (
                "shuffle_completed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("partition", V::U64(id.partition as u64)),
                    ("partition_mb", V::F64(partition_mb)),
                ],
            ),
            Event::ReduceCompleted { id, node, .. } => (
                "reduce_completed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("partition", V::U64(id.partition as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::BarrierCrossed { job, .. } => {
                ("barrier_crossed", vec![("job", V::U64(job.0 as u64))])
            }
            Event::SlotTargetsChanged {
                node,
                map_slots,
                reduce_slots,
                ..
            } => (
                "slot_targets_changed",
                vec![
                    ("node", V::U64(node.0 as u64)),
                    ("map_slots", V::U64(map_slots as u64)),
                    ("reduce_slots", V::U64(reduce_slots as u64)),
                ],
            ),
            Event::JobFinished { job, .. } => ("job_finished", vec![("job", V::U64(job.0 as u64))]),
            Event::ReduceKilled { id, node, .. } => (
                "reduce_killed",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("partition", V::U64(id.partition as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::NodeCrashed { node, .. } => {
                ("node_crashed", vec![("node", V::U64(node.0 as u64))])
            }
            Event::NodeRejoined { node, .. } => {
                ("node_rejoined", vec![("node", V::U64(node.0 as u64))])
            }
            Event::MapOutputLost { id, node, .. } => (
                "map_output_lost",
                vec![
                    ("job", V::U64(id.job.0 as u64)),
                    ("index", V::U64(id.index as u64)),
                    ("node", V::U64(node.0 as u64)),
                ],
            ),
            Event::TrackerBlacklisted { node, .. } => {
                ("tracker_blacklisted", vec![("node", V::U64(node.0 as u64))])
            }
        };
        self.sink.instant("lifecycle", name, sim_ms, &args);
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one job, in order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| match e {
            Event::MapLaunched { id, .. }
            | Event::MapCompleted { id, .. }
            | Event::MapKilled { id, .. }
            | Event::MapFailed { id, .. }
            | Event::MapDiscarded { id, .. }
            | Event::MapOutputLost { id, .. } => id.job == job,
            Event::ReduceLaunched { id, .. }
            | Event::ShuffleCompleted { id, .. }
            | Event::ReduceCompleted { id, .. }
            | Event::ReduceKilled { id, .. } => id.job == job,
            Event::BarrierCrossed { job: j, .. } | Event::JobFinished { job: j, .. } => *j == job,
            Event::SlotTargetsChanged { .. }
            | Event::NodeCrashed { .. }
            | Event::NodeRejoined { .. }
            | Event::TrackerBlacklisted { .. } => false,
        })
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(job: usize, index: usize) -> MapTaskId {
        MapTaskId {
            job: JobId(job),
            index,
        }
    }

    #[test]
    fn disabled_log_drops_everything() {
        let mut log = EventLog::new(false);
        log.push(Event::BarrierCrossed {
            at: SimTime::ZERO,
            job: JobId(0),
        });
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn enabled_log_appends_in_order() {
        let mut log = EventLog::new(true);
        log.push(Event::MapLaunched {
            at: SimTime::from_secs(1),
            id: mid(0, 0),
            node: NodeId(0),
            remote_read: false,
        });
        log.push(Event::MapCompleted {
            at: SimTime::from_secs(5),
            id: mid(0, 0),
            node: NodeId(0),
            output_mb: 12.0,
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].at(), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "time order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut log = EventLog::new(true);
        log.push(Event::BarrierCrossed {
            at: SimTime::from_secs(5),
            job: JobId(0),
        });
        log.push(Event::BarrierCrossed {
            at: SimTime::from_secs(1),
            job: JobId(0),
        });
    }

    #[test]
    fn sink_mirrors_even_when_log_disabled() {
        let sink = telemetry::Telemetry::with_capacity(4, 4);
        let mut log = EventLog::new(false);
        log.set_sink(sink.clone());
        log.push(Event::BarrierCrossed {
            at: SimTime::from_secs(2),
            job: JobId(3),
        });
        assert!(log.is_empty(), "disabled log retains nothing");
        assert_eq!(sink.instant_count(), 1, "but the sink saw the event");
        let json = sink.chrome_trace().unwrap();
        assert!(json.contains("barrier_crossed"));
    }

    #[test]
    fn per_job_filtering() {
        let mut log = EventLog::new(true);
        log.push(Event::MapLaunched {
            at: SimTime::ZERO,
            id: mid(0, 0),
            node: NodeId(0),
            remote_read: false,
        });
        log.push(Event::MapLaunched {
            at: SimTime::ZERO,
            id: mid(1, 0),
            node: NodeId(1),
            remote_read: true,
        });
        log.push(Event::SlotTargetsChanged {
            at: SimTime::ZERO,
            node: NodeId(0),
            map_slots: 4,
            reduce_slots: 2,
        });
        assert_eq!(log.for_job(JobId(0)).count(), 1);
        assert_eq!(log.for_job(JobId(1)).count(), 1);
        assert_eq!(
            log.count(|e| matches!(e, Event::SlotTargetsChanged { .. })),
            1
        );
    }
}

//! Job specifications and resource profiles.
//!
//! A [`JobProfile`] is the *resource signature* of a MapReduce program —
//! everything the simulator needs to know about what one map or reduce task
//! of this job consumes. The PUMA benchmark catalog in the `workloads`
//! crate is a set of these profiles; synthetic profiles for tests live
//! here.

use serde::{Deserialize, Serialize};
use simgrid::node::TaskDemand;
use simgrid::time::SimTime;

/// Identifier of a job within one engine run (dense, submission order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct JobId(pub usize);

/// Resource signature of one MapReduce program.
///
/// Rates are *nominal, uncontended* values; the node and fabric models scale
/// them down under contention. The ratio `map_selectivity` (map output MB
/// per input MB) is the single most important classifier: it decides whether
/// a job is map-heavy (tiny shuffle; Grep ≈ 0.001) or reduce-heavy (shuffle
/// ≈ input; Terasort = 1.0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobProfile {
    /// Human-readable name (benchmark name for PUMA jobs).
    pub name: String,
    /// Input MB one map task consumes per second at full speed.
    pub map_rate: f64,
    /// CPU demand of one running map task (cores' worth).
    pub map_cpu: f64,
    /// Runnable threads per map task (JVM worker + service threads).
    pub map_threads: u32,
    /// Resident set of one map task (MB).
    pub map_mem: f64,
    /// Map output MB produced per input MB (includes combiner effect).
    pub map_selectivity: f64,
    /// Extra map-side work (sort/spill) per MB of map *output*, expressed
    /// as equivalent input-MB of work.
    pub spill_weight: f64,
    /// Shuffle-partition MB one reduce task merges/sorts per second at full
    /// speed (the sort phase after the barrier).
    pub sort_rate: f64,
    /// Shuffle MB one reduce task reduces per second at full speed (the
    /// final reduce phase).
    pub reduce_rate: f64,
    /// CPU demand of one reduce task during sort/reduce (cores' worth).
    pub reduce_cpu: f64,
    /// Runnable threads per reduce task outside the shuffle phase.
    pub reduce_threads: u32,
    /// Resident set of one reduce task (MB; sort buffers dominate).
    pub reduce_mem: f64,
    /// Final output MB per shuffled MB.
    pub reduce_selectivity: f64,
    /// Parallel fetch threads per reduce task during shuffle
    /// (`mapred.reduce.parallel.copies`, Hadoop default 5).
    pub shuffle_fetchers: u32,
    /// CPU demand of one reduce task while shuffling (merge threads).
    pub shuffle_cpu: f64,
    /// Maximum MB/s one reduce task can ingest during shuffle at full CPU
    /// allocation (its merge threads) *while maps are still running*: the
    /// map-output servers compete with map tasks for CPU and disk on every
    /// source node, so the in-flight shuffle rate `T_r1` is well below
    /// line rate.
    pub shuffle_merge_rate: f64,
    /// Multiplier on the ingest cap once the job's barrier is crossed.
    /// §III-B1 of the paper states exactly this: after the maps finish
    /// "there will not be any resource sharing between the map tasks and
    /// the reduce tasks", so the post-barrier shuffle rate `T_r2` is a
    /// higher constant.
    pub shuffle_barrier_boost: f64,
}

impl JobProfile {
    /// Demand of one running map task.
    pub fn map_demand(&self) -> TaskDemand {
        TaskDemand {
            cpu_cores: self.map_cpu,
            threads: self.map_threads,
            mem_mb: self.map_mem,
            // At full speed a map streams `map_rate` MB/s off disk and
            // writes its output (selectivity-scaled) back for the spill.
            disk_read: self.map_rate,
            disk_write: self.map_rate * self.map_selectivity,
        }
    }

    /// Demand of one reduce task during its shuffle phase.
    pub fn shuffle_demand(&self) -> TaskDemand {
        TaskDemand {
            cpu_cores: self.shuffle_cpu,
            threads: self.shuffle_fetchers,
            mem_mb: self.reduce_mem * 0.6,
            disk_read: 0.0,
            // fetched data is spilled to disk as it lands; modest steady
            // write pressure
            disk_write: 20.0,
        }
    }

    /// Demand of one reduce task during sort or reduce.
    pub fn reduce_demand(&self) -> TaskDemand {
        TaskDemand {
            cpu_cores: self.reduce_cpu,
            threads: self.reduce_threads,
            mem_mb: self.reduce_mem,
            disk_read: self.sort_rate,
            disk_write: self.reduce_rate * self.reduce_selectivity,
        }
    }

    /// A map-heavy synthetic profile (Grep-like): CPU-light maps, tiny
    /// shuffle. Thrashing knee well above the default 3 map slots.
    pub fn synthetic_map_heavy() -> JobProfile {
        JobProfile {
            name: "synthetic-map-heavy".into(),
            map_rate: 12.0,
            map_cpu: 1.8,
            map_threads: 2,
            map_mem: 1100.0,
            map_selectivity: 0.02,
            spill_weight: 0.3,
            sort_rate: 40.0,
            reduce_rate: 30.0,
            reduce_cpu: 2.0,
            reduce_threads: 2,
            reduce_mem: 2000.0,
            reduce_selectivity: 1.0,
            shuffle_fetchers: 5,
            shuffle_cpu: 0.4,
            shuffle_merge_rate: 70.0,
            shuffle_barrier_boost: 1.5,
        }
        .validated()
    }

    /// A reduce-heavy synthetic profile (Terasort-like): shuffle equals
    /// input, heavy sort buffers. Thrashing knee near the default 3 slots.
    pub fn synthetic_reduce_heavy() -> JobProfile {
        JobProfile {
            name: "synthetic-reduce-heavy".into(),
            map_rate: 14.0,
            map_cpu: 4.2,
            map_threads: 4,
            map_mem: 2800.0,
            map_selectivity: 1.0,
            spill_weight: 0.5,
            sort_rate: 28.0,
            reduce_rate: 22.0,
            reduce_cpu: 3.0,
            reduce_threads: 3,
            reduce_mem: 3400.0,
            reduce_selectivity: 1.0,
            shuffle_fetchers: 5,
            shuffle_cpu: 0.6,
            shuffle_merge_rate: 12.0,
            shuffle_barrier_boost: 3.0,
        }
        .validated()
    }

    /// Panics if the profile is internally inconsistent. Builders call this
    /// so a bad catalog entry fails fast, at construction.
    pub fn validated(self) -> JobProfile {
        assert!(
            self.map_rate > 0.0,
            "{}: map_rate must be positive",
            self.name
        );
        assert!(
            self.sort_rate > 0.0,
            "{}: sort_rate must be positive",
            self.name
        );
        assert!(
            self.reduce_rate > 0.0,
            "{}: reduce_rate must be positive",
            self.name
        );
        assert!(
            self.map_selectivity >= 0.0,
            "{}: negative selectivity",
            self.name
        );
        assert!(
            self.shuffle_fetchers >= 1,
            "{}: need >=1 fetcher",
            self.name
        );
        assert!(
            self.shuffle_merge_rate > 0.0,
            "{}: shuffle_merge_rate must be positive",
            self.name
        );
        assert!(
            self.shuffle_barrier_boost >= 1.0,
            "{}: post-barrier shuffle cannot be slower than in-flight",
            self.name
        );
        self
    }
}

/// Fluent constructor for custom [`JobProfile`]s: starts from a neutral
/// medium-weight profile and validates on [`JobProfileBuilder::build`].
///
/// ```
/// use mapreduce::job::JobProfile;
///
/// let log_scan = JobProfile::builder("log-scan")
///     .map_rate(8.0)
///     .map_cpu(1.5)
///     .map_selectivity(0.01)
///     .build();
/// assert!(log_scan.map_selectivity < 0.05, "map-heavy");
/// ```
#[derive(Debug, Clone)]
pub struct JobProfileBuilder {
    profile: JobProfile,
}

impl JobProfile {
    /// Start building a custom profile from neutral medium-class defaults.
    pub fn builder(name: &str) -> JobProfileBuilder {
        JobProfileBuilder {
            profile: JobProfile {
                name: name.to_string(),
                map_rate: 5.0,
                map_cpu: 2.5,
                map_threads: 3,
                map_mem: 1800.0,
                map_selectivity: 0.5,
                spill_weight: 0.4,
                sort_rate: 30.0,
                reduce_rate: 24.0,
                reduce_cpu: 2.5,
                reduce_threads: 3,
                reduce_mem: 2400.0,
                reduce_selectivity: 1.0,
                shuffle_fetchers: 5,
                shuffle_cpu: 0.6,
                shuffle_merge_rate: 30.0,
                shuffle_barrier_boost: 2.5,
            },
        }
    }
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        impl JobProfileBuilder {
            $(
                $(#[$doc])*
                pub fn $field(mut self, v: $ty) -> Self {
                    self.profile.$field = v;
                    self
                }
            )*

            /// Validate and return the profile; panics on inconsistent
            /// settings (same checks as [`JobProfile::validated`]).
            pub fn build(self) -> JobProfile {
                self.profile.validated()
            }
        }
    };
}

builder_setters! {
    /// Input MB one map task consumes per second at full speed.
    map_rate: f64,
    /// CPU demand of one map task (cores' worth).
    map_cpu: f64,
    /// Runnable threads per map task.
    map_threads: u32,
    /// Resident set of one map task (MB).
    map_mem: f64,
    /// Map output MB per input MB.
    map_selectivity: f64,
    /// Extra map-side sort/spill work per output MB.
    spill_weight: f64,
    /// Post-barrier sort rate per reduce task (MB/s).
    sort_rate: f64,
    /// Final reduce rate per reduce task (MB/s).
    reduce_rate: f64,
    /// CPU demand of one reduce task during sort/reduce.
    reduce_cpu: f64,
    /// Runnable threads per reduce task outside shuffle.
    reduce_threads: u32,
    /// Resident set of one reduce task (MB).
    reduce_mem: f64,
    /// Final output MB per shuffled MB.
    reduce_selectivity: f64,
    /// Parallel fetch threads per reduce task during shuffle.
    shuffle_fetchers: u32,
    /// CPU demand of one reduce task while shuffling.
    shuffle_cpu: f64,
    /// In-flight per-reducer shuffle ingest cap (MB/s).
    shuffle_merge_rate: f64,
    /// Post-barrier multiplier on the ingest cap (T_r2 / T_r1).
    shuffle_barrier_boost: f64,
}

/// One job to run: a profile, an input size, a reduce count and a submit
/// time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    pub id: JobId,
    pub profile: JobProfile,
    /// Total input size (MB); split into 128 MB blocks ⇒ map tasks.
    pub input_mb: f64,
    /// Number of reduce tasks (the paper fixes 30 for the 16-node testbed).
    pub num_reduces: usize,
    /// Simulated submission instant.
    pub submit_at: SimTime,
}

impl JobSpec {
    pub fn new(
        id: usize,
        profile: JobProfile,
        input_mb: f64,
        num_reduces: usize,
        submit_at: SimTime,
    ) -> JobSpec {
        assert!(input_mb > 0.0, "job input must be positive");
        assert!(num_reduces > 0, "need at least one reduce task");
        JobSpec {
            id: JobId(id),
            profile,
            input_mb,
            num_reduces,
            submit_at,
        }
    }

    /// Expected total map-output (= shuffle) volume in MB.
    pub fn expected_shuffle_mb(&self) -> f64 {
        self.input_mb * self.profile.map_selectivity
    }

    /// Expected shuffle volume per reduce task in MB.
    pub fn expected_shuffle_per_reduce(&self) -> f64 {
        self.expected_shuffle_mb() / self.num_reduces as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_profiles_are_valid() {
        let m = JobProfile::synthetic_map_heavy();
        let r = JobProfile::synthetic_reduce_heavy();
        assert!(m.map_selectivity < 0.1, "map-heavy jobs shuffle little");
        assert!(r.map_selectivity >= 1.0 - 1e-9);
        assert!(m.map_cpu < r.map_cpu, "map-heavy tasks are lighter");
    }

    #[test]
    fn demands_reflect_profile() {
        let p = JobProfile::synthetic_reduce_heavy();
        let d = p.map_demand();
        assert_eq!(d.cpu_cores, p.map_cpu);
        assert_eq!(d.disk_read, p.map_rate);
        assert!((d.disk_write - p.map_rate * p.map_selectivity).abs() < 1e-12);
        let s = p.shuffle_demand();
        assert_eq!(s.threads, p.shuffle_fetchers);
        let rd = p.reduce_demand();
        assert_eq!(rd.mem_mb, p.reduce_mem);
    }

    #[test]
    fn job_spec_shuffle_estimates() {
        let j = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            3000.0,
            30,
            SimTime::ZERO,
        );
        assert!((j.expected_shuffle_mb() - 3000.0).abs() < 1e-9);
        assert!((j.expected_shuffle_per_reduce() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "input must be positive")]
    fn zero_input_rejected() {
        let _ = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 0.0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one reduce")]
    fn zero_reduces_rejected() {
        let _ = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 10.0, 0, SimTime::ZERO);
    }

    #[test]
    fn builder_round_trip() {
        let p = JobProfile::builder("custom")
            .map_rate(9.0)
            .map_cpu(1.2)
            .map_selectivity(0.05)
            .shuffle_merge_rate(50.0)
            .build();
        assert_eq!(p.name, "custom");
        assert_eq!(p.map_rate, 9.0);
        assert_eq!(p.map_cpu, 1.2);
        assert_eq!(p.shuffle_merge_rate, 50.0);
        // untouched fields keep defaults
        assert_eq!(p.shuffle_fetchers, 5);
    }

    #[test]
    #[should_panic(expected = "sort_rate")]
    fn builder_validates() {
        let _ = JobProfile::builder("bad").sort_rate(0.0).build();
    }

    #[test]
    #[should_panic(expected = "map_rate")]
    fn invalid_profile_rejected() {
        let mut p = JobProfile::synthetic_map_heavy();
        p.map_rate = 0.0;
        let _ = p.validated();
    }
}

//! Run results: the measurements every figure is built from.

use crate::counters::CounterLedger;
use crate::events::EventLog;
use crate::job::JobId;
use crate::policy::PolicyDecisionRecord;
use serde::{Deserialize, Serialize};
use simgrid::metrics::{Summary, TimeSeries};
use simgrid::time::{SimDuration, SimTime};
use simgrid::usage::NodeUtilization;

/// Timing and volume record of one completed job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobReport {
    pub job: JobId,
    pub name: String,
    pub submit_at: SimTime,
    /// First task launch.
    pub started_at: SimTime,
    /// Barrier: last map finished ("map time" in the paper's figures ends
    /// here — the stretch where maps run in parallel with shuffles).
    pub maps_done_at: SimTime,
    pub finished_at: SimTime,
    pub input_mb: f64,
    /// Actual total map-output (= shuffle) volume (MB).
    pub shuffle_mb: f64,
    pub num_maps: usize,
    pub num_reduces: usize,
    /// Progress percentage over time (0–200).
    pub progress: TimeSeries,
    /// Distribution of completed map-task durations (s).
    pub map_task_durations: Option<Summary>,
    /// Distribution of completed reduce-task durations (s).
    pub reduce_task_durations: Option<Summary>,
    /// Fraction of launched map attempts that ran data-local, derived from
    /// the `DATA_LOCAL_MAPS` / `TOTAL_LAUNCHED_MAPS` counters.
    pub local_map_fraction: f64,
    /// Hadoop-style job counters accumulated by the engine's phase code.
    #[serde(default)]
    pub counters: CounterLedger,
}

impl JobReport {
    /// The paper's "map time": start → barrier.
    pub fn map_time(&self) -> SimDuration {
        self.maps_done_at - self.started_at
    }

    /// The paper's "reduce time": barrier → job end.
    pub fn reduce_time(&self) -> SimDuration {
        self.finished_at - self.maps_done_at
    }

    /// start → end.
    pub fn total_time(&self) -> SimDuration {
        self.finished_at - self.started_at
    }

    /// submit → end (includes queueing; used for multi-job means).
    pub fn execution_time(&self) -> SimDuration {
        self.finished_at - self.submit_at
    }

    /// Job throughput in MB/s of input processed — the metric of Fig. 6.
    pub fn throughput(&self) -> f64 {
        let t = self.total_time().as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.input_mb / t
        }
    }
}

/// Result of one engine run (one or more jobs under one policy).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub policy: String,
    pub jobs: Vec<JobReport>,
    /// Cluster-wide Σ map-slot targets over time.
    pub map_slot_series: TimeSeries,
    /// Cluster-wide Σ reduce-slot targets over time.
    pub reduce_slot_series: TimeSeries,
    /// Total slot-change directives applied across the run.
    pub slot_changes: u64,
    /// Task-lifecycle events (empty unless
    /// [`crate::EngineConfig::record_events`] was set).
    pub events: EventLog,
    /// Speculative map attempts launched (0 unless
    /// [`crate::EngineConfig::speculative_maps`] was set).
    pub speculative_attempts: u64,
    /// Speculative attempts that finished before the original.
    pub speculative_wins: u64,
    /// Map attempts lost to injected failures (0 unless
    /// [`crate::EngineConfig::map_failure_rate`] was set).
    pub map_failures: u64,
    /// Mean fraction of the cluster's CPU capacity actually granted to
    /// tasks while jobs were active — the "full utilisation of the CPU"
    /// the paper's introduction sets as the goal.
    pub cpu_utilisation: f64,
    /// Total MB moved over the fabric (shuffle fetches + remote reads).
    pub network_mb: f64,
    /// Simulation steps executed by the engine for this run. Under fixed
    /// stepping every step is one tick; under adaptive stepping a step is
    /// one event-horizon advance, so steps / simulated seconds measures
    /// how much work the variable-step core avoided.
    #[serde(default)]
    pub steps: u64,
    /// Whole-node crashes injected by the
    /// [`crate::EngineConfig::fault_plan`].
    #[serde(default)]
    pub node_crashes: u64,
    /// In-flight attempts (map + reduce) killed by node crashes — both
    /// attempts running *on* the dead node and remote readers streaming
    /// input *from* it.
    #[serde(default)]
    pub crash_task_kills: u64,
    /// Completed map tasks re-executed because their output died with a
    /// crashed node while reducers still needed it.
    #[serde(default)]
    pub lost_map_outputs: u64,
    /// Trackers blacklisted after repeated attempt failures.
    #[serde(default)]
    pub trackers_blacklisted: u64,
    /// Total map input MB consumed across *all* attempts, including killed
    /// and re-executed ones (for a fault-free run this equals the sum of
    /// job inputs plus speculative double-processing; crashes only ever
    /// add to it — the work-conservation invariant).
    #[serde(default)]
    pub map_input_processed_mb: f64,
    /// Cluster-wide counter ledger: the merge of every job's
    /// [`JobReport::counters`].
    #[serde(default)]
    pub counters: CounterLedger,
    /// Per-node CPU/disk/NIC utilization and slot-occupancy timelines,
    /// time-weighted over sample windows and thinned to a bounded size.
    #[serde(default)]
    pub node_utilization: Vec<NodeUtilization>,
    /// The policy's decision records (empty for static policies), so each
    /// slot reassignment in the run is attributable to the signals that
    /// drove it.
    #[serde(default)]
    pub decisions: Vec<PolicyDecisionRecord>,
}

impl RunReport {
    /// Mean execution time over jobs (Fig. 8/9 left bars).
    pub fn mean_execution_time(&self) -> SimDuration {
        if self.jobs.is_empty() {
            return SimDuration::ZERO;
        }
        let total_ms: u64 = self
            .jobs
            .iter()
            .map(|j| j.execution_time().as_millis())
            .sum();
        SimDuration::from_millis(total_ms / self.jobs.len() as u64)
    }

    /// First submit → last finish (Fig. 8/9 right bars).
    pub fn makespan(&self) -> SimDuration {
        let first = self.jobs.iter().map(|j| j.submit_at).min();
        let last = self.jobs.iter().map(|j| j.finished_at).max();
        match (first, last) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// Report of a single-job run.
    pub fn single(&self) -> &JobReport {
        assert_eq!(self.jobs.len(), 1, "single() on a multi-job report");
        &self.jobs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(submit: u64, start: u64, barrier: u64, end: u64) -> JobReport {
        JobReport {
            job: JobId(0),
            name: "t".into(),
            submit_at: SimTime::from_secs(submit),
            started_at: SimTime::from_secs(start),
            maps_done_at: SimTime::from_secs(barrier),
            finished_at: SimTime::from_secs(end),
            input_mb: 1000.0,
            shuffle_mb: 500.0,
            num_maps: 8,
            num_reduces: 4,
            progress: TimeSeries::new(),
            map_task_durations: None,
            reduce_task_durations: None,
            local_map_fraction: 1.0,
            counters: CounterLedger::new(),
        }
    }

    fn run(policy: &str, jobs: Vec<JobReport>) -> RunReport {
        RunReport {
            policy: policy.into(),
            jobs,
            map_slot_series: TimeSeries::new(),
            reduce_slot_series: TimeSeries::new(),
            slot_changes: 0,
            events: EventLog::default(),
            speculative_attempts: 0,
            speculative_wins: 0,
            map_failures: 0,
            cpu_utilisation: 0.0,
            network_mb: 0.0,
            steps: 0,
            node_crashes: 0,
            crash_task_kills: 0,
            lost_map_outputs: 0,
            trackers_blacklisted: 0,
            map_input_processed_mb: 0.0,
            counters: CounterLedger::new(),
            node_utilization: Vec::new(),
            decisions: Vec::new(),
        }
    }

    #[test]
    fn job_times_partition_the_run() {
        let j = report(0, 1, 51, 101);
        assert_eq!(j.map_time().as_secs_f64(), 50.0);
        assert_eq!(j.reduce_time().as_secs_f64(), 50.0);
        assert_eq!(j.total_time().as_secs_f64(), 100.0);
        assert_eq!(j.execution_time().as_secs_f64(), 101.0);
        assert!((j.throughput() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn run_aggregates() {
        let run = run(
            "HadoopV1",
            vec![report(0, 0, 10, 100), report(5, 6, 20, 205)],
        );
        assert_eq!(run.mean_execution_time().as_secs_f64(), 150.0);
        assert_eq!(run.makespan().as_secs_f64(), 205.0);
    }

    #[test]
    fn empty_run_is_degenerate_not_panicky() {
        let run = run("x", vec![]);
        assert_eq!(run.mean_execution_time(), SimDuration::ZERO);
        assert_eq!(run.makespan(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "multi-job")]
    fn single_on_multijob_panics() {
        let run = run("x", vec![report(0, 0, 1, 2), report(0, 0, 1, 2)]);
        let _ = run.single();
    }

    #[test]
    fn new_observability_fields_default_on_old_reports() {
        // a pre-counter serialized report still deserializes
        let j = report(0, 1, 2, 3);
        let mut v = serde::Serialize::to_value(&j);
        if let serde::Value::Object(ref mut fields) = v {
            fields.retain(|(k, _)| k != "counters");
        }
        let back: JobReport = serde::Deserialize::deserialize(&v).unwrap();
        assert!(back.counters.is_zero());
    }
}

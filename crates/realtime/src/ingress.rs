//! Ingress: the MPSC command queue into the tick thread.
//!
//! Commands are *never* applied by the calling thread: they queue here and
//! the tick thread applies the whole backlog at the next tick boundary, in
//! arrival order, before advancing anyone. That single rule is what makes
//! the service deterministic — tenant state is touched by exactly one
//! thread, and a recorded `(tick, command)` script is a complete causal
//! history ([`crate::script::IngressScript`]).
//!
//! Every command carries a reply slot; senders block until their command
//! was applied (at most one tick interval plus queue drain), and the delay
//! between enqueue and apply is the **command-to-apply latency** the
//! serve bench reports the p99 of.

use serde::{Deserialize, Serialize};
use std::sync::mpsc::SyncSender;
use std::time::Instant;

/// Dense tenant index, assigned by `CreateTenant` in arrival order.
pub type TenantId = usize;

/// One ingress command. Everything is plain serializable data — the same
/// type is recorded into ingress scripts and replayed offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Boot a new tenant cluster: `workers` nodes, deterministic `seed`,
    /// driven by the policy of system label `system`. The cluster idles
    /// (sim clock frozen at 0) until its first `SubmitJob`.
    CreateTenant {
        name: String,
        workers: usize,
        seed: u64,
        system: String,
    },
    /// Submit one PUMA job against a live tenant: `bench` is a
    /// [`workloads::puma::Puma`] benchmark name ("grep", "terasort", …).
    /// The job enters the tenant's DFS and scheduler at the tenant's
    /// current sim instant.
    SubmitJob {
        tenant: TenantId,
        bench: String,
        input_mb: f64,
        num_reduces: usize,
    },
    /// Schedule a node crash `after_ms` of sim time (strictly positive)
    /// past the tenant's current sim instant; `downtime_ms` of `None`
    /// means the node never rejoins.
    InjectFault {
        tenant: TenantId,
        node: usize,
        after_ms: u64,
        downtime_ms: Option<u64>,
    },
    /// Freeze the tenant's sim clock (commands still apply while paused).
    Pause { tenant: TenantId },
    /// Unfreeze a paused tenant.
    Resume { tenant: TenantId },
    /// Write the tenant's current capsule under `dir` (binary format) via
    /// the checkpoint crate — the saved file resumes under every existing
    /// `reproduce resume`/`fingerprint` surface.
    Snapshot { tenant: TenantId, dir: String },
    /// Stop the tick thread after applying the backlog; the service
    /// summary (and recorded script) is returned to whoever joins.
    Shutdown,
}

impl Command {
    /// The tenant the command addresses, if any.
    pub fn tenant(&self) -> Option<TenantId> {
        match self {
            Command::CreateTenant { .. } | Command::Shutdown => None,
            Command::SubmitJob { tenant, .. }
            | Command::InjectFault { tenant, .. }
            | Command::Pause { tenant }
            | Command::Resume { tenant }
            | Command::Snapshot { tenant, .. } => Some(*tenant),
        }
    }
}

/// Successful application of one command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    TenantCreated { tenant: TenantId },
    JobSubmitted { tenant: TenantId, job: usize },
    FaultInjected { tenant: TenantId, at_ms: u64 },
    Paused { tenant: TenantId },
    Resumed { tenant: TenantId },
    Snapshotted { tenant: TenantId, path: String },
    ShuttingDown,
}

/// A command in flight: the payload plus its enqueue instant (for the
/// apply-latency measurement) and the sender's reply slot.
pub(crate) struct Envelope {
    pub cmd: Command,
    pub issued: Instant,
    pub reply: SyncSender<Result<Reply, String>>,
}

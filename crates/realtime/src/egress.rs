//! Egress: epoch-stamped per-tenant observation frames.
//!
//! One [`FrameCell`] per tenant holds the latest published
//! [`ObservationFrame`] behind an `Arc`. The contract is asymmetric by
//! design:
//!
//! - **The tick thread never blocks.** Publishing uses `try_lock`; if a
//!   reader holds the slot mid-clone, the publish is *skipped* (counted in
//!   [`ObservationPool::publish_skips`]) and retried next tick, bounding
//!   reader-induced staleness at one tick per contended publish without
//!   ever stalling the simulation.
//! - **Readers always see a complete frame.** A reader takes the slot lock
//!   only long enough to clone the `Arc`; the frame behind it is immutable
//!   and carries its own epoch and a checksum over its content, so any
//!   torn or partially-initialised observation is detectable (and the
//!   stress test proves none occur).
//!
//! Reclamation is epoch-style without unsafe code: the writer takes the
//! replaced `Arc` back, and once the last reader clone is gone
//! (`Arc::try_unwrap` succeeds) the frame body — with its job/node vector
//! capacity — returns to a [`FramePool`] owned by the tick thread, so
//! steady-state publishing allocates only the `Arc` control block.

use mapreduce::{fold_hash, EngineObservation};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One published per-tenant observation: everything a client needs to
/// render the tenant's live state and to verify a replay offline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObservationFrame {
    /// Tenant this frame observes.
    pub tenant: usize,
    /// Tenant display name.
    pub name: String,
    /// System label driving the tenant ("HadoopV1", "SMapReduce", …).
    pub system: String,
    /// Per-tenant publish sequence number, starting at 1 (0 marks the
    /// placeholder frame installed before the first publish).
    pub epoch: u64,
    /// Service tick the frame was published at.
    pub tick: u64,
    /// Tenant is paused (its sim clock is frozen).
    pub paused: bool,
    /// The tenant's run died with this engine error (it no longer
    /// advances; the frame is its last known state).
    pub error: Option<String>,
    /// Human-readable slot-target changes since the previous frame — the
    /// policy's recent decisions as seen from the trackers.
    pub recent_decisions: Vec<String>,
    /// The engine-state projection: sim clock, rolling state hash, job
    /// progress, per-node slot split and utilization.
    pub obs: EngineObservation,
    /// Checksum over the frame content (see
    /// [`ObservationFrame::compute_checksum`]); readers re-compute it to
    /// prove they observed a complete, untorn frame.
    pub checksum: u64,
}

impl ObservationFrame {
    fn placeholder(tenant: usize, name: &str, system: &str) -> ObservationFrame {
        let mut f = ObservationFrame {
            tenant,
            name: name.to_string(),
            system: system.to_string(),
            epoch: 0,
            tick: 0,
            paused: false,
            error: None,
            recent_decisions: Vec::new(),
            obs: EngineObservation {
                at_ms: 0,
                steps: 0,
                state_hash: 0,
                heartbeat_rounds: 0,
                slot_changes: 0,
                all_finished: false,
                jobs: Vec::new(),
                nodes: Vec::new(),
            },
            checksum: 0,
        };
        f.checksum = f.compute_checksum();
        f
    }

    /// Fold the frame's observable content into one u64. Covers every
    /// field a torn write could leave inconsistent: identity, epoch, the
    /// engine projection's scalars, and the shape and contents of the
    /// job/node vectors.
    pub fn compute_checksum(&self) -> u64 {
        let mut h = fold_hash(0x6672616d65_u64, self.tenant as u64); // "frame"
        h = fold_hash(h, self.epoch);
        h = fold_hash(h, self.tick);
        h = fold_hash(h, self.paused as u64);
        h = fold_hash(h, self.error.is_some() as u64);
        h = fold_hash(h, self.recent_decisions.len() as u64);
        h = fold_hash(h, self.obs.at_ms);
        h = fold_hash(h, self.obs.steps);
        h = fold_hash(h, self.obs.state_hash);
        h = fold_hash(h, self.obs.heartbeat_rounds);
        h = fold_hash(h, self.obs.slot_changes);
        h = fold_hash(h, self.obs.jobs.len() as u64);
        for j in &self.obs.jobs {
            h = fold_hash(h, j.id as u64 ^ ((j.completed_maps as u64) << 20));
            h = fold_hash(h, j.completed_reduces as u64 ^ ((j.finished as u64) << 63));
            h = fold_hash(h, j.progress_pct.to_bits());
        }
        h = fold_hash(h, self.obs.nodes.len() as u64);
        for n in &self.obs.nodes {
            h = fold_hash(
                h,
                (n.map_target as u64)
                    ^ ((n.reduce_target as u64) << 16)
                    ^ ((n.map_occupied as u64) << 32)
                    ^ ((n.reduce_occupied as u64) << 48)
                    ^ ((n.up as u64) << 63),
            );
        }
        h
    }

    /// The checksum field matches the recomputed content checksum.
    pub fn is_consistent(&self) -> bool {
        self.checksum == self.compute_checksum()
    }
}

/// Free pool of reclaimed frame bodies, owned by the tick thread. Not a
/// shared structure: reclamation happens on the publishing side only.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<ObservationFrame>,
    /// Frames whose buffers were reused from a reclaimed predecessor.
    pub reclaimed: u64,
    /// Frames built fresh (first publishes, or readers still held every
    /// previous frame).
    pub fresh: u64,
}

/// Bound on pooled bodies: enough for every tenant's previous frame in a
/// large service, small enough that an idle pool holds no real memory.
const FRAME_POOL_CAP: usize = 4096;

impl FramePool {
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// A frame body to fill: a reclaimed one (buffers retained, content
    /// cleared) when available, otherwise a fresh placeholder.
    pub fn take(&mut self) -> ObservationFrame {
        match self.free.pop() {
            Some(mut f) => {
                self.reclaimed += 1;
                f.name.clear();
                f.system.clear();
                f.error = None;
                f.recent_decisions.clear();
                f.obs.jobs.clear();
                f.obs.nodes.clear();
                f
            }
            None => {
                self.fresh += 1;
                ObservationFrame::placeholder(usize::MAX, "", "")
            }
        }
    }

    /// Return a reclaimed body to the pool.
    pub fn put(&mut self, frame: ObservationFrame) {
        if self.free.len() < FRAME_POOL_CAP {
            self.free.push(frame);
        }
    }
}

/// One tenant's double-buffered publish slot: the current frame behind a
/// mutex the writer only ever `try_lock`s, plus a lock-free epoch stamp
/// readers can poll without touching the slot at all.
#[derive(Debug)]
pub struct FrameCell {
    epoch: AtomicU64,
    slot: Mutex<Arc<ObservationFrame>>,
    skipped: AtomicU64,
}

impl FrameCell {
    fn new(tenant: usize, name: &str, system: &str) -> FrameCell {
        FrameCell {
            epoch: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(ObservationFrame::placeholder(
                tenant, name, system,
            ))),
            skipped: AtomicU64::new(0),
        }
    }

    /// Last published epoch (0 until the first publish lands).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes skipped because a reader held the slot at publish time.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Clone out the current frame. Readers may block briefly on *each
    /// other* here, never on the writer (whose critical section is one
    /// pointer swap, and who skips rather than waits).
    pub fn read(&self) -> Arc<ObservationFrame> {
        self.slot.lock().expect("frame slot poisoned").clone()
    }

    /// Writer side: install `frame`, reclaiming the replaced frame's body
    /// into `pool` if no reader still holds it. Returns `false` (and
    /// reclaims `frame` itself) when a reader held the slot — the tick
    /// thread moves on immediately and retries next tick.
    pub(crate) fn publish(&self, frame: Arc<ObservationFrame>, pool: &mut FramePool) -> bool {
        let epoch = frame.epoch;
        match self.slot.try_lock() {
            Ok(mut slot) => {
                let old = std::mem::replace(&mut *slot, frame);
                drop(slot);
                self.epoch.store(epoch, Ordering::Release);
                if let Ok(body) = Arc::try_unwrap(old) {
                    pool.put(body);
                }
                true
            }
            Err(_) => {
                self.skipped.fetch_add(1, Ordering::Relaxed);
                if let Ok(body) = Arc::try_unwrap(frame) {
                    pool.put(body);
                }
                false
            }
        }
    }
}

/// The service's reader-facing surface: one [`FrameCell`] per tenant,
/// indexed by tenant id. Registration happens only on the tick thread;
/// readers take the registry read-lock for a cell lookup and then operate
/// on the cell alone.
#[derive(Debug, Default)]
pub struct ObservationPool {
    cells: RwLock<Vec<Arc<FrameCell>>>,
}

impl ObservationPool {
    pub fn new() -> ObservationPool {
        ObservationPool::default()
    }

    /// Register tenant `id`'s cell (tick thread only; ids are dense).
    pub(crate) fn register(&self, id: usize, name: &str, system: &str) -> Arc<FrameCell> {
        let mut cells = self.cells.write().expect("observation registry poisoned");
        debug_assert_eq!(cells.len(), id, "tenant ids must register densely");
        let cell = Arc::new(FrameCell::new(id, name, system));
        cells.push(cell.clone());
        cell
    }

    /// The cell of tenant `id`, if registered.
    pub fn cell(&self, id: usize) -> Option<Arc<FrameCell>> {
        self.cells
            .read()
            .expect("observation registry poisoned")
            .get(id)
            .cloned()
    }

    /// Latest frame of tenant `id`, if registered.
    pub fn frame(&self, id: usize) -> Option<Arc<ObservationFrame>> {
        self.cell(id).map(|c| c.read())
    }

    /// Registered tenant count.
    pub fn len(&self) -> usize {
        self.cells
            .read()
            .expect("observation registry poisoned")
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total publishes skipped across all tenants because a reader held a
    /// slot — the price of the never-block-the-writer rule, bounded at
    /// one tick of staleness each.
    pub fn publish_skips(&self) -> u64 {
        self.cells
            .read()
            .expect("observation registry poisoned")
            .iter()
            .map(|c| c.skipped())
            .sum()
    }
}

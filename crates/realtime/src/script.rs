//! Recorded ingress scripts and their offline replay.
//!
//! A live run records every *successfully applied* command as a
//! `(tick, command)` pair, plus one [`TickHash`] per tenant for every tick
//! the tenant advanced or absorbed a command. Because commands only apply
//! at tick boundaries and the sim quantum is a fixed constant of the run,
//! that script is a complete causal history: [`IngressScript::replay`]
//! re-runs it single-threaded — no tick thread, no wall clock, no
//! channels — through the *same* [`crate::service::TenantCore`] logic the
//! live service used, and must land on the exact rolling state hashes the
//! live run published. A replay mismatch means nondeterminism leaked in
//! (wall time, thread scheduling, allocation order), and the determinism
//! test treats it as a hard failure.

use crate::ingress::Command;
use crate::service::TenantCore;
use mapreduce::EngineArena;
use serde::{Deserialize, Serialize};
use simgrid::time::SimDuration;
use std::path::Path;
use telemetry::Telemetry;

/// One command the live run applied, stamped with the tick that applied
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedCommand {
    pub tick: u64,
    pub cmd: Command,
}

/// One point of a tenant's rolling-hash trace: the tenant's sim clock and
/// state hash at the end of service tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickHash {
    pub tick: u64,
    pub at_ms: u64,
    pub hash: u64,
}

/// The recorded trace of one tenant across the live run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTrace {
    pub tenant: usize,
    /// Engine error that killed the tenant, if any (replay must reproduce
    /// it too).
    pub error: Option<String>,
    /// State hash at shutdown (0 if the tenant never booted or died).
    pub final_hash: u64,
    pub hashes: Vec<TickHash>,
}

/// A complete recorded run: enough to reproduce every tenant's trajectory
/// offline, and the recorded trajectories to verify against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngressScript {
    /// Fixed sim quantum (ms) every tick advanced ready tenants by.
    pub quantum_ms: u64,
    /// Total ticks the live run executed.
    pub ticks: u64,
    /// Per-tenant sim horizon the live service configured (ms).
    pub sim_horizon_ms: u64,
    /// Every applied command, in application order.
    pub commands: Vec<ScriptedCommand>,
    /// Recorded per-tenant hash traces.
    pub traces: Vec<TenantTrace>,
}

/// Result of replaying a script against its recorded traces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Every replayed trace matched its recording exactly.
    pub verified: bool,
    pub tenants: usize,
    /// Total hash points compared.
    pub points_checked: usize,
    /// Human-readable descriptions of every divergence.
    pub mismatches: Vec<String>,
}

impl IngressScript {
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())
    }

    pub fn load(path: &Path) -> Result<IngressScript, String> {
        let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        serde_json::from_str(&json).map_err(|e| e.to_string())
    }

    /// Re-run the script single-threaded and compare every tenant's
    /// rolling hash trace against the recording.
    ///
    /// The loop body is the live tick loop minus everything concurrent:
    /// apply this tick's commands in order, advance every ready tenant by
    /// the fixed quantum, record a hash for each tenant that advanced or
    /// absorbed a command. `Snapshot` replays as a pure no-op (it never
    /// mutates tenant state) and `Shutdown` needs no handling at all —
    /// the live loop completes the shutdown tick normally before
    /// stopping, so the recorded tick count already covers it.
    pub fn replay(&self) -> ReplayOutcome {
        let telem = Telemetry::disabled();
        let mut arena = EngineArena::new();
        let horizon = SimDuration::from_millis(self.sim_horizon_ms);
        let mut tenants: Vec<TenantCore> = Vec::new();
        let mut traces: Vec<Vec<TickHash>> = Vec::new();
        let mut mismatches: Vec<String> = Vec::new();
        let mut cursor = 0usize;

        for tick in 0..self.ticks {
            let mut touched: Vec<bool> = vec![false; tenants.len()];
            while cursor < self.commands.len() && self.commands[cursor].tick == tick {
                let cmd = &self.commands[cursor].cmd;
                cursor += 1;
                let applied = match cmd {
                    Command::CreateTenant {
                        name,
                        workers,
                        seed,
                        system,
                    } => {
                        tenants.push(TenantCore::new(
                            name.clone(),
                            system.clone(),
                            *workers,
                            *seed,
                            horizon,
                        ));
                        traces.push(Vec::new());
                        touched.push(true);
                        Ok(())
                    }
                    Command::SubmitJob {
                        tenant,
                        bench,
                        input_mb,
                        num_reduces,
                    } => replay_on(&mut tenants, &mut touched, *tenant, |t| {
                        t.submit_job(*tenant, bench, *input_mb, *num_reduces)
                            .map(|_| ())
                    }),
                    Command::InjectFault {
                        tenant,
                        node,
                        after_ms,
                        downtime_ms,
                    } => replay_on(&mut tenants, &mut touched, *tenant, |t| {
                        t.inject_fault(*tenant, *node, *after_ms, *downtime_ms)
                            .map(|_| ())
                    }),
                    Command::Pause { tenant } => {
                        replay_on(&mut tenants, &mut touched, *tenant, |t| {
                            t.paused = true;
                            Ok(())
                        })
                    }
                    Command::Resume { tenant } => {
                        replay_on(&mut tenants, &mut touched, *tenant, |t| {
                            t.paused = false;
                            Ok(())
                        })
                    }
                    // state no-op in replay: a live snapshot only reads
                    Command::Snapshot { tenant, .. } => {
                        replay_on(&mut tenants, &mut touched, *tenant, |_| Ok(()))
                    }
                    Command::Shutdown => Ok(()),
                };
                if let Err(e) = applied {
                    mismatches.push(format!(
                        "tick {tick}: recorded command failed on replay: {e} ({cmd:?})"
                    ));
                }
            }

            for (i, tenant) in tenants.iter_mut().enumerate() {
                let advanced = if tenant.ready() {
                    tenant.advance(self.quantum_ms, &telem, &mut arena)
                } else {
                    false
                };
                if advanced || touched[i] {
                    if let Some(point) = tenant.hash_point(tick) {
                        traces[i].push(point);
                    }
                }
            }
        }

        let mut points_checked = 0usize;
        if tenants.len() != self.traces.len() {
            mismatches.push(format!(
                "replay created {} tenants, recording has {}",
                tenants.len(),
                self.traces.len()
            ));
        }
        for recorded in &self.traces {
            let i = recorded.tenant;
            let Some(tenant) = tenants.get(i) else {
                mismatches.push(format!("tenant {i}: missing from replay"));
                continue;
            };
            let replayed = traces.get(i).cloned().unwrap_or_default();
            if replayed.len() != recorded.hashes.len() {
                mismatches.push(format!(
                    "tenant {i}: replay recorded {} hash points, live recorded {}",
                    replayed.len(),
                    recorded.hashes.len()
                ));
            }
            for (a, b) in replayed.iter().zip(&recorded.hashes) {
                points_checked += 1;
                if a != b {
                    mismatches.push(format!(
                        "tenant {i} tick {}: replay hash {:#018x} at {} ms, live {:#018x} at {} ms",
                        b.tick, a.hash, a.at_ms, b.hash, b.at_ms
                    ));
                }
            }
            let final_hash = tenant.state.as_ref().map(|s| s.state_hash()).unwrap_or(0);
            points_checked += 1;
            if final_hash != recorded.final_hash {
                mismatches.push(format!(
                    "tenant {i}: replay final hash {final_hash:#018x}, live {:#018x}",
                    recorded.final_hash
                ));
            }
            if tenant.error != recorded.error {
                mismatches.push(format!(
                    "tenant {i}: replay error {:?}, live {:?}",
                    tenant.error, recorded.error
                ));
            }
        }

        // cap the report so a systemic divergence stays readable
        const MAX_MISMATCHES: usize = 32;
        let truncated = mismatches.len().saturating_sub(MAX_MISMATCHES);
        mismatches.truncate(MAX_MISMATCHES);
        if truncated > 0 {
            mismatches.push(format!("... and {truncated} more"));
        }

        ReplayOutcome {
            verified: mismatches.is_empty(),
            tenants: tenants.len(),
            points_checked,
            mismatches,
        }
    }
}

fn replay_on<F>(
    tenants: &mut [TenantCore],
    touched: &mut [bool],
    id: usize,
    f: F,
) -> Result<(), String>
where
    F: FnOnce(&mut TenantCore) -> Result<(), String>,
{
    let tenant = tenants
        .get_mut(id)
        .ok_or_else(|| format!("no tenant {id}"))?;
    f(tenant)?;
    touched[id] = true;
    Ok(())
}

//! Wire protocol: line-delimited JSON over TCP, std-only.
//!
//! Each client connection is one thread reading newline-terminated JSON
//! requests and writing one JSON response line per request. Requests name
//! an operation in `"cmd"` and carry its arguments inline:
//!
//! ```json
//! {"cmd":"create_tenant","name":"t0","workers":8,"seed":1,"system":"SMapReduce"}
//! {"cmd":"submit_job","tenant":0,"bench":"grep","input_mb":2048,"num_reduces":4}
//! {"cmd":"inject_fault","tenant":0,"node":3,"after_ms":60000,"downtime_ms":30000}
//! {"cmd":"pause","tenant":0}            {"cmd":"resume","tenant":0}
//! {"cmd":"snapshot","tenant":0,"dir":"results/capsules"}
//! {"cmd":"observe","tenant":0}          {"cmd":"stats"}
//! {"cmd":"tenants"}                     {"cmd":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":"..."}`.
//! Mutating commands go through the ingress queue (the caller blocks
//! until the tick boundary applies them); `observe`/`stats`/`tenants`
//! read the egress pool directly and never touch the tick thread.

use crate::ingress::{Command, Reply, TenantId};
use crate::service::ServiceHandle;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serve `handle` on `addr` (e.g. `"127.0.0.1:7700"`) until a client
/// sends `shutdown` or `stop` is raised. Returns the bound address (port
/// 0 resolves to a real port) via the callback before blocking.
pub fn serve(
    handle: ServiceHandle,
    addr: &str,
    stop: Arc<AtomicBool>,
    mut on_bound: impl FnMut(std::net::SocketAddr),
) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    on_bound(bound);
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let handle = handle.clone();
                let stop = stop.clone();
                workers.push(
                    std::thread::Builder::new()
                        .name("realtime-conn".into())
                        .spawn(move || serve_connection(stream, handle, stop))
                        .map_err(|e| e.to_string())?,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn serve_connection(stream: TcpStream, handle: ServiceHandle, stop: Arc<AtomicBool>) {
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // connection closed
            Ok(_) => {}
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::parse_value(&line) {
            Ok(req) => dispatch(&req, &handle, &stop),
            Err(e) => err(format!("bad request: {e}")),
        };
        let mut out = serde_json::to_string(&response)
            .unwrap_or_else(|e| format!("{{\"ok\":false,\"error\":\"encode: {e}\"}}"));
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
}

fn dispatch(req: &Value, handle: &ServiceHandle, stop: &Arc<AtomicBool>) -> Value {
    let cmd = match req.get("cmd").and_then(Value::as_str) {
        Some(c) => c,
        None => return err("missing \"cmd\""),
    };
    match cmd {
        "create_tenant" => {
            let name = str_field(req, "name").unwrap_or("tenant");
            let workers = u64_field(req, "workers").unwrap_or(8) as usize;
            let seed = u64_field(req, "seed").unwrap_or(1);
            let system = str_field(req, "system").unwrap_or("SMapReduce");
            reply_json(handle.send(Command::CreateTenant {
                name: name.to_string(),
                workers,
                seed,
                system: system.to_string(),
            }))
        }
        "submit_job" => {
            let Some(tenant) = tenant_field(req) else {
                return missing("tenant");
            };
            let bench = str_field(req, "bench").unwrap_or("grep");
            let input_mb = f64_field(req, "input_mb").unwrap_or(1024.0);
            let num_reduces = u64_field(req, "num_reduces").unwrap_or(4) as usize;
            reply_json(handle.send(Command::SubmitJob {
                tenant,
                bench: bench.to_string(),
                input_mb,
                num_reduces,
            }))
        }
        "inject_fault" => {
            let Some(tenant) = tenant_field(req) else {
                return missing("tenant");
            };
            let Some(node) = u64_field(req, "node") else {
                return missing("node");
            };
            let Some(after_ms) = u64_field(req, "after_ms") else {
                return missing("after_ms");
            };
            reply_json(handle.send(Command::InjectFault {
                tenant,
                node: node as usize,
                after_ms,
                downtime_ms: u64_field(req, "downtime_ms"),
            }))
        }
        "pause" => match tenant_field(req) {
            Some(tenant) => reply_json(handle.send(Command::Pause { tenant })),
            None => missing("tenant"),
        },
        "resume" => match tenant_field(req) {
            Some(tenant) => reply_json(handle.send(Command::Resume { tenant })),
            None => missing("tenant"),
        },
        "snapshot" => {
            let Some(tenant) = tenant_field(req) else {
                return missing("tenant");
            };
            let Some(dir) = str_field(req, "dir") else {
                return missing("dir");
            };
            reply_json(handle.send(Command::Snapshot {
                tenant,
                dir: dir.to_string(),
            }))
        }
        "observe" => {
            let Some(tenant) = tenant_field(req) else {
                return missing("tenant");
            };
            match handle.frame(tenant) {
                Some(frame) => match serde_json::to_value(&*frame) {
                    Ok(v) => ok_with("frame", v),
                    Err(e) => err(e.to_string()),
                },
                None => err(format!("no tenant {tenant}")),
            }
        }
        "stats" => match serde_json::to_value(handle.stats()) {
            Ok(v) => ok_with("stats", v),
            Err(e) => err(e.to_string()),
        },
        "tenants" => ok_with("tenants", Value::U64(handle.stats().tenants as u64)),
        "shutdown" => {
            stop.store(true, Ordering::Release);
            reply_json(handle.send(Command::Shutdown))
        }
        other => err(format!("unknown cmd {other:?}")),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ok_with(key: &str, v: Value) -> Value {
    obj(vec![("ok", Value::Bool(true)), (key, v)])
}

fn err(msg: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(msg.into())),
    ])
}

fn reply_json(result: Result<Reply, String>) -> Value {
    match result {
        Ok(reply) => match serde_json::to_value(&reply) {
            Ok(v) => ok_with("reply", v),
            Err(e) => err(e.to_string()),
        },
        Err(e) => err(e),
    }
}

fn missing(field: &str) -> Value {
    err(format!("missing {field:?}"))
}

fn str_field<'a>(req: &'a Value, key: &str) -> Option<&'a str> {
    req.get(key).and_then(Value::as_str)
}

fn u64_field(req: &Value, key: &str) -> Option<u64> {
    req.get(key).and_then(Value::as_u64)
}

fn f64_field(req: &Value, key: &str) -> Option<f64> {
    req.get(key).and_then(Value::as_f64)
}

fn tenant_field(req: &Value) -> Option<TenantId> {
    u64_field(req, "tenant").map(|t| t as TenantId)
}

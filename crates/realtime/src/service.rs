//! The tick thread and its in-process handle.
//!
//! One background thread owns every tenant. Per tick it (1) drains the
//! ingress queue and applies the backlog in arrival order, (2) advances
//! every ready tenant by the service's fixed sim quantum — batched through
//! [`sweepengine::BatchedSweep::run_mut`] with per-worker arena recycling
//! when enough tenants are ready to pay for fan-out — and (3) publishes an
//! observation frame per touched tenant, then sleeps until the next wall
//! deadline. Falling behind slips *sim pacing* (the wall deadline resets),
//! never determinism: the quantum is a constant of the run, so the
//! trajectory is a pure function of the `(tick, command)` sequence.

use crate::egress::{FrameCell, FramePool, ObservationFrame, ObservationPool};
use crate::ingress::{Command, Envelope, Reply, TenantId};
use crate::script::{IngressScript, ScriptedCommand, TenantTrace, TickHash};
use checkpoint::{capsule_file_name, CapsuleFormat, SimSnapshot};
use mapreduce::{Engine, EngineArena, EngineConfig, EngineState, RunReport};
use simgrid::cluster::NodeId;
use simgrid::fault::NodeFault;
use simgrid::time::{SimDuration, SimTime};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sweepengine::BatchedSweep;
use telemetry::Telemetry;
use workloads::puma::Puma;

/// Tuning of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Wall-clock tick interval.
    pub tick_interval: Duration,
    /// Time dilation: simulated seconds advanced per wall second. The sim
    /// quantum per tick is `tick_interval × dilation`, rounded to whole
    /// milliseconds and fixed for the service's lifetime.
    pub dilation: f64,
    /// Worker bound for the per-tick advance batch (0 = one worker per
    /// available core).
    pub workers: usize,
    /// Record every applied command (and per-tenant hash traces) into an
    /// [`IngressScript`] returned with the summary.
    pub record_script: bool,
    /// Telemetry sink for service-level counters and tick-phase spans.
    pub telemetry: Telemetry,
    /// Per-tenant sim horizon: a tenant whose run exceeds this much sim
    /// time errors out rather than spinning forever.
    pub sim_horizon: SimDuration,
    /// Keep at most this many command-to-apply latency samples.
    pub max_latency_samples: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            tick_interval: Duration::from_millis(20),
            dilation: 50.0,
            workers: 0,
            record_script: true,
            telemetry: Telemetry::disabled(),
            sim_horizon: SimDuration::from_secs(7 * 24 * 3600),
            max_latency_samples: 1 << 16,
        }
    }
}

impl ServiceConfig {
    /// The fixed sim quantum each tick advances (ms, at least 1).
    pub fn quantum_ms(&self) -> u64 {
        let ms = self.tick_interval.as_secs_f64() * self.dilation * 1000.0;
        (ms.round() as u64).max(1)
    }
}

/// The policy-independent core of one tenant: everything both the live
/// tick thread and the offline script replay mutate. Keeping this shared
/// is what makes "replay = live" a structural property instead of two
/// hand-synchronised code paths.
#[derive(Debug)]
pub(crate) struct TenantCore {
    pub name: String,
    pub system: String,
    pub workers: usize,
    pub seed: u64,
    pub sim_horizon: SimDuration,
    /// `None` until the first `SubmitJob` boots the cluster (and again,
    /// permanently, if the run dies with an error).
    pub state: Option<EngineState>,
    pub paused: bool,
    pub finished: bool,
    pub error: Option<String>,
    pub jobs_submitted: u64,
    /// Report of the most recent all-jobs-finished instant.
    pub report: Option<RunReport>,
}

impl TenantCore {
    pub(crate) fn new(
        name: String,
        system: String,
        workers: usize,
        seed: u64,
        sim_horizon: SimDuration,
    ) -> TenantCore {
        TenantCore {
            name,
            system,
            workers,
            seed,
            sim_horizon,
            state: None,
            paused: false,
            finished: false,
            error: None,
            jobs_submitted: 0,
            report: None,
        }
    }

    fn base_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::small_test(self.workers, self.seed);
        cfg.record_events = false; // long-lived tenants must not grow a log
        cfg.tick.horizon = SimTime::ZERO + self.sim_horizon;
        cfg
    }

    /// The tenant advances this tick.
    pub(crate) fn ready(&self) -> bool {
        self.state.is_some() && !self.paused && !self.finished && self.error.is_none()
    }

    pub(crate) fn submit_job(
        &mut self,
        id: TenantId,
        bench: &str,
        input_mb: f64,
        num_reduces: usize,
    ) -> Result<Reply, String> {
        if let Some(error) = &self.error {
            return Err(format!("tenant {id} died: {error}"));
        }
        let bench =
            Puma::from_name(bench).ok_or_else(|| format!("unknown PUMA benchmark {bench:?}"))?;
        let job = match &mut self.state {
            None => {
                let spec = bench.job(0, input_mb, num_reduces, SimTime::ZERO);
                let mut state = Engine::new(self.base_config())
                    .prepare(vec![spec])
                    .map_err(|e| e.to_string())?;
                state
                    .override_policy(&self.system)
                    .map_err(|e| e.to_string())?;
                self.state = Some(state);
                0
            }
            Some(state) => {
                state
                    .inject_job(bench.profile(), input_mb, num_reduces)
                    .map_err(|e| e.to_string())?
                    .0
            }
        };
        self.jobs_submitted += 1;
        self.finished = false; // a fresh job un-idles a finished tenant
        Ok(Reply::JobSubmitted { tenant: id, job })
    }

    pub(crate) fn inject_fault(
        &mut self,
        id: TenantId,
        node: usize,
        after_ms: u64,
        downtime_ms: Option<u64>,
    ) -> Result<Reply, String> {
        let state = self
            .state
            .as_mut()
            .ok_or_else(|| format!("tenant {id} has no running cluster yet"))?;
        if after_ms == 0 {
            return Err("fault must be strictly in the future (after_ms > 0)".into());
        }
        let at = state.at() + SimDuration::from_millis(after_ms);
        let fault = match downtime_ms {
            Some(d) => NodeFault::transient(NodeId(node), at, SimDuration::from_millis(d)),
            None => NodeFault::permanent(NodeId(node), at),
        };
        state.inject_fault(fault).map_err(|e| e.to_string())?;
        Ok(Reply::FaultInjected {
            tenant: id,
            at_ms: at.as_millis(),
        })
    }

    /// Write the current capsule under `dir` (binary encoding). Replay
    /// treats snapshots as no-ops — they never mutate tenant state.
    pub(crate) fn snapshot(&self, id: TenantId, dir: &Path) -> Result<Reply, String> {
        let state = self
            .state
            .as_ref()
            .ok_or_else(|| format!("tenant {id} has no running cluster yet"))?;
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let file = format!(
            "tenant{:04}-{}",
            id,
            capsule_file_name(state.at(), CapsuleFormat::Binary)
        );
        let path = dir.join(file);
        checkpoint::save(&path, &SimSnapshot::new(state.clone())).map_err(|e| e.to_string())?;
        Ok(Reply::Snapshotted {
            tenant: id,
            path: path.display().to_string(),
        })
    }

    /// Advance one fixed quantum. Returns `true` if the tenant's state
    /// changed (it stepped, finished, or died) — exactly the ticks whose
    /// hash the trace records.
    pub(crate) fn advance(
        &mut self,
        quantum_ms: u64,
        telem: &Telemetry,
        arena: &mut EngineArena,
    ) -> bool {
        let Some(state) = self.state.take() else {
            return false;
        };
        let target = state.at() + SimDuration::from_millis(quantum_ms);
        let Some(mut policy) = crate::policy_for(&self.system) else {
            // unreachable: the label was validated at CreateTenant
            self.error = Some(format!("unknown system label {:?}", self.system));
            return true;
        };
        match Engine::advance_until_in(state, policy.as_mut(), target, telem, arena) {
            Ok(adv) => {
                self.finished = adv.finished;
                if adv.finished {
                    self.report = adv.report;
                }
                self.state = Some(adv.state);
            }
            Err(e) => {
                self.error = Some(e.to_string());
            }
        }
        true
    }

    /// The tenant's current `(sim clock, rolling hash)`, if it has state.
    pub(crate) fn hash_point(&self, tick: u64) -> Option<TickHash> {
        self.state.as_ref().map(|s| TickHash {
            tick,
            at_ms: s.at().as_millis(),
            hash: s.state_hash(),
        })
    }
}

/// One live tenant: the replayable core plus egress-side bookkeeping the
/// replay never needs.
struct Tenant {
    id: TenantId,
    core: TenantCore,
    cell: Arc<FrameCell>,
    epoch: u64,
    /// `(map_target, reduce_target)` per node as of the last *successful*
    /// publish — diffed into the next frame's `recent_decisions`.
    prev_slots: Vec<(usize, usize)>,
    trace: Vec<TickHash>,
    created_tick: u64,
}

/// Cross-thread state shared between the tick thread and every handle.
pub(crate) struct Shared {
    pub pool: ObservationPool,
    pub tick: AtomicU64,
    pub commands: AtomicU64,
    pub frames: AtomicU64,
    pub missed_ticks: AtomicU64,
    pub reclaimed: AtomicU64,
    pub fresh: AtomicU64,
    pub stopping: AtomicBool,
}

/// A point-in-time statistics snapshot of a running service.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    pub tick: u64,
    pub tenants: usize,
    pub commands_applied: u64,
    pub frames_published: u64,
    pub publish_skips: u64,
    pub frames_reclaimed: u64,
    pub frames_fresh: u64,
    pub missed_ticks: u64,
}

/// Final state of one tenant at shutdown.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TenantSummary {
    pub id: TenantId,
    pub name: String,
    pub system: String,
    pub created_tick: u64,
    pub sim_now_ms: u64,
    pub state_hash: u64,
    pub steps: u64,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub finished: bool,
    pub paused: bool,
    pub error: Option<String>,
}

/// Everything the tick thread hands back when it stops.
#[derive(Debug)]
pub struct ServiceSummary {
    pub ticks: u64,
    pub quantum_ms: u64,
    pub wall_seconds: f64,
    pub commands_applied: u64,
    pub frames_published: u64,
    pub publish_skips: u64,
    pub frames_reclaimed: u64,
    pub frames_fresh: u64,
    pub missed_ticks: u64,
    /// Command-to-apply latencies (µs), capped at the configured sample
    /// budget.
    pub latency_us: Vec<u64>,
    pub tenants: Vec<TenantSummary>,
    /// The recorded ingress script (when recording was on) — replaying it
    /// offline must reproduce every tenant's hash trace exactly.
    pub script: Option<IngressScript>,
}

impl ServiceSummary {
    /// The `q`-quantile (0..=1) of the command-to-apply latencies, µs.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latency_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latency_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// The live multi-tenant emulation service. Construct with
/// [`RealtimeService::spawn`]; interact through the returned
/// [`ServiceHandle`].
pub struct RealtimeService;

impl RealtimeService {
    /// Start the tick thread and return a cloneable handle to it.
    pub fn spawn(cfg: ServiceConfig) -> ServiceHandle {
        let (tx, rx) = mpsc::channel::<Envelope>();
        let shared = Arc::new(Shared {
            pool: ObservationPool::new(),
            tick: AtomicU64::new(0),
            commands: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            missed_ticks: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });
        let thread_shared = shared.clone();
        let join = std::thread::Builder::new()
            .name("realtime-tick".into())
            .spawn(move || tick_loop(cfg, rx, thread_shared))
            .expect("spawn tick thread");
        ServiceHandle {
            tx,
            shared,
            join: Arc::new(Mutex::new(Some(join))),
        }
    }
}

/// In-process client of a running service. Cloneable; every clone talks
/// to the same tick thread.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Envelope>,
    shared: Arc<Shared>,
    join: Arc<Mutex<Option<JoinHandle<ServiceSummary>>>>,
}

impl ServiceHandle {
    /// Send one command and block until the tick thread applies it.
    pub fn send(&self, cmd: Command) -> Result<Reply, String> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send(Envelope {
                cmd,
                issued: Instant::now(),
                reply: reply_tx,
            })
            .map_err(|_| "service stopped".to_string())?;
        reply_rx.recv().map_err(|_| "service stopped".to_string())?
    }

    pub fn create_tenant(
        &self,
        name: &str,
        workers: usize,
        seed: u64,
        system: &str,
    ) -> Result<TenantId, String> {
        match self.send(Command::CreateTenant {
            name: name.to_string(),
            workers,
            seed,
            system: system.to_string(),
        })? {
            Reply::TenantCreated { tenant } => Ok(tenant),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    pub fn submit_job(
        &self,
        tenant: TenantId,
        bench: &str,
        input_mb: f64,
        num_reduces: usize,
    ) -> Result<usize, String> {
        match self.send(Command::SubmitJob {
            tenant,
            bench: bench.to_string(),
            input_mb,
            num_reduces,
        })? {
            Reply::JobSubmitted { job, .. } => Ok(job),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    pub fn inject_fault(
        &self,
        tenant: TenantId,
        node: usize,
        after_ms: u64,
        downtime_ms: Option<u64>,
    ) -> Result<u64, String> {
        match self.send(Command::InjectFault {
            tenant,
            node,
            after_ms,
            downtime_ms,
        })? {
            Reply::FaultInjected { at_ms, .. } => Ok(at_ms),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    pub fn pause(&self, tenant: TenantId) -> Result<(), String> {
        self.send(Command::Pause { tenant }).map(|_| ())
    }

    pub fn resume(&self, tenant: TenantId) -> Result<(), String> {
        self.send(Command::Resume { tenant }).map(|_| ())
    }

    pub fn snapshot(&self, tenant: TenantId, dir: &str) -> Result<String, String> {
        match self.send(Command::Snapshot {
            tenant,
            dir: dir.to_string(),
        })? {
            Reply::Snapshotted { path, .. } => Ok(path),
            other => Err(format!("unexpected reply {other:?}")),
        }
    }

    /// Stop the tick thread and collect its summary. Idempotent across
    /// clones: the first caller gets the summary, later callers an error.
    pub fn shutdown(&self) -> Result<ServiceSummary, String> {
        let _ = self.send(Command::Shutdown);
        let handle = self
            .join
            .lock()
            .expect("join slot poisoned")
            .take()
            .ok_or("service already shut down")?;
        handle.join().map_err(|_| "tick thread panicked".into())
    }

    /// Ticks completed so far.
    pub fn tick(&self) -> u64 {
        self.shared.tick.load(Ordering::Acquire)
    }

    /// Latest frame of one tenant.
    pub fn frame(&self, tenant: TenantId) -> Option<Arc<ObservationFrame>> {
        self.shared.pool.frame(tenant)
    }

    /// The observation pool, for dedicated reader threads.
    pub fn observations(&self) -> ObservationReader {
        ObservationReader {
            shared: self.shared.clone(),
        }
    }

    /// Current service statistics.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared;
        ServiceStats {
            tick: s.tick.load(Ordering::Acquire),
            tenants: s.pool.len(),
            commands_applied: s.commands.load(Ordering::Relaxed),
            frames_published: s.frames.load(Ordering::Relaxed),
            publish_skips: s.pool.publish_skips(),
            frames_reclaimed: s.reclaimed.load(Ordering::Relaxed),
            frames_fresh: s.fresh.load(Ordering::Relaxed),
            missed_ticks: s.missed_ticks.load(Ordering::Relaxed),
        }
    }
}

/// Read-only view for reader threads: frames and the tick counter, no
/// command surface and no shutdown authority.
#[derive(Clone)]
pub struct ObservationReader {
    shared: Arc<Shared>,
}

impl ObservationReader {
    pub fn tick(&self) -> u64 {
        self.shared.tick.load(Ordering::Acquire)
    }

    pub fn tenants(&self) -> usize {
        self.shared.pool.len()
    }

    pub fn frame(&self, tenant: TenantId) -> Option<Arc<ObservationFrame>> {
        self.shared.pool.frame(tenant)
    }

    pub fn epoch(&self, tenant: TenantId) -> Option<u64> {
        self.shared.pool.cell(tenant).map(|c| c.epoch())
    }

    pub fn stopped(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }
}

fn tick_loop(cfg: ServiceConfig, rx: Receiver<Envelope>, shared: Arc<Shared>) -> ServiceSummary {
    let telem = cfg.telemetry.clone();
    let quantum_ms = cfg.quantum_ms();
    let sweep = if cfg.workers == 0 {
        BatchedSweep::auto()
    } else {
        BatchedSweep::with_workers(cfg.workers)
    };
    let mut tenants: Vec<Tenant> = Vec::new();
    let mut frame_pool = FramePool::new();
    let mut inline_arena = EngineArena::new();
    let mut latency_us: Vec<u64> = Vec::new();
    let mut script_cmds: Vec<ScriptedCommand> = Vec::new();
    let tick_counter = telem.counter("realtime.ticks");
    let cmd_counter = telem.counter("realtime.commands");
    let frame_counter = telem.counter("realtime.frames");
    let started = Instant::now();
    let mut tick: u64 = 0;
    let mut next_deadline = Instant::now() + cfg.tick_interval;
    let mut stopping = false;

    loop {
        // Phase 1: drain the ingress backlog and apply it in order.
        let t0 = telem.clock_us();
        let mut touched: Vec<bool> = vec![false; tenants.len()];
        while let Ok(env) = rx.try_recv() {
            if stopping {
                let _ = env.reply.send(Err("service shutting down".into()));
                continue;
            }
            let result = apply_command(
                &cfg,
                &shared,
                &mut tenants,
                &mut touched,
                tick,
                &env.cmd,
                &mut stopping,
            );
            if result.is_ok() {
                shared.commands.fetch_add(1, Ordering::Relaxed);
                cmd_counter.inc();
                if cfg.record_script {
                    script_cmds.push(ScriptedCommand {
                        tick,
                        cmd: env.cmd.clone(),
                    });
                }
            }
            if latency_us.len() < cfg.max_latency_samples {
                latency_us.push(env.issued.elapsed().as_micros() as u64);
            }
            let _ = env.reply.send(result);
        }
        telem.record_span("realtime", "drain", t0, tick);

        // Phase 2: advance every ready tenant one quantum. Batches of one
        // skip the pool entirely (run_mut runs them inline).
        let t0 = telem.clock_us();
        let ready_ids: Vec<usize> = (0..tenants.len())
            .filter(|&i| tenants[i].core.ready())
            .collect();
        let mut advanced: Vec<bool> = vec![false; tenants.len()];
        if !ready_ids.is_empty() {
            let mut ready: Vec<&mut TenantCore> = Vec::with_capacity(ready_ids.len());
            // split the tenant vec into disjoint &mut cores for the batch
            let mut rest: &mut [Tenant] = &mut tenants;
            let mut taken = 0usize;
            for &i in &ready_ids {
                let (_, tail) = rest.split_at_mut(i - taken);
                let (head, tail) = tail.split_at_mut(1);
                ready.push(&mut head[0].core);
                rest = tail;
                taken = i + 1;
            }
            let changed = sweep.run_mut(&mut ready, &mut inline_arena, |_, core, arena| {
                core.advance(quantum_ms, &telem, arena)
            });
            for (&i, changed) in ready_ids.iter().zip(changed) {
                advanced[i] = changed;
            }
        }
        telem.record_span("realtime", "advance", t0, tick);

        // Phase 3: record hashes and publish frames for touched tenants.
        let t0 = telem.clock_us();
        for (i, tenant) in tenants.iter_mut().enumerate() {
            if !(advanced[i] || touched[i]) {
                continue;
            }
            if cfg.record_script {
                if let Some(point) = tenant.core.hash_point(tick) {
                    tenant.trace.push(point);
                }
            }
            if publish_frame(tenant, tick, &mut frame_pool) {
                shared.frames.fetch_add(1, Ordering::Relaxed);
                frame_counter.inc();
            }
        }
        shared
            .reclaimed
            .store(frame_pool.reclaimed, Ordering::Relaxed);
        shared.fresh.store(frame_pool.fresh, Ordering::Relaxed);
        telem.record_span("realtime", "publish", t0, tick);

        tick += 1;
        tick_counter.inc();
        shared.tick.store(tick, Ordering::Release);
        if stopping {
            break;
        }

        // Phase 4: wall pacing. Missing a deadline slips sim pacing (the
        // deadline resets relative to now) — it never shrinks or grows
        // the quantum, so determinism survives arbitrary wall jitter.
        let now = Instant::now();
        if now < next_deadline {
            std::thread::sleep(next_deadline - now);
            next_deadline += cfg.tick_interval;
        } else {
            shared.missed_ticks.fetch_add(1, Ordering::Relaxed);
            next_deadline = now + cfg.tick_interval;
        }
    }

    shared.stopping.store(true, Ordering::Release);
    let wall_seconds = started.elapsed().as_secs_f64();
    let tenant_summaries: Vec<TenantSummary> = tenants
        .iter()
        .map(|t| {
            let obs = t.core.state.as_ref().map(|s| s.observe());
            TenantSummary {
                id: t.id,
                name: t.core.name.clone(),
                system: t.core.system.clone(),
                created_tick: t.created_tick,
                sim_now_ms: obs.as_ref().map(|o| o.at_ms).unwrap_or(0),
                state_hash: obs.as_ref().map(|o| o.state_hash).unwrap_or(0),
                steps: obs.as_ref().map(|o| o.steps).unwrap_or(0),
                jobs_submitted: t.core.jobs_submitted,
                jobs_completed: obs
                    .as_ref()
                    .map(|o| o.jobs.iter().filter(|j| j.finished).count() as u64)
                    .unwrap_or(0),
                finished: t.core.finished,
                paused: t.core.paused,
                error: t.core.error.clone(),
            }
        })
        .collect();
    let script = cfg.record_script.then(|| IngressScript {
        quantum_ms,
        ticks: tick,
        sim_horizon_ms: cfg.sim_horizon.as_millis(),
        commands: script_cmds,
        traces: tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantTrace {
                tenant: i,
                error: t.core.error.clone(),
                final_hash: t.core.state.as_ref().map(|s| s.state_hash()).unwrap_or(0),
                hashes: t.trace.clone(),
            })
            .collect(),
    });
    ServiceSummary {
        ticks: tick,
        quantum_ms,
        wall_seconds,
        commands_applied: shared.commands.load(Ordering::Relaxed),
        frames_published: shared.frames.load(Ordering::Relaxed),
        publish_skips: shared.pool.publish_skips(),
        frames_reclaimed: frame_pool.reclaimed,
        frames_fresh: frame_pool.fresh,
        missed_ticks: shared.missed_ticks.load(Ordering::Relaxed),
        latency_us,
        tenants: tenant_summaries,
        script,
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_command(
    cfg: &ServiceConfig,
    shared: &Arc<Shared>,
    tenants: &mut Vec<Tenant>,
    touched: &mut Vec<bool>,
    tick: u64,
    cmd: &Command,
    stopping: &mut bool,
) -> Result<Reply, String> {
    match cmd {
        Command::CreateTenant {
            name,
            workers,
            seed,
            system,
        } => {
            if *workers == 0 {
                return Err("tenant needs at least one worker".into());
            }
            if crate::policy_for(system).is_none() {
                return Err(format!(
                    "unknown system label {system:?} (one of {:?})",
                    crate::SYSTEM_LABELS
                ));
            }
            let id = tenants.len();
            let cell = shared.pool.register(id, name, system);
            tenants.push(Tenant {
                core: TenantCore::new(
                    name.clone(),
                    system.clone(),
                    *workers,
                    *seed,
                    cfg.sim_horizon,
                ),
                cell,
                epoch: 0,
                prev_slots: Vec::new(),
                trace: Vec::new(),
                created_tick: tick,
                id,
            });
            touched.push(true);
            Ok(Reply::TenantCreated { tenant: id })
        }
        Command::SubmitJob {
            tenant,
            bench,
            input_mb,
            num_reduces,
        } => {
            let t = tenant_mut(tenants, *tenant)?;
            let reply = t.core.submit_job(*tenant, bench, *input_mb, *num_reduces)?;
            touched[*tenant] = true;
            Ok(reply)
        }
        Command::InjectFault {
            tenant,
            node,
            after_ms,
            downtime_ms,
        } => {
            let t = tenant_mut(tenants, *tenant)?;
            let reply = t
                .core
                .inject_fault(*tenant, *node, *after_ms, *downtime_ms)?;
            touched[*tenant] = true;
            Ok(reply)
        }
        Command::Pause { tenant } => {
            let t = tenant_mut(tenants, *tenant)?;
            t.core.paused = true;
            touched[*tenant] = true;
            Ok(Reply::Paused { tenant: *tenant })
        }
        Command::Resume { tenant } => {
            let t = tenant_mut(tenants, *tenant)?;
            t.core.paused = false;
            touched[*tenant] = true;
            Ok(Reply::Resumed { tenant: *tenant })
        }
        Command::Snapshot { tenant, dir } => {
            let t = tenant_mut(tenants, *tenant)?;
            let reply = t.core.snapshot(*tenant, Path::new(dir))?;
            touched[*tenant] = true;
            Ok(reply)
        }
        Command::Shutdown => {
            *stopping = true;
            Ok(Reply::ShuttingDown)
        }
    }
}

fn tenant_mut(tenants: &mut [Tenant], id: TenantId) -> Result<&mut Tenant, String> {
    let count = tenants.len();
    tenants
        .get_mut(id)
        .ok_or_else(|| format!("no tenant {id} (have {count})"))
}

/// Build and publish one tenant's frame. Returns whether the publish
/// landed (a contended slot skips — never blocks — and retries next
/// tick).
fn publish_frame(tenant: &mut Tenant, tick: u64, pool: &mut FramePool) -> bool {
    let mut frame = pool.take();
    frame.tenant = tenant.id;
    frame.name.push_str(&tenant.core.name);
    frame.system.push_str(&tenant.core.system);
    frame.epoch = tenant.epoch + 1;
    frame.tick = tick;
    frame.paused = tenant.core.paused;
    frame.error = tenant.core.error.clone();
    match tenant.core.state.as_ref() {
        Some(state) => frame.obs = state.observe(),
        None => {
            frame.obs = mapreduce::EngineObservation {
                at_ms: 0,
                steps: 0,
                state_hash: 0,
                heartbeat_rounds: 0,
                slot_changes: 0,
                all_finished: false,
                jobs: Vec::new(),
                nodes: Vec::new(),
            }
        }
    }
    // the policy's recent decisions, as slot-target diffs since the last
    // published frame
    const MAX_DECISIONS: usize = 16;
    for (i, n) in frame.obs.nodes.iter().enumerate() {
        let prev = tenant.prev_slots.get(i).copied();
        let (pm, pr) = prev.unwrap_or((n.map_target, n.reduce_target));
        if prev.is_some() && (pm != n.map_target || pr != n.reduce_target) {
            if frame.recent_decisions.len() < MAX_DECISIONS {
                frame.recent_decisions.push(format!(
                    "n{i} map {pm}->{} reduce {pr}->{}",
                    n.map_target, n.reduce_target
                ));
            } else {
                break;
            }
        }
    }
    frame.checksum = frame.compute_checksum();
    let next_slots: Vec<(usize, usize)> = frame
        .obs
        .nodes
        .iter()
        .map(|n| (n.map_target, n.reduce_target))
        .collect();
    let published = tenant.cell.publish(Arc::new(frame), pool);
    if published {
        tenant.epoch += 1;
        tenant.prev_slots = next_slots;
    }
    published
}

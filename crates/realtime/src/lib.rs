//! Live multi-tenant cluster-emulation service.
//!
//! Every driver below this crate is batch: a grid of cells runs to
//! completion and prints tables. This crate turns the simulator into a
//! long-running **service**: many concurrent *tenant* clusters advance on
//! a background tick thread, clients submit PUMA jobs (and faults, and
//! pauses) against live clusters through an ingress queue, and watch slot
//! decisions unfold through an egress observation pool — the paper's
//! *runtime* slot management actually exercised at runtime.
//!
//! Three moving parts, one invariant each:
//!
//! - **Tick thread** ([`service`]): wall-clock paced with a configurable
//!   time-dilation factor. Each tick drains the ingress queue (commands
//!   apply *only* at tick boundaries), advances every ready tenant by a
//!   **fixed sim quantum** through `sweepengine`'s worker pool with
//!   per-worker [`mapreduce::EngineArena`] recycling, and publishes
//!   observation frames. The quantum is fixed — never derived from wall
//!   jitter — so the whole run is a deterministic function of the ingress
//!   script: the same commands at the same ticks replay to the same
//!   per-tenant rolling state hashes, offline, with no threads at all
//!   ([`script::IngressScript::replay`]).
//! - **Ingress** ([`ingress`]): an MPSC command queue. Senders block only
//!   until the tick boundary that applies their command, which is also
//!   exactly the command-to-apply latency the bench reports.
//! - **Egress** ([`egress`]): per-tenant epoch-stamped frame slots. The
//!   tick thread publishes with `try_lock` — it *provably never blocks* on
//!   readers (a contended slot skips that tick's publish, counted, retried
//!   next tick) — and reclaims the previous frame's buffers through
//!   `Arc::try_unwrap` into a free pool once the last reader drops it.
//!
//! Tenants are **capsules between ticks**: each advance resumes an
//! [`mapreduce::EngineState`] via the checkpoint machinery, steps it to a
//! bounded sim target ([`mapreduce::Engine::advance_until_in`]), and
//! re-captures. Snapshot/restore through the ingress queue and the rolling
//! per-step state hash come for free, and an advance never holds locks the
//! egress side could contend on.

pub mod egress;
pub mod ingress;
pub mod script;
pub mod service;
pub mod wire;

pub use egress::{FramePool, ObservationFrame, ObservationPool};
pub use ingress::{Command, Reply, TenantId};
pub use script::{IngressScript, ReplayOutcome, ScriptedCommand, TenantTrace, TickHash};
pub use service::{
    RealtimeService, ServiceConfig, ServiceHandle, ServiceStats, ServiceSummary, TenantSummary,
};

use mapreduce::policy::SlotPolicy;
use mapreduce::policy::StaticSlotPolicy;
use smapreduce::{HeteroSlotManagerPolicy, SlotManagerPolicy};
use yarn::CapacityPolicy;

/// A fresh policy instance for a system label, mirroring the harness's
/// system registry (this crate sits below the harness, so it resolves
/// labels itself). Labels are the same strings capsules record.
pub fn policy_for(label: &str) -> Option<Box<dyn SlotPolicy>> {
    match label {
        "HadoopV1" => Some(Box::new(StaticSlotPolicy)),
        "YARN" => Some(Box::new(CapacityPolicy)),
        "SMapReduce" => Some(Box::new(SlotManagerPolicy::paper_default())),
        "SMapReduce-hetero" => Some(Box::new(HeteroSlotManagerPolicy::paper_default())),
        _ => None,
    }
}

/// The system labels [`policy_for`] resolves.
pub const SYSTEM_LABELS: [&str; 4] = ["HadoopV1", "YARN", "SMapReduce", "SMapReduce-hetero"];

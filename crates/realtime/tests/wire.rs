//! End-to-end smoke of the NDJSON wire protocol over a real TCP socket.
//!
//! Skips (cleanly, with a message) when the sandbox forbids binding
//! loopback sockets — the protocol logic itself is covered by the
//! in-process service tests either way.

use realtime::{RealtimeService, ServiceConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::time::Duration;

fn can_bind_loopback() -> bool {
    TcpListener::bind("127.0.0.1:0").is_ok()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to service");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::parse_value(&line).expect("parse response")
    }

    fn call_ok(&mut self, request: &str) -> Value {
        let resp = self.call(request);
        assert_eq!(
            resp.get("ok").and_then(Value::as_bool),
            Some(true),
            "request {request} failed: {resp:?}"
        );
        resp
    }
}

#[test]
fn ndjson_protocol_end_to_end() {
    if !can_bind_loopback() {
        eprintln!("skipping: cannot bind 127.0.0.1 in this environment");
        return;
    }
    let handle = RealtimeService::spawn(ServiceConfig {
        tick_interval: Duration::from_millis(2),
        dilation: 2000.0,
        ..ServiceConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let (addr_tx, addr_rx) = mpsc::channel();
    let server_handle = handle.clone();
    let server_stop = stop.clone();
    let server = std::thread::spawn(move || {
        realtime::wire::serve(server_handle, "127.0.0.1:0", server_stop, |addr| {
            addr_tx.send(addr).unwrap();
        })
    });
    let addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server bound");

    let mut c = Client::connect(addr);
    // create 4 tenants across the system mix and submit jobs
    for (i, system) in ["HadoopV1", "YARN", "SMapReduce", "SMapReduce-hetero"]
        .iter()
        .enumerate()
    {
        let resp = c.call_ok(&format!(
            r#"{{"cmd":"create_tenant","name":"t{i}","workers":8,"seed":{},"system":"{system}"}}"#,
            20 + i
        ));
        let tenant = resp
            .get("reply")
            .and_then(|r| r.get("TenantCreated"))
            .and_then(|r| r.get("tenant"))
            .and_then(Value::as_u64)
            .expect("tenant id in reply");
        assert_eq!(tenant, i as u64);
        c.call_ok(&format!(
            r#"{{"cmd":"submit_job","tenant":{i},"bench":"grep","input_mb":512,"num_reduces":2}}"#
        ));
    }
    // errors come back as ok:false without dropping the connection
    let bad =
        c.call(r#"{"cmd":"submit_job","tenant":99,"bench":"grep","input_mb":1,"num_reduces":1}"#);
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    let bad = c.call(r#"{"cmd":"definitely-not-a-command"}"#);
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));

    // frames advance: poll tenant 0 until its sim clock moves and its
    // frame checksum verifies
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let resp = c.call_ok(r#"{"cmd":"observe","tenant":0}"#);
        let frame = resp.get("frame").expect("frame payload");
        let at_ms = frame
            .get("obs")
            .and_then(|o| o.get("at_ms"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if at_ms > 0 {
            assert!(frame.get("epoch").and_then(Value::as_u64).unwrap_or(0) > 0);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tenant 0 never advanced"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = c.call_ok(r#"{"cmd":"stats"}"#);
    assert_eq!(
        stats
            .get("stats")
            .and_then(|s| s.get("tenants"))
            .and_then(Value::as_u64),
        Some(4)
    );

    // shutdown over the wire stops both the tick thread and the listener;
    // the in-process handle still collects the summary afterwards
    c.call_ok(r#"{"cmd":"shutdown"}"#);
    server.join().unwrap().expect("server exits cleanly");
    let summary = handle.shutdown().expect("summary after wire shutdown");
    assert_eq!(summary.tenants.len(), 4);
    let script = summary.script.expect("recording was on");
    assert!(script.replay().verified, "wire-driven run must replay");
}

//! Concurrency and determinism tests for the realtime service.

use realtime::{Command, RealtimeService, ServiceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_config() -> ServiceConfig {
    ServiceConfig {
        tick_interval: Duration::from_millis(2),
        dilation: 2000.0, // 4 sim-seconds per tick
        ..ServiceConfig::default()
    }
}

/// Wait (bounded) until `cond` holds, re-checking every millisecond.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn tenants_advance_and_finish_jobs() {
    let handle = RealtimeService::spawn(fast_config());
    let t0 = handle.create_tenant("alpha", 8, 11, "SMapReduce").unwrap();
    let t1 = handle.create_tenant("beta", 8, 12, "HadoopV1").unwrap();
    handle.submit_job(t0, "grep", 1024.0, 4).unwrap();
    handle.submit_job(t1, "terasort", 1024.0, 4).unwrap();
    wait_for("both tenants to finish their job", || {
        [t0, t1].iter().all(|&t| {
            handle
                .frame(t)
                .is_some_and(|f| f.obs.all_finished && f.obs.jobs.len() == 1)
        })
    });
    let summary = handle.shutdown().unwrap();
    assert!(summary.ticks > 0);
    assert_eq!(summary.tenants.len(), 2);
    for t in &summary.tenants {
        assert!(t.finished, "tenant {} should be finished", t.id);
        assert_eq!(t.jobs_completed, 1);
        assert!(t.error.is_none());
        assert!(t.state_hash != 0);
    }
    // idle tenants stop burning ticks: sim clocks froze at job completion
    assert!(summary.tenants[0].sim_now_ms > 0);
}

#[test]
fn readers_always_observe_consistent_epoch_ordered_frames() {
    let handle = RealtimeService::spawn(fast_config());
    let mut ids = Vec::new();
    for i in 0..6 {
        let id = handle
            .create_tenant(&format!("t{i}"), 8, 100 + i as u64, "SMapReduce")
            .unwrap();
        handle.submit_job(id, "grep", 4096.0, 4).unwrap();
        ids.push(id);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicU64::new(0));
    let regressions = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for r in 0..4 {
        let obs = handle.observations();
        let stop = stop.clone();
        let torn = torn.clone();
        let regressions = regressions.clone();
        let reads = reads.clone();
        let ids = ids.clone();
        readers.push(std::thread::spawn(move || {
            let mut last_epoch = vec![0u64; ids.len()];
            while !stop.load(Ordering::Acquire) {
                for (k, &id) in ids.iter().enumerate() {
                    let Some(frame) = obs.frame(id) else { continue };
                    reads.fetch_add(1, Ordering::Relaxed);
                    // completeness: the checksum covers every field a torn
                    // publish could corrupt
                    if !frame.is_consistent() {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                    // epoch consistency: published epochs never go back
                    if frame.epoch < last_epoch[k] {
                        regressions.fetch_add(1, Ordering::Relaxed);
                    }
                    last_epoch[k] = frame.epoch;
                }
                if r % 2 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }
    // let readers hammer the pool while the tick thread advances all six
    // tenants through a real workload
    wait_for("ticks to accumulate under reader load", || {
        handle.tick() >= 200
    });
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    let summary = handle.shutdown().unwrap();
    assert_eq!(torn.load(Ordering::Relaxed), 0, "readers saw torn frames");
    assert_eq!(
        regressions.load(Ordering::Relaxed),
        0,
        "reader-visible epochs regressed"
    );
    assert!(reads.load(Ordering::Relaxed) > 1000, "readers barely ran");
    assert!(summary.frames_published > 0);
    // the never-block contract: reader contention may skip publishes, but
    // every tenant still converges to a fresh frame once readers stop
    for &id in &ids {
        let frame = summary
            .tenants
            .iter()
            .find(|t| t.id == id)
            .expect("tenant in summary");
        assert!(frame.error.is_none());
    }
}

#[test]
fn recorded_script_replays_to_identical_hashes() {
    let handle = RealtimeService::spawn(fast_config());
    let a = handle.create_tenant("rep-a", 8, 41, "SMapReduce").unwrap();
    let b = handle.create_tenant("rep-b", 6, 42, "YARN").unwrap();
    let c = handle
        .create_tenant("rep-c", 8, 43, "SMapReduce-hetero")
        .unwrap();
    handle.submit_job(a, "grep", 2048.0, 4).unwrap();
    handle.submit_job(b, "terasort", 1024.0, 4).unwrap();
    // exercise every command class mid-run
    handle.inject_fault(a, 3, 30_000, Some(60_000)).unwrap();
    handle.pause(b).unwrap();
    wait_for("ticks while b is paused", || handle.tick() >= 40);
    handle.submit_job(c, "wordcount", 1024.0, 2).unwrap();
    handle.resume(b).unwrap();
    handle.submit_job(a, "kmeans", 512.0, 2).unwrap();
    wait_for("all tenants to finish", || {
        [a, b, c].iter().all(|&t| {
            handle
                .frame(t)
                .is_some_and(|f| f.obs.all_finished && !f.obs.jobs.is_empty())
        })
    });
    let summary = handle.shutdown().unwrap();
    let script = summary.script.expect("recording was on");
    assert!(script.ticks > 0);
    assert_eq!(script.traces.len(), 3);
    assert!(
        script.traces.iter().all(|t| !t.hashes.is_empty()),
        "every tenant must have recorded hash points"
    );

    // offline, single-threaded, no wall clock: must land on the exact
    // hashes the live run recorded
    let outcome = script.replay();
    assert!(
        outcome.verified,
        "replay diverged: {:?}",
        outcome.mismatches
    );
    assert_eq!(outcome.tenants, 3);
    assert!(outcome.points_checked > 10);

    // and the script round-trips through JSON
    let json = serde_json::to_string(&script).unwrap();
    let reloaded: realtime::IngressScript = serde_json::from_str(&json).unwrap();
    assert_eq!(reloaded, script);
    assert!(reloaded.replay().verified);
}

#[test]
fn commands_validate_and_errors_do_not_kill_the_service() {
    let handle = RealtimeService::spawn(fast_config());
    // bad system label
    assert!(handle.create_tenant("x", 8, 1, "nope").is_err());
    // no such tenant
    assert!(handle.submit_job(9, "grep", 1024.0, 4).is_err());
    let t = handle.create_tenant("x", 8, 1, "SMapReduce").unwrap();
    // unknown benchmark
    assert!(handle.submit_job(t, "not-a-bench", 1024.0, 4).is_err());
    // fault before any job booted the cluster
    assert!(handle.inject_fault(t, 0, 1000, None).is_err());
    // fault must be strictly in the future
    handle.submit_job(t, "grep", 512.0, 2).unwrap();
    assert!(handle.inject_fault(t, 0, 0, None).is_err());
    // the service is still healthy after all those rejections
    wait_for("tenant to finish", || {
        handle.frame(t).is_some_and(|f| f.obs.all_finished)
    });
    let summary = handle.shutdown().unwrap();
    assert!(summary.tenants[0].error.is_none());
    // failed commands were not recorded into the script
    let script = summary.script.unwrap();
    assert!(script.replay().verified);
    assert_eq!(
        script
            .commands
            .iter()
            .filter(|c| matches!(c.cmd, Command::SubmitJob { .. }))
            .count(),
        1
    );
}

#[test]
fn snapshot_through_ingress_restores_under_checkpoint() {
    let dir = std::env::temp_dir().join(format!("realtime-snap-{}", std::process::id()));
    let handle = RealtimeService::spawn(fast_config());
    let t = handle.create_tenant("snap", 8, 7, "SMapReduce").unwrap();
    handle.submit_job(t, "terasort", 2048.0, 4).unwrap();
    wait_for("some progress", || {
        handle.frame(t).is_some_and(|f| f.obs.at_ms > 0)
    });
    let path = handle.snapshot(t, dir.to_str().unwrap()).unwrap();
    let summary = handle.shutdown().unwrap();
    assert!(summary.tenants[0].error.is_none());

    // the capsule loads under the checkpoint crate and carries a valid
    // rolling hash chain
    let snap = checkpoint::load(std::path::Path::new(&path)).expect("capsule loads");
    assert!(snap.state.at().as_millis() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

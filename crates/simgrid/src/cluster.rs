//! Cluster topology: the set of simulated machines.

use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a node within a [`ClusterSpec`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Checked dense index into a cluster-sized slab of `nodes` entries.
    ///
    /// Every per-node hot path (fabric water-filling, usage sampling,
    /// replica postings, rate scratch) indexes flat vectors with this, so
    /// an out-of-cluster id fails loudly here instead of corrupting a
    /// neighbouring node's slot.
    #[inline]
    pub fn slot(self, nodes: usize) -> usize {
        assert!(
            self.0 < nodes,
            "node{} outside dense cluster of {nodes} nodes",
            self.0
        );
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A set of worker nodes. The job tracker / resource manager and the HDFS
/// name node run on dedicated machines outside this set, as in the paper's
/// 18-node testbed (16 workers + 2 masters), so master overhead never
/// competes with tasks.
///
/// The paper's evaluation cluster is homogeneous (`overrides` empty); the
/// per-node `overrides` support the heterogeneous-cluster extension the
/// paper names as future work (§VII).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Default per-worker hardware description.
    pub node: NodeSpec,
    /// Number of worker nodes (task trackers / node managers / data nodes).
    pub workers: usize,
    /// Per-node exceptions to `node`, keyed by worker index.
    #[serde(default)]
    pub overrides: BTreeMap<usize, NodeSpec>,
}

impl ClusterSpec {
    /// The paper's evaluation testbed: 16 workers of [`NodeSpec::paper_worker`].
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec {
            node: NodeSpec::paper_worker(),
            workers: 16,
            overrides: BTreeMap::new(),
        }
    }

    /// A small testbed for fast unit/integration tests.
    pub fn small(workers: usize) -> ClusterSpec {
        ClusterSpec {
            node: NodeSpec::paper_worker(),
            workers,
            overrides: BTreeMap::new(),
        }
    }

    /// A two-class heterogeneous testbed: `strong` workers of the default
    /// spec followed by `weak` workers of `weak_spec` (the §VII future-work
    /// setting: "the heterogeneous environment, which may be a common
    /// setting in some small clusters").
    pub fn mixed(strong: usize, weak: usize, weak_spec: NodeSpec) -> ClusterSpec {
        let mut overrides = BTreeMap::new();
        for i in strong..strong + weak {
            overrides.insert(i, weak_spec);
        }
        ClusterSpec {
            node: NodeSpec::paper_worker(),
            workers: strong + weak,
            overrides,
        }
    }

    /// The hardware of one worker.
    pub fn node_spec(&self, id: NodeId) -> &NodeSpec {
        self.overrides.get(&id.0).unwrap_or(&self.node)
    }

    /// True when every worker shares the default spec.
    pub fn is_homogeneous(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Iterator over the worker node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.workers).map(NodeId)
    }

    /// Whether `id` names a worker in this cluster.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_v() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.workers, 16);
        assert_eq!(c.node.cores, 16.0);
        assert_eq!(c.node.nic_bw, 125.0);
    }

    #[test]
    fn nodes_enumerates_all_workers() {
        let c = ClusterSpec::small(4);
        let ids: Vec<NodeId> = c.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(c.contains(NodeId(3)));
        assert!(!c.contains(NodeId(4)));
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node7");
    }

    #[test]
    fn slot_checks_the_dense_bound() {
        assert_eq!(NodeId(3).slot(4), 3);
        assert!(std::panic::catch_unwind(|| NodeId(4).slot(4)).is_err());
    }

    #[test]
    fn mixed_cluster_overrides_tail_nodes() {
        let weak = NodeSpec {
            cores: 8.0,
            ..NodeSpec::paper_worker()
        };
        let c = ClusterSpec::mixed(3, 2, weak);
        assert_eq!(c.workers, 5);
        assert!(!c.is_homogeneous());
        assert_eq!(c.node_spec(NodeId(0)).cores, 16.0);
        assert_eq!(c.node_spec(NodeId(2)).cores, 16.0);
        assert_eq!(c.node_spec(NodeId(3)).cores, 8.0);
        assert_eq!(c.node_spec(NodeId(4)).cores, 8.0);
        assert!(ClusterSpec::small(2).is_homogeneous());
    }
}

//! Switched-fabric network model.
//!
//! Nodes are connected through a non-blocking switch (the paper's testbed:
//! one 16-port GbE switch), so the only capacity constraints are the NICs:
//! each node has an egress cap and an ingress cap of `nic_bw` MB/s.
//! Bandwidth is divided among active [`Flow`]s by **max-min fairness**
//! (progressive filling / water-filling): repeatedly find the most
//! constrained port, give every unfrozen flow through it an equal share,
//! freeze those flows, subtract, and continue. Flows may also carry a finite
//! demand cap (a shuffle fetch cannot consume more than the data remaining).
//!
//! **Incast**: when many senders converge on one receiver, TCP throughput
//! collapses below the link rate. The paper mitigates (not eliminates) this
//! by lowering `RTO_min` from 200 ms to 1 ms; we model the residual effect
//! as a receiver-side efficiency factor that decays gently with the number
//! of concurrent incoming flows. This is what makes "too many reduce slots
//! jam the network" true in the reproduction, exactly the behaviour §III-B3
//! relies on.

use crate::cluster::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Recycled dense scratch for [`Fabric::allocate_into`]: cluster-sized
/// slabs indexed by `NodeId` plus a flow-sized worklist. Reset is O(1) via
/// epoch/round stamps — slabs are never cleared, only re-stamped — so a
/// warm scratch makes the whole allocate phase allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FabricScratch {
    /// Remaining egress capacity per node (valid where `cap_eg_stamp` is
    /// the current epoch).
    egress_cap: Vec<f64>,
    /// Remaining ingress capacity per node.
    ingress_cap: Vec<f64>,
    cap_eg_stamp: Vec<u64>,
    cap_in_stamp: Vec<u64>,
    /// Total incoming flows per receiver (drives the incast model).
    incoming: Vec<u32>,
    /// Unfrozen flows per port this round (valid where the matching
    /// `users_*_stamp` equals the current round).
    eg_users: Vec<u32>,
    in_users: Vec<u32>,
    users_eg_stamp: Vec<u64>,
    users_in_stamp: Vec<u64>,
    /// Bottleneck marks: a port is bottlenecked this round iff its mark
    /// equals the current round.
    eg_mark: Vec<u64>,
    in_mark: Vec<u64>,
    /// Sorted worklist of unfrozen flow indices.
    active: Vec<usize>,
    /// Bumped once per allocate call; stamps cap/incoming validity.
    epoch: u64,
    /// Bumped once per filling round; stamps user counts and marks.
    round: u64,
}

impl FabricScratch {
    pub fn new() -> FabricScratch {
        FabricScratch::default()
    }

    /// Grow every node slab to at least `nodes` entries (never shrinks).
    fn ensure(&mut self, nodes: usize) {
        if self.egress_cap.len() < nodes {
            self.egress_cap.resize(nodes, 0.0);
            self.ingress_cap.resize(nodes, 0.0);
            self.cap_eg_stamp.resize(nodes, 0);
            self.cap_in_stamp.resize(nodes, 0);
            self.incoming.resize(nodes, 0);
            self.eg_users.resize(nodes, 0);
            self.in_users.resize(nodes, 0);
            self.users_eg_stamp.resize(nodes, 0);
            self.users_in_stamp.resize(nodes, 0);
            self.eg_mark.resize(nodes, 0);
            self.in_mark.resize(nodes, 0);
        }
    }

    /// Capacity footprint in cells (node slab width + worklist capacity);
    /// monotonic, so arenas can detect growth by comparing snapshots.
    pub fn footprint(&self) -> usize {
        self.egress_cap.capacity() + self.active.capacity()
    }

    /// Approximate resident bytes across all slabs (peak-RSS proxy).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let node = self.egress_cap.capacity();
        node * (2 * size_of::<f64>() + 3 * size_of::<u32>() + 6 * size_of::<u64>())
            + self.active.capacity() * size_of::<usize>()
    }
}

/// Identifier of a flow within one allocation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// One point-to-point transfer competing for bandwidth this tick.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    pub id: FlowId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Upper bound on useful rate (MB/s); `f64::INFINITY` for "as fast as
    /// the network allows".
    pub demand: f64,
}

/// Fabric-wide parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Per-node NIC bandwidth in each direction (MB/s).
    pub nic_bw: f64,
    /// Incast decay coefficient per concurrent incoming flow beyond
    /// `incast_free_flows`. With the paper's 1 ms `RTO_min` tuning this is
    /// mild; set higher to model an untuned network.
    pub incast_coeff: f64,
    /// Number of concurrent incoming flows a receiver sustains at full
    /// efficiency.
    pub incast_free_flows: f64,
    /// Per-flow protocol efficiency cap (TCP never achieves 100% of line
    /// rate; headers, ACK clocking).
    pub protocol_eff: f64,
}

impl FabricConfig {
    /// The paper's testbed: 1 GbE per node, `RTO_min` = 1 ms (mild incast).
    pub fn paper_gbe() -> FabricConfig {
        FabricConfig {
            nic_bw: 125.0,
            // Residual incast after the RTO_min=1 ms tuning: mild around
            // the default 2-reducers-per-node regime (~10 incoming flows),
            // but heavy fan-in (5+ reducers × 5 fetchers converging on one
            // port) still collapses badly — the "network jam" §III-B3
            // guards against.
            incast_coeff: 0.08,
            incast_free_flows: 10.0,
            protocol_eff: 0.94,
        }
    }

    /// Effective ingress capacity of a receiver with `n` concurrent
    /// incoming flows.
    pub fn ingress_capacity(&self, n: usize) -> f64 {
        let n = n as f64;
        let eff = if n <= self.incast_free_flows {
            1.0
        } else {
            1.0 / (1.0 + self.incast_coeff * (n - self.incast_free_flows))
        };
        self.nic_bw * self.protocol_eff * eff
    }

    /// Egress capacity of a sender (no incast on the send side).
    pub fn egress_capacity(&self) -> f64 {
        self.nic_bw * self.protocol_eff
    }
}

/// The fabric allocator. Stateless between rounds; kept as a struct so the
/// engine can hold one with its config.
///
/// ```
/// use simgrid::network::{Fabric, FabricConfig, Flow, FlowId};
/// use simgrid::cluster::NodeId;
///
/// let fabric = Fabric::new(FabricConfig::paper_gbe());
/// // two flows into one receiver: the NIC is shared max-min fairly
/// let flows = vec![
///     Flow { id: FlowId(0), src: NodeId(1), dst: NodeId(0), demand: f64::INFINITY },
///     Flow { id: FlowId(1), src: NodeId(2), dst: NodeId(0), demand: f64::INFINITY },
/// ];
/// let rates = fabric.allocate(&flows);
/// assert!((rates[&FlowId(0)] - rates[&FlowId(1)]).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Fabric {
    pub config: FabricConfig,
}

/// Result of one allocation round: rate per flow (MB/s).
pub type FlowRates = HashMap<FlowId, f64>;

impl Fabric {
    pub fn new(config: FabricConfig) -> Fabric {
        Fabric { config }
    }

    /// Max-min fair allocation of the given flows.
    ///
    /// Convenience wrapper over [`Fabric::allocate_into`] with a private
    /// scratch; callers in a step loop should hold a [`FabricScratch`] and
    /// a rate buffer instead and call `allocate_into` directly.
    pub fn allocate(&self, flows: &[Flow]) -> FlowRates {
        let nodes = flows
            .iter()
            .map(|f| f.src.0.max(f.dst.0) + 1)
            .max()
            .unwrap_or(0);
        let mut scratch = FabricScratch::new();
        let mut rates = Vec::new();
        self.allocate_into(flows, nodes, &mut scratch, &mut rates);
        flows.iter().zip(&rates).map(|(f, &r)| (f.id, r)).collect()
    }

    /// Max-min fair allocation over dense per-node slabs.
    ///
    /// `rates[i]` receives the rate of `flows[i]` (positional — callers
    /// that need `FlowId` keys zip against their own flow list). Every
    /// endpoint must be a valid dense index below `nodes`. The scratch is
    /// reset in place via epoch stamps, so a warm call allocates nothing.
    ///
    /// Guarantees (checked by unit and property tests, plus a differential
    /// proptest against the retired `HashMap` reference implementation):
    /// * no flow exceeds its demand;
    /// * per-port totals respect ingress/egress capacities;
    /// * the allocation is max-min fair: a flow's rate can only be below
    ///   the fair share of every port it crosses if its demand caps it;
    /// * bit-identical results to the reference implementation.
    pub fn allocate_into(
        &self,
        flows: &[Flow],
        nodes: usize,
        s: &mut FabricScratch,
        rates: &mut Vec<f64>,
    ) {
        rates.clear();
        rates.resize(flows.len(), 0.0);
        if flows.is_empty() {
            return;
        }
        s.ensure(nodes);
        s.epoch += 1;
        let epoch = s.epoch;

        // Pass 1: validate endpoints, count incoming flows per receiver,
        // stamp fresh egress capacities. Ports are (node, direction).
        for f in flows {
            let src = f.src.slot(nodes);
            let dst = f.dst.slot(nodes);
            if s.cap_eg_stamp[src] != epoch {
                s.cap_eg_stamp[src] = epoch;
                s.egress_cap[src] = self.config.egress_capacity();
            }
            if s.cap_in_stamp[dst] != epoch {
                s.cap_in_stamp[dst] = epoch;
                s.incoming[dst] = 0;
            }
            s.incoming[dst] += 1;
        }
        // Pass 2: ingress capacity depends on the *total* incoming count
        // (incast), so it can only be stamped after pass 1. Recomputing
        // per flow is idempotent — same pure function of the final count.
        for f in flows {
            let dst = f.dst.0;
            s.ingress_cap[dst] = self.config.ingress_capacity(s.incoming[dst] as usize);
        }

        // Unfrozen flow indices; kept sorted by construction (forward
        // compaction preserves order), which fixes the freeze order and
        // hence bit-exact determinism.
        s.active.clear();
        s.active.extend(0..flows.len());

        // Progressive filling: at each step compute the bottleneck fair
        // share; freeze demand-limited flows below it first.
        while !s.active.is_empty() {
            s.round += 1;
            let round = s.round;
            // Count unfrozen flows per port (lazy round-stamped reset).
            for &i in &s.active {
                let (src, dst) = (flows[i].src.0, flows[i].dst.0);
                if s.users_eg_stamp[src] != round {
                    s.users_eg_stamp[src] = round;
                    s.eg_users[src] = 0;
                }
                s.eg_users[src] += 1;
                if s.users_in_stamp[dst] != round {
                    s.users_in_stamp[dst] = round;
                    s.in_users[dst] = 0;
                }
                s.in_users[dst] += 1;
            }
            // Bottleneck share = min over ports of remaining/users. Each
            // active port's quotient is visited at least once (duplicates
            // don't change a min), so this equals the per-port min.
            let mut share = f64::INFINITY;
            for &i in &s.active {
                let (src, dst) = (flows[i].src.0, flows[i].dst.0);
                share = share.min(s.egress_cap[src] / s.eg_users[src] as f64);
                share = share.min(s.ingress_cap[dst] / s.in_users[dst] as f64);
            }
            // Guard against accumulated float error driving a port's
            // remaining capacity a hair below zero.
            let share_floor = share.max(0.0);

            // Flows whose demand is at or below the share freeze at
            // demand. Membership depends only on (demand, share), so the
            // scan and the freeze can share one forward pass.
            let any_demand_limited = s.active.iter().any(|&i| flows[i].demand <= share + 1e-12);
            if any_demand_limited {
                let mut kept = 0;
                for k in 0..s.active.len() {
                    let i = s.active[k];
                    if flows[i].demand <= share + 1e-12 {
                        let r = flows[i].demand.max(0.0);
                        rates[i] = r;
                        s.egress_cap[flows[i].src.0] -= r;
                        s.ingress_cap[flows[i].dst.0] -= r;
                    } else {
                        s.active[kept] = i;
                        kept += 1;
                    }
                }
                s.active.truncate(kept);
                continue; // recompute shares with capacity released
            }

            // Otherwise freeze every flow crossing a bottleneck port.
            // Marks are computed before any capacity is subtracted.
            for &i in &s.active {
                let (src, dst) = (flows[i].src.0, flows[i].dst.0);
                if (s.egress_cap[src] / s.eg_users[src] as f64 - share).abs() < 1e-9 {
                    s.eg_mark[src] = round;
                }
                if (s.ingress_cap[dst] / s.in_users[dst] as f64 - share).abs() < 1e-9 {
                    s.in_mark[dst] = round;
                }
            }
            let mut kept = 0;
            let mut froze_any = false;
            for k in 0..s.active.len() {
                let i = s.active[k];
                if s.eg_mark[flows[i].src.0] == round || s.in_mark[flows[i].dst.0] == round {
                    rates[i] = share_floor;
                    s.egress_cap[flows[i].src.0] -= share_floor;
                    s.ingress_cap[flows[i].dst.0] -= share_floor;
                    froze_any = true;
                } else {
                    s.active[kept] = i;
                    kept += 1;
                }
            }
            s.active.truncate(kept);
            debug_assert!(froze_any, "progressive filling must progress");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows_of(specs: &[(u64, usize, usize, f64)]) -> Vec<Flow> {
        specs
            .iter()
            .map(|&(id, s, d, dem)| Flow {
                id: FlowId(id),
                src: NodeId(s),
                dst: NodeId(d),
                demand: dem,
            })
            .collect()
    }

    fn fabric() -> Fabric {
        Fabric::new(FabricConfig::paper_gbe())
    }

    /// The retired `HashMap`-keyed water-filling, kept verbatim as the
    /// differential reference: the dense implementation must reproduce it
    /// bit for bit on every topology, including crash-masked ones.
    fn reference_allocate(fabric: &Fabric, flows: &[Flow]) -> FlowRates {
        let mut rates: FlowRates = HashMap::with_capacity(flows.len());
        if flows.is_empty() {
            return rates;
        }
        let mut egress_cap: HashMap<NodeId, f64> = HashMap::new();
        let mut ingress_cap: HashMap<NodeId, f64> = HashMap::new();
        let mut incoming_count: HashMap<NodeId, usize> = HashMap::new();
        for f in flows {
            *incoming_count.entry(f.dst).or_insert(0) += 1;
        }
        for f in flows {
            egress_cap
                .entry(f.src)
                .or_insert_with(|| fabric.config.egress_capacity());
            ingress_cap
                .entry(f.dst)
                .or_insert_with(|| fabric.config.ingress_capacity(incoming_count[&f.dst]));
        }
        let mut active: Vec<usize> = (0..flows.len()).collect();
        while !active.is_empty() {
            let mut eg_users: HashMap<NodeId, usize> = HashMap::new();
            let mut in_users: HashMap<NodeId, usize> = HashMap::new();
            for &i in &active {
                *eg_users.entry(flows[i].src).or_insert(0) += 1;
                *in_users.entry(flows[i].dst).or_insert(0) += 1;
            }
            let mut share = f64::INFINITY;
            for (n, &u) in &eg_users {
                share = share.min(egress_cap[n] / u as f64);
            }
            for (n, &u) in &in_users {
                share = share.min(ingress_cap[n] / u as f64);
            }
            let share_floor = share.max(0.0);
            let demand_limited: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| flows[i].demand <= share + 1e-12)
                .collect();
            if !demand_limited.is_empty() {
                for i in demand_limited {
                    let r = flows[i].demand.max(0.0);
                    rates.insert(flows[i].id, r);
                    *egress_cap.get_mut(&flows[i].src).expect("src port") -= r;
                    *ingress_cap.get_mut(&flows[i].dst).expect("dst port") -= r;
                    active.retain(|&a| a != i);
                }
                continue;
            }
            let mut bottleneck_ports_eg: Vec<NodeId> = Vec::new();
            let mut bottleneck_ports_in: Vec<NodeId> = Vec::new();
            for (n, &u) in &eg_users {
                if (egress_cap[n] / u as f64 - share).abs() < 1e-9 {
                    bottleneck_ports_eg.push(*n);
                }
            }
            for (n, &u) in &in_users {
                if (ingress_cap[n] / u as f64 - share).abs() < 1e-9 {
                    bottleneck_ports_in.push(*n);
                }
            }
            let frozen: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| {
                    bottleneck_ports_eg.contains(&flows[i].src)
                        || bottleneck_ports_in.contains(&flows[i].dst)
                })
                .collect();
            debug_assert!(!frozen.is_empty(), "progressive filling must progress");
            for i in frozen {
                rates.insert(flows[i].id, share_floor);
                *egress_cap.get_mut(&flows[i].src).expect("src port") -= share_floor;
                *ingress_cap.get_mut(&flows[i].dst).expect("dst port") -= share_floor;
                active.retain(|&a| a != i);
            }
        }
        rates
    }

    /// Bit-exact comparison of the dense allocator (through a deliberately
    /// dirty, reused scratch) against the reference.
    fn assert_matches_reference(f: &Fabric, flows: &[Flow], nodes: usize, s: &mut FabricScratch) {
        let mut rates = Vec::new();
        f.allocate_into(flows, nodes, s, &mut rates);
        let reference = reference_allocate(f, flows);
        assert_eq!(rates.len(), flows.len());
        for (fl, r) in flows.iter().zip(&rates) {
            assert_eq!(
                r.to_bits(),
                reference[&fl.id].to_bits(),
                "flow {:?}: dense {} != reference {}",
                fl.id,
                r,
                reference[&fl.id]
            );
        }
    }

    #[test]
    fn empty_is_empty() {
        assert!(fabric().allocate(&[]).is_empty());
    }

    #[test]
    fn single_flow_gets_line_rate() {
        let f = fabric();
        let r = f.allocate(&flows_of(&[(1, 0, 1, f64::INFINITY)]));
        let line = f.config.egress_capacity();
        assert!((r[&FlowId(1)] - line).abs() < 1e-9);
    }

    #[test]
    fn demand_cap_respected() {
        let f = fabric();
        let r = f.allocate(&flows_of(&[(1, 0, 1, 10.0)]));
        assert!((r[&FlowId(1)] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn two_flows_share_receiver_equally() {
        let f = fabric();
        let r = f.allocate(&flows_of(&[
            (1, 0, 2, f64::INFINITY),
            (2, 1, 2, f64::INFINITY),
        ]));
        assert!((r[&FlowId(1)] - r[&FlowId(2)]).abs() < 1e-9);
        let total = r[&FlowId(1)] + r[&FlowId(2)];
        assert!(total <= f.config.ingress_capacity(2) + 1e-9);
        assert!(
            total >= f.config.ingress_capacity(2) - 1e-6,
            "work-conserving"
        );
    }

    #[test]
    fn small_demand_releases_capacity_to_others() {
        let f = fabric();
        let r = f.allocate(&flows_of(&[(1, 0, 2, 5.0), (2, 1, 2, f64::INFINITY)]));
        let cap = f.config.ingress_capacity(2);
        assert!((r[&FlowId(1)] - 5.0).abs() < 1e-12);
        assert!((r[&FlowId(2)] - (cap - 5.0)).abs() < 1e-6);
    }

    #[test]
    fn sender_side_bottleneck() {
        let f = fabric();
        // one sender fanning out to two receivers: egress is the bottleneck
        let r = f.allocate(&flows_of(&[
            (1, 0, 1, f64::INFINITY),
            (2, 0, 2, f64::INFINITY),
        ]));
        let eg = f.config.egress_capacity();
        assert!((r[&FlowId(1)] + r[&FlowId(2)] - eg).abs() < 1e-6);
    }

    #[test]
    fn incast_degrades_aggregate_ingress() {
        let f = fabric();
        // 30 senders into one receiver: aggregate below line rate
        let flows: Vec<Flow> = (0..30)
            .map(|i| Flow {
                id: FlowId(i),
                src: NodeId(i as usize + 1),
                dst: NodeId(0),
                demand: f64::INFINITY,
            })
            .collect();
        let r = f.allocate(&flows);
        let total: f64 = r.values().sum();
        assert!(total < f.config.nic_bw * f.config.protocol_eff - 1.0);
        assert!((total - f.config.ingress_capacity(30)).abs() < 1e-6);
    }

    #[test]
    fn capacities_never_exceeded() {
        let f = fabric();
        let flows = flows_of(&[
            (1, 0, 3, f64::INFINITY),
            (2, 1, 3, 40.0),
            (3, 2, 3, f64::INFINITY),
            (4, 0, 4, 80.0),
            (5, 2, 4, f64::INFINITY),
        ]);
        let r = f.allocate(&flows);
        check_feasible(&f, &flows, &r);
    }

    fn check_feasible(f: &Fabric, flows: &[Flow], rates: &FlowRates) {
        let mut eg: HashMap<NodeId, f64> = HashMap::new();
        let mut ing: HashMap<NodeId, f64> = HashMap::new();
        let mut cnt: HashMap<NodeId, usize> = HashMap::new();
        for fl in flows {
            *cnt.entry(fl.dst).or_insert(0) += 1;
        }
        for fl in flows {
            let r = rates[&fl.id];
            assert!(r >= 0.0);
            assert!(r <= fl.demand + 1e-9, "flow exceeds demand");
            *eg.entry(fl.src).or_insert(0.0) += r;
            *ing.entry(fl.dst).or_insert(0.0) += r;
        }
        for (_, v) in eg {
            assert!(v <= f.config.egress_capacity() + 1e-6);
        }
        for (n, v) in ing {
            assert!(v <= f.config.ingress_capacity(cnt[&n]) + 1e-6);
        }
    }

    #[test]
    fn deterministic_allocation() {
        let f = fabric();
        let flows = flows_of(&[
            (1, 0, 3, f64::INFINITY),
            (2, 1, 3, 40.0),
            (3, 2, 3, f64::INFINITY),
        ]);
        let a = f.allocate(&flows);
        let b = f.allocate(&flows);
        for (k, v) in &a {
            assert_eq!(v.to_bits(), b[k].to_bits());
        }
    }

    #[test]
    fn zero_demand_flow_gets_zero() {
        let f = fabric();
        let r = f.allocate(&flows_of(&[(1, 0, 1, 0.0), (2, 0, 1, f64::INFINITY)]));
        assert_eq!(r[&FlowId(1)], 0.0);
        assert!(r[&FlowId(2)] > 0.0);
    }

    /// The max-min criterion: every flow is either capped by its own
    /// demand, or crosses at least one *saturated* port on which no other
    /// flow holds a strictly larger rate (so its rate cannot be raised
    /// without lowering an equal-or-smaller flow).
    fn check_max_min(f: &Fabric, flows: &[Flow], rates: &FlowRates) {
        let mut eg_used: HashMap<NodeId, f64> = HashMap::new();
        let mut in_used: HashMap<NodeId, f64> = HashMap::new();
        let mut cnt: HashMap<NodeId, usize> = HashMap::new();
        for fl in flows {
            *cnt.entry(fl.dst).or_insert(0) += 1;
        }
        for fl in flows {
            *eg_used.entry(fl.src).or_insert(0.0) += rates[&fl.id];
            *in_used.entry(fl.dst).or_insert(0.0) += rates[&fl.id];
        }
        for fl in flows {
            let r = rates[&fl.id];
            if r >= fl.demand - 1e-6 {
                continue; // demand-capped
            }
            let eg_sat = eg_used[&fl.src] >= f.config.egress_capacity() - 1e-6;
            let in_sat = in_used[&fl.dst] >= f.config.ingress_capacity(cnt[&fl.dst]) - 1e-6;
            assert!(
                eg_sat || in_sat,
                "flow {:?} below demand but crosses no saturated port",
                fl.id
            );
            // the flow must be maximal on at least one of its saturated
            // ports (that port is its bottleneck: raising the flow would
            // require lowering an equal-or-smaller co-flow there)
            let max_on = |same_port: &dyn Fn(&Flow) -> bool| {
                flows
                    .iter()
                    .filter(|o| o.id != fl.id && same_port(o))
                    .all(|o| rates[&o.id] <= r + 1e-6)
            };
            let eg_bottleneck = eg_sat && max_on(&|o: &Flow| o.src == fl.src);
            let in_bottleneck = in_sat && max_on(&|o: &Flow| o.dst == fl.dst);
            assert!(
                eg_bottleneck || in_bottleneck,
                "flow {:?} ({r}) is not maximal on any saturated port it crosses",
                fl.id
            );
        }
    }

    #[test]
    fn max_min_criterion_on_fixed_topology() {
        let f = fabric();
        let flows = flows_of(&[
            (1, 0, 3, f64::INFINITY),
            (2, 1, 3, 40.0),
            (3, 2, 3, f64::INFINITY),
            (4, 0, 4, 80.0),
            (5, 2, 4, f64::INFINITY),
            (6, 5, 6, 3.0),
        ]);
        let rates = f.allocate(&flows);
        check_max_min(&f, &flows, &rates);
    }

    proptest::proptest! {
        /// Full max-min fairness on random topologies.
        #[test]
        fn prop_max_min_fair(
            specs in proptest::collection::vec(
                (0u64..1000, 0usize..6, 0usize..6, 0f64..300.0), 1..25)
        ) {
            let mut seen = std::collections::HashSet::new();
            let flows: Vec<Flow> = specs.iter()
                .filter(|(id, s, d, _)| *s != *d && seen.insert(*id))
                .map(|&(id, s, d, dem)| Flow {
                    id: FlowId(id), src: NodeId(s), dst: NodeId(d), demand: dem,
                })
                .collect();
            let f = fabric();
            let rates = f.allocate(&flows);
            check_max_min(&f, &flows, &rates);
        }

        #[test]
        fn prop_feasible_and_demand_capped(
            specs in proptest::collection::vec(
                (0u64..1000, 0usize..8, 0usize..8, 0f64..200.0), 1..40)
        ) {
            // de-duplicate flow ids and drop self-flows
            let mut seen = std::collections::HashSet::new();
            let flows: Vec<Flow> = specs.iter()
                .filter(|(id, s, d, _)| *s != *d && seen.insert(*id))
                .map(|&(id, s, d, dem)| Flow {
                    id: FlowId(id), src: NodeId(s), dst: NodeId(d), demand: dem,
                })
                .collect();
            let f = fabric();
            let rates = f.allocate(&flows);
            proptest::prop_assert_eq!(rates.len(), flows.len());
            check_feasible(&f, &flows, &rates);
        }

        /// Differential pinning: the dense slab allocator reproduces the
        /// retired HashMap reference bit for bit on random topologies and
        /// flow sets, with random crash masks applied the way the engine
        /// applies them (flows touching a down node are never built), and
        /// with the scratch deliberately reused dirty between cases.
        #[test]
        fn prop_dense_matches_hashmap_reference(
            specs in proptest::collection::vec(
                (0u64..1000, 0usize..10, 0usize..10, 0f64..300.0), 1..40),
            down_mask in 0u32..1024,
        ) {
            let up = |n: NodeId| down_mask & (1u32 << n.0) == 0;
            let mut seen = std::collections::HashSet::new();
            let flows: Vec<Flow> = specs.iter()
                .filter(|(id, s, d, _)| *s != *d && seen.insert(*id))
                .map(|&(id, s, d, dem)| Flow {
                    id: FlowId(id), src: NodeId(s), dst: NodeId(d),
                    // fold the top of the demand range to "unbounded" so
                    // infinite-demand flows are exercised too
                    demand: if dem >= 290.0 { f64::INFINITY } else { dem },
                })
                .filter(|f| up(f.src) && up(f.dst))
                .collect();
            let f = fabric();
            let mut scratch = FabricScratch::new();
            // dirty the scratch with an unrelated allocation first: the
            // epoch-stamped reset must make the second call independent
            let mut junk = Vec::new();
            let decoy = flows_of(&[(999, 0, 9, 17.0), (998, 9, 0, f64::INFINITY)]);
            f.allocate_into(&decoy, 10, &mut scratch, &mut junk);
            assert_matches_reference(&f, &flows, 10, &mut scratch);
            // and again with the now-warm scratch, same flows
            assert_matches_reference(&f, &flows, 10, &mut scratch);
        }

        #[test]
        fn prop_work_conserving_single_receiver(n in 1usize..25) {
            // all-infinite demands into one receiver must saturate it
            let flows: Vec<Flow> = (0..n).map(|i| Flow {
                id: FlowId(i as u64), src: NodeId(i + 1), dst: NodeId(0),
                demand: f64::INFINITY,
            }).collect();
            let f = fabric();
            let total: f64 = f.allocate(&flows).values().sum();
            let cap = f.config.ingress_capacity(n);
            proptest::prop_assert!((total - cap).abs() < 1e-6);
        }
    }
}

//! Per-node utilization sampling.
//!
//! The engine's allocate phase already computes, per step, how much CPU,
//! disk and NIC bandwidth every node is actually granted — but until now
//! that information died with the step. [`NodeUsageSampler`] accumulates it
//! as *time-weighted integrals* between sample boundaries, so the recorded
//! utilization of a window is exact regardless of how the adaptive stepper
//! partitioned it into steps (one 30 s macro-step and thirty 1 s ticks
//! integrate to the same number). At each sample boundary every node's
//! window means — normalized by the integrated step time, so the stamp's
//! grid alignment doesn't matter — are appended to per-metric
//! [`TimeSeries`]; at report time the series are thinned to a bounded point
//! count, keeping serialized size independent of run length. Windows in
//! which a node integrated no time (it was down, or the run hadn't started)
//! produce no point: a gap in the timeline *is* the downtime.

use crate::metrics::TimeSeries;
use crate::node::NodeSpec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Per-node window accumulators: integrals of rate × seconds, plus the
/// seconds integrated.
const CHANNELS: usize = 6;
const CPU: usize = 0;
const DISK: usize = 1;
const NIC: usize = 2;
const MAP_OCC: usize = 3;
const REDUCE_OCC: usize = 4;
const DT: usize = 5;

/// Upper bound on points kept per exported series (see
/// [`NodeUsageSampler::into_report`]).
pub const MAX_UTILIZATION_POINTS: usize = 512;

/// Exported utilization timelines of one node. Utilizations are fractions
/// of the node's capacity in `[0, 1]`; occupancies are slot counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeUtilization {
    pub node: usize,
    /// Granted CPU ÷ cores, per sample window.
    pub cpu: TimeSeries,
    /// Granted disk bandwidth ÷ `disk_bw`.
    pub disk: TimeSeries,
    /// Fabric traffic ÷ `nic_bw` (the busier direction of the full-duplex
    /// link, so 1.0 means one direction is saturated).
    pub nic: TimeSeries,
    /// Mean occupied map slots over the window.
    pub map_occupied: TimeSeries,
    /// Mean occupied reduce slots over the window.
    pub reduce_occupied: TimeSeries,
}

/// Accumulates per-node resource grants between sample boundaries.
///
/// Usage per step: call [`NodeUsageSampler::accumulate`] once per live node
/// with the step's granted *rates* and the step length, then
/// [`NodeUsageSampler::sample`] at each sample boundary. All per-step work
/// is flat array arithmetic — no allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeUsageSampler {
    /// `(cores, disk_bw, nic_bw)` per node.
    caps: Vec<(f64, f64, f64)>,
    /// Window integrals per node.
    acc: Vec<[f64; CHANNELS]>,
    series: Vec<NodeUtilization>,
}

impl NodeUsageSampler {
    pub fn new(specs: &[NodeSpec]) -> NodeUsageSampler {
        NodeUsageSampler {
            caps: specs
                .iter()
                .map(|s| (s.cores, s.disk_bw, s.nic_bw))
                .collect(),
            acc: vec![[0.0; CHANNELS]; specs.len()],
            series: (0..specs.len())
                .map(|node| NodeUtilization {
                    node,
                    ..NodeUtilization::default()
                })
                .collect(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.caps.len()
    }

    /// Fold one step's grants for `node` into the current window:
    /// `cpu_cores` cores' worth of CPU, `disk_rate` MB/s of disk bandwidth,
    /// `nic_rate` MB/s on the busier NIC direction, and the node's current
    /// slot occupancies, all sustained for `dt` seconds.
    // one scalar per channel: a parameter struct would just rename the
    // channels without removing any
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn accumulate(
        &mut self,
        node: usize,
        dt: f64,
        cpu_cores: f64,
        disk_rate: f64,
        nic_rate: f64,
        map_occupied: usize,
        reduce_occupied: usize,
    ) {
        let a = &mut self.acc[node];
        a[CPU] += cpu_cores * dt;
        a[DISK] += disk_rate * dt;
        a[NIC] += nic_rate * dt;
        a[MAP_OCC] += map_occupied as f64 * dt;
        a[REDUCE_OCC] += reduce_occupied as f64 * dt;
        a[DT] += dt;
    }

    /// Fold one step's grants for every node at once — equivalent to one
    /// [`NodeUsageSampler::accumulate`] call per up node, but as a single
    /// pass over dense per-node arrays (the engine's step scratch), cheap
    /// enough for the innermost loop. `nic_in`/`nic_out` are folded to the
    /// busier direction here so callers can hand over raw per-direction
    /// totals.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn accumulate_all(
        &mut self,
        dt: f64,
        up: &[bool],
        cpu: &[f64],
        disk: &[f64],
        nic_in: &[f64],
        nic_out: &[f64],
        map_occupied: &[usize],
        reduce_occupied: &[usize],
    ) {
        let n = self.acc.len();
        assert!(
            up.len() == n
                && cpu.len() == n
                && disk.len() == n
                && nic_in.len() == n
                && nic_out.len() == n
                && map_occupied.len() == n
                && reduce_occupied.len() == n,
            "per-node arrays must cover all {n} nodes"
        );
        for i in 0..n {
            if !up[i] {
                continue;
            }
            let a = &mut self.acc[i];
            a[CPU] += cpu[i] * dt;
            a[DISK] += disk[i] * dt;
            a[NIC] += nic_in[i].max(nic_out[i]) * dt;
            a[MAP_OCC] += map_occupied[i] as f64 * dt;
            a[REDUCE_OCC] += reduce_occupied[i] as f64 * dt;
            a[DT] += dt;
        }
    }

    /// Close the window, stamping each node's normalized window means at
    /// `now`. Nodes that integrated no time this window get no point.
    pub fn sample(&mut self, now: SimTime) {
        for (n, a) in self.acc.iter_mut().enumerate() {
            let dt = a[DT];
            if dt <= 0.0 {
                continue;
            }
            let (cores, disk_bw, nic_bw) = self.caps[n];
            let s = &mut self.series[n];
            s.cpu.push(now, a[CPU] / dt / cores.max(1e-9));
            s.disk.push(now, a[DISK] / dt / disk_bw.max(1e-9));
            s.nic.push(now, a[NIC] / dt / nic_bw.max(1e-9));
            s.map_occupied.push(now, a[MAP_OCC] / dt);
            s.reduce_occupied.push(now, a[REDUCE_OCC] / dt);
            *a = [0.0; CHANNELS];
        }
    }

    /// Consume the sampler, thinning every series to at most
    /// [`MAX_UTILIZATION_POINTS`] points so report size is bounded no
    /// matter how long the run was.
    pub fn into_report(self) -> Vec<NodeUtilization> {
        self.series
            .into_iter()
            .map(|s| {
                let thin = |ts: &TimeSeries| {
                    let mut out = TimeSeries::new();
                    for (t, v) in ts.thinned(MAX_UTILIZATION_POINTS) {
                        out.push(t, v);
                    }
                    out
                };
                NodeUtilization {
                    node: s.node,
                    cpu: thin(&s.cpu),
                    disk: thin(&s.disk),
                    nic: thin(&s.nic),
                    map_occupied: thin(&s.map_occupied),
                    reduce_occupied: thin(&s.reduce_occupied),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(nodes: usize) -> NodeUsageSampler {
        let specs: Vec<NodeSpec> = (0..nodes).map(|_| NodeSpec::paper_worker()).collect();
        NodeUsageSampler::new(&specs)
    }

    #[test]
    fn window_means_are_time_weighted() {
        let mut s = sampler(1);
        // 8 cores for 1s, then 16 cores for 3s → mean 14 cores = 0.875
        s.accumulate(0, 1.0, 8.0, 0.0, 0.0, 2, 1);
        s.accumulate(0, 3.0, 16.0, 110.0, 62.5, 3, 1);
        s.sample(SimTime::from_secs(4));
        let u = &s.series[0];
        let (_, cpu) = u.cpu.last().unwrap();
        assert!((cpu - 14.0 / 16.0).abs() < 1e-12);
        let (_, disk) = u.disk.last().unwrap();
        assert!((disk - (110.0 * 3.0 / 4.0) / 220.0).abs() < 1e-12);
        let (_, occ) = u.map_occupied.last().unwrap();
        assert!((occ - (2.0 + 3.0 * 3.0) / 4.0).abs() < 1e-12);
        let (_, nic) = u.nic.last().unwrap();
        assert!((nic - (62.5 * 3.0 / 4.0) / 125.0).abs() < 1e-12);
    }

    #[test]
    fn partition_invariance_across_steps() {
        // one macro-step vs many micro-steps of the same rates integrate
        // to identical window means — the property that makes sampling
        // correct under adaptive stepping
        let mut coarse = sampler(2);
        let mut fine = sampler(2);
        coarse.accumulate(1, 10.0, 4.0, 50.0, 20.0, 1, 2);
        for _ in 0..1000 {
            fine.accumulate(1, 0.01, 4.0, 50.0, 20.0, 1, 2);
        }
        coarse.sample(SimTime::from_secs(10));
        fine.sample(SimTime::from_secs(10));
        let (a, b) = (&coarse.series[1], &fine.series[1]);
        for (x, y) in [
            (&a.cpu, &b.cpu),
            (&a.disk, &b.disk),
            (&a.nic, &b.nic),
            (&a.reduce_occupied, &b.reduce_occupied),
        ] {
            let (_, xv) = x.last().unwrap();
            let (_, yv) = y.last().unwrap();
            assert!((xv - yv).abs() < 1e-9, "{xv} vs {yv}");
        }
        // node 0 never integrated time: no points at all
        assert!(coarse.series[0].cpu.is_empty());
    }

    #[test]
    fn empty_window_yields_no_point() {
        let mut s = sampler(1);
        s.sample(SimTime::from_secs(1)); // nothing integrated yet
        assert!(s.series[0].cpu.is_empty());
        s.accumulate(0, 1.0, 16.0, 0.0, 0.0, 0, 0);
        s.sample(SimTime::from_secs(2));
        s.sample(SimTime::from_secs(3)); // empty again: gap, not a zero
        assert_eq!(s.series[0].cpu.len(), 1);
    }

    #[test]
    fn report_is_bounded_and_ordered() {
        let mut s = sampler(1);
        for sec in 1..=2000u64 {
            s.accumulate(0, 1.0, 1.0, 0.0, 0.0, 1, 0);
            s.sample(SimTime::from_secs(sec));
        }
        let rep = s.into_report();
        assert_eq!(rep.len(), 1);
        assert!(rep[0].cpu.len() <= MAX_UTILIZATION_POINTS + 1);
        assert_eq!(rep[0].node, 0);
        // endpoints survive thinning
        assert_eq!(rep[0].cpu.last().unwrap().0, SimTime::from_secs(2000));
    }
}

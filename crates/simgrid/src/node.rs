//! Per-node resource contention model.
//!
//! A node runs a set of tasks; each declares a [`TaskDemand`] — the
//! resources it would consume if running at full speed. Each tick the node
//! computes, for every task, a *rate scale* in `(0, 1]`: the fraction of its
//! nominal processing rate it actually achieves given contention. The model
//! combines:
//!
//! * **CPU time-slicing**: demands are served proportionally from the core
//!   pool; once the number of runnable threads exceeds the core count, an
//!   additional context-switch/scheduling overhead shrinks the effective
//!   pool superlinearly (the dominant cause of the paper's thrashing knee).
//! * **Memory oversubscription**: when resident working sets exceed node
//!   memory, a paging penalty `(mem/demand)^k` multiplies CPU efficiency —
//!   the classical thrashing of Denning that the paper cites.
//! * **Shared disk**: read+write bandwidth is shared, with a seek penalty
//!   as the number of concurrent streams grows (sequential scans degrade to
//!   semi-random access).
//!
//! Total node throughput as a function of task count therefore rises
//! (linear region), flattens (a resource saturates) and then falls
//! (overheads dominate) — the Fig. 1 curve, with the knee position set by
//! the per-task demand profile (map-heavy jobs have lighter tasks and thus a
//! later knee than reduce-heavy ones).

use serde::{Deserialize, Serialize};

/// Static capacities of one simulated machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Physical cores available to tasks.
    pub cores: f64,
    /// Memory available to tasks (MB); OS/daemon reservation already
    /// subtracted.
    pub mem_mb: f64,
    /// Aggregate local-disk bandwidth shared by all streams (MB/s).
    pub disk_bw: f64,
    /// NIC bandwidth, each direction (MB/s). Consumed by the fabric model,
    /// carried here so one spec describes the whole machine.
    pub nic_bw: f64,
    /// Context-switch overhead coefficient (dimensionless; larger ⇒ the
    /// throughput curve falls faster beyond the knee).
    pub cs_coeff: f64,
    /// Exponent of the paging penalty once memory is oversubscribed.
    pub paging_exp: f64,
    /// Disk seek penalty coefficient per extra concurrent stream.
    pub seek_coeff: f64,
    /// Number of concurrent disk streams served at full sequential speed
    /// before the seek penalty starts.
    pub seek_free_streams: f64,
}

impl NodeSpec {
    /// The worker-node configuration of the paper's testbed: 4× quad-core
    /// 2.53 GHz (16 cores), 32 GB DDR3 (we reserve 4 GB for OS + DataNode +
    /// TaskTracker daemons), commodity local disks, 1 GbE.
    pub fn paper_worker() -> NodeSpec {
        NodeSpec {
            cores: 16.0,
            mem_mb: 28.0 * 1024.0,
            disk_bw: 220.0,
            nic_bw: 125.0,
            cs_coeff: 0.55,
            paging_exp: 2.0,
            seek_coeff: 0.06,
            seek_free_streams: 4.0,
        }
    }
}

/// Resources one task consumes when running at full speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskDemand {
    /// Cores' worth of CPU at full speed.
    pub cpu_cores: f64,
    /// Runnable threads contributed to the scheduler (JVM worker + service
    /// threads; shuffle fetchers for reduces).
    pub threads: u32,
    /// Resident working set (MB).
    pub mem_mb: f64,
    /// Disk read bandwidth at full speed (MB/s).
    pub disk_read: f64,
    /// Disk write bandwidth at full speed (MB/s).
    pub disk_write: f64,
}

impl TaskDemand {
    /// A demand that consumes nothing (placeholder for barrier-blocked
    /// tasks that occupy a slot without computing).
    pub const IDLE: TaskDemand = TaskDemand {
        cpu_cores: 0.05,
        threads: 1,
        mem_mb: 200.0,
        disk_read: 0.0,
        disk_write: 0.0,
    };
}

/// CPU efficiency from thread-count overheads: 1.0 up to the core count,
/// then `1 / (1 + c·x^1.5)` where `x` is the relative oversubscription.
pub fn cpu_efficiency(spec: &NodeSpec, total_threads: f64) -> f64 {
    if total_threads <= spec.cores {
        1.0
    } else {
        let x = (total_threads - spec.cores) / spec.cores;
        1.0 / (1.0 + spec.cs_coeff * x.powf(1.5))
    }
}

/// Memory efficiency: 1.0 while resident sets fit, else a sharp paging
/// penalty `(capacity / demand)^k`.
pub fn memory_efficiency(spec: &NodeSpec, total_mem: f64) -> f64 {
    if total_mem <= spec.mem_mb {
        1.0
    } else {
        (spec.mem_mb / total_mem).powf(spec.paging_exp)
    }
}

/// Disk efficiency: sequential speed up to `seek_free_streams` concurrent
/// streams, then degrading with seek overhead.
pub fn disk_efficiency(spec: &NodeSpec, streams: f64) -> f64 {
    if streams <= spec.seek_free_streams {
        1.0
    } else {
        1.0 / (1.0 + spec.seek_coeff * (streams - spec.seek_free_streams))
    }
}

/// Compute the achieved rate scale for every task on a node this tick.
///
/// Returns one scale in `(0, 1]` per entry of `demands`; an empty input
/// yields an empty output. Scales are *uniform across tasks with identical
/// demands* (proportional sharing), and the sum of granted CPU never
/// exceeds the (efficiency-adjusted) capacity.
pub fn allocate_node(spec: &NodeSpec, demands: &[TaskDemand]) -> Vec<f64> {
    if demands.is_empty() {
        return Vec::new();
    }
    let total_threads: f64 = demands.iter().map(|d| f64::from(d.threads)).sum();
    let total_mem: f64 = demands.iter().map(|d| d.mem_mb).sum();
    let total_cpu: f64 = demands.iter().map(|d| d.cpu_cores).sum();
    let total_disk: f64 = demands.iter().map(|d| d.disk_read + d.disk_write).sum();
    let disk_streams = demands
        .iter()
        .filter(|d| d.disk_read + d.disk_write > 0.0)
        .count() as f64;

    let cpu_capacity =
        spec.cores * cpu_efficiency(spec, total_threads) * memory_efficiency(spec, total_mem);
    let cpu_scale = if total_cpu <= cpu_capacity || total_cpu == 0.0 {
        1.0
    } else {
        cpu_capacity / total_cpu
    };

    let disk_capacity = spec.disk_bw * disk_efficiency(spec, disk_streams);
    let disk_scale = if total_disk <= disk_capacity || total_disk == 0.0 {
        1.0
    } else {
        disk_capacity / total_disk
    };

    demands
        .iter()
        .map(|d| {
            let mut s = 1.0_f64;
            if d.cpu_cores > 0.0 {
                s = s.min(cpu_scale);
            }
            if d.disk_read + d.disk_write > 0.0 {
                s = s.min(disk_scale);
            }
            s.max(1e-6) // never fully stall: forward progress guarantee
        })
        .collect()
}

/// Aggregate throughput (sum of per-task scales × a nominal per-task rate of
/// 1.0) for `n` identical tasks — the quantity plotted in Fig. 1.
pub fn total_throughput(spec: &NodeSpec, demand: TaskDemand, n: usize) -> f64 {
    let demands = vec![demand; n];
    allocate_node(spec, &demands).iter().sum()
}

/// Locate the thrashing knee: the concurrency that maximises
/// [`total_throughput`] over `1..=max_n`.
pub fn thrashing_point(spec: &NodeSpec, demand: TaskDemand, max_n: usize) -> usize {
    let mut best = (1usize, f64::MIN);
    for n in 1..=max_n.max(1) {
        let t = total_throughput(spec, demand, n);
        if t > best.1 {
            best = (n, t);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light_task() -> TaskDemand {
        // map-heavy style: CPU-light, few threads, small footprint
        TaskDemand {
            cpu_cores: 2.0,
            threads: 2,
            mem_mb: 1200.0,
            disk_read: 25.0,
            disk_write: 2.0,
        }
    }

    fn heavy_task() -> TaskDemand {
        // reduce-heavy style: CPU/mem hungry (large sort buffers)
        TaskDemand {
            cpu_cores: 5.0,
            threads: 4,
            mem_mb: 3600.0,
            disk_read: 25.0,
            disk_write: 25.0,
        }
    }

    #[test]
    fn empty_demands_empty_scales() {
        let spec = NodeSpec::paper_worker();
        assert!(allocate_node(&spec, &[]).is_empty());
    }

    #[test]
    fn single_task_runs_at_full_speed() {
        let spec = NodeSpec::paper_worker();
        let s = allocate_node(&spec, &[light_task()]);
        assert_eq!(s, vec![1.0]);
    }

    #[test]
    fn scales_within_unit_interval() {
        let spec = NodeSpec::paper_worker();
        for n in 1..40 {
            for s in allocate_node(&spec, &vec![heavy_task(); n]) {
                assert!(s > 0.0 && s <= 1.0, "scale {s} out of range at n={n}");
            }
        }
    }

    #[test]
    fn identical_tasks_get_identical_scales() {
        let spec = NodeSpec::paper_worker();
        let scales = allocate_node(&spec, &vec![heavy_task(); 9]);
        for w in scales.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn cpu_grant_never_exceeds_capacity() {
        let spec = NodeSpec::paper_worker();
        for n in 1..40 {
            let demands = vec![heavy_task(); n];
            let scales = allocate_node(&spec, &demands);
            let granted: f64 = scales
                .iter()
                .zip(&demands)
                .map(|(s, d)| s * d.cpu_cores)
                .sum();
            assert!(
                granted <= spec.cores + 1e-9,
                "granted {granted} cores at n={n}"
            );
        }
    }

    #[test]
    fn throughput_rises_then_falls() {
        let spec = NodeSpec::paper_worker();
        let knee = thrashing_point(&spec, heavy_task(), 16);
        assert!(
            (2..=8).contains(&knee),
            "heavy-task knee at {knee}, expected a small slot count"
        );
        // strictly past the knee throughput must have declined
        let at_knee = total_throughput(&spec, heavy_task(), knee);
        let past = total_throughput(&spec, heavy_task(), knee + 6);
        assert!(past < at_knee, "throughput must fall past the knee");
        // and before the knee it rises
        if knee > 1 {
            let before = total_throughput(&spec, heavy_task(), knee - 1);
            assert!(before < at_knee + 1e-9);
        }
    }

    #[test]
    fn light_tasks_thrash_later_than_heavy() {
        let spec = NodeSpec::paper_worker();
        let light = thrashing_point(&spec, light_task(), 16);
        let heavy = thrashing_point(&spec, heavy_task(), 16);
        assert!(
            light > heavy,
            "map-heavy profile (light tasks) must have later knee: light={light} heavy={heavy}"
        );
    }

    #[test]
    fn paging_penalty_is_sharp() {
        let spec = NodeSpec::paper_worker();
        assert_eq!(memory_efficiency(&spec, spec.mem_mb), 1.0);
        let e = memory_efficiency(&spec, spec.mem_mb * 2.0);
        assert!((e - 0.25).abs() < 1e-12, "2x oversubscription -> 1/4");
    }

    #[test]
    fn cpu_efficiency_monotone_nonincreasing() {
        let spec = NodeSpec::paper_worker();
        let mut prev = f64::INFINITY;
        for t in 0..200 {
            let e = cpu_efficiency(&spec, t as f64);
            assert!(e <= prev + 1e-15);
            assert!(e > 0.0 && e <= 1.0);
            prev = e;
        }
    }

    #[test]
    fn disk_efficiency_behaviour() {
        let spec = NodeSpec::paper_worker();
        assert_eq!(disk_efficiency(&spec, 1.0), 1.0);
        assert_eq!(disk_efficiency(&spec, spec.seek_free_streams), 1.0);
        assert!(disk_efficiency(&spec, 20.0) < 1.0);
    }

    #[test]
    fn pure_cpu_task_unaffected_by_disk_saturation() {
        let spec = NodeSpec::paper_worker();
        let cpu_only = TaskDemand {
            cpu_cores: 1.0,
            threads: 1,
            mem_mb: 100.0,
            disk_read: 0.0,
            disk_write: 0.0,
        };
        let disk_hog = TaskDemand {
            cpu_cores: 0.5,
            threads: 1,
            mem_mb: 100.0,
            disk_read: 500.0,
            disk_write: 0.0,
        };
        let scales = allocate_node(&spec, &[cpu_only, disk_hog]);
        assert_eq!(scales[0], 1.0, "cpu-only task should not pay disk scale");
        assert!(scales[1] < 1.0, "disk hog exceeds disk bandwidth");
    }

    #[test]
    fn idle_demand_consumes_almost_nothing() {
        let spec = NodeSpec::paper_worker();
        let mut demands = vec![light_task(); 6];
        let base: f64 = allocate_node(&spec, &demands).iter().sum();
        demands.push(TaskDemand::IDLE);
        let with_idle: f64 = allocate_node(&spec, &demands)[..6].iter().sum();
        assert!((base - with_idle).abs() / base < 0.05);
    }

    proptest::proptest! {
        /// Scales are always in (0,1], identical demands get identical
        /// scales, and granted CPU/disk never exceed capacity — for
        /// arbitrary demand mixes.
        #[test]
        fn prop_allocation_feasible(
            demands in proptest::collection::vec(
                (0.1f64..8.0, 1u32..8, 100.0f64..6000.0, 0.0f64..60.0, 0.0f64..60.0),
                1..40,
            )
        ) {
            let spec = NodeSpec::paper_worker();
            let ds: Vec<TaskDemand> = demands
                .iter()
                .map(|&(cpu, threads, mem, dr, dw)| TaskDemand {
                    cpu_cores: cpu,
                    threads,
                    mem_mb: mem,
                    disk_read: dr,
                    disk_write: dw,
                })
                .collect();
            let scales = allocate_node(&spec, &ds);
            proptest::prop_assert_eq!(scales.len(), ds.len());
            let mut cpu_granted = 0.0;
            let mut disk_granted = 0.0;
            for (s, d) in scales.iter().zip(&ds) {
                proptest::prop_assert!(*s > 0.0 && *s <= 1.0);
                cpu_granted += s * d.cpu_cores;
                disk_granted += s * (d.disk_read + d.disk_write);
            }
            proptest::prop_assert!(cpu_granted <= spec.cores + 1e-6);
            proptest::prop_assert!(disk_granted <= spec.disk_bw + 1e-6);
        }

        /// Adding one more identical task never increases any existing
        /// task's scale (contention is monotone).
        #[test]
        fn prop_more_tasks_never_help(
            cpu in 0.5f64..6.0, threads in 1u32..6, mem in 500.0f64..4000.0,
            n in 1usize..20,
        ) {
            let spec = NodeSpec::paper_worker();
            let d = TaskDemand {
                cpu_cores: cpu,
                threads,
                mem_mb: mem,
                disk_read: 15.0,
                disk_write: 5.0,
            };
            let before = allocate_node(&spec, &vec![d; n])[0];
            let after = allocate_node(&spec, &vec![d; n + 1])[0];
            proptest::prop_assert!(after <= before + 1e-12);
        }
    }

    #[test]
    fn forward_progress_floor() {
        let spec = NodeSpec::paper_worker();
        // ludicrous oversubscription still yields positive scales
        let scales = allocate_node(&spec, &vec![heavy_task(); 500]);
        assert!(scales.iter().all(|s| *s >= 1e-6));
    }
}

//! Measurement primitives: time series and windowed rate meters.
//!
//! The slot manager's whole decision loop runs on *rates observed over
//! heartbeat windows* (map input rate, map output rate, shuffle rate), so
//! the meters here are part of the reproduction surface, not just logging.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only `(time, value)` series, used for progress curves (Fig. 4)
/// and for recording slot counts over time.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample. Samples must arrive in non-decreasing time order
    /// (enforced in debug builds).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| lt <= t),
            "samples must be time-ordered"
        );
        self.points.push((t, v));
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Value at time `t` via step interpolation (last sample at or before
    /// `t`); `None` before the first sample.
    pub fn at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Earliest time at which the series reaches `level` (values assumed
    /// non-decreasing, as for progress curves).
    pub fn first_reaching(&self, level: f64) -> Option<SimTime> {
        self.points
            .iter()
            .find(|&&(_, v)| v >= level)
            .map(|&(t, _)| t)
    }

    /// Downsample to at most `max_points` (for compact figure output).
    pub fn thinned(&self, max_points: usize) -> Vec<(SimTime, f64)> {
        if max_points == 0 || self.points.len() <= max_points {
            return self.points.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        let mut out: Vec<(SimTime, f64)> = self.points.iter().step_by(stride).copied().collect();
        if out.last() != self.points.last() {
            out.push(*self.points.last().expect("non-empty"));
        }
        out
    }
}

/// A [`TimeSeries`] that mirrors every sample to a telemetry counter
/// track, so recorded curves (slot counts, progress) show up in Chrome
/// traces without changing any series consumer. With a disabled sink this
/// is exactly a `TimeSeries` plus one branch per push.
#[derive(Debug, Clone)]
pub struct RecordedSeries {
    name: &'static str,
    series: TimeSeries,
    sink: telemetry::Telemetry,
}

impl RecordedSeries {
    pub fn new(name: &'static str, sink: telemetry::Telemetry) -> RecordedSeries {
        RecordedSeries {
            name,
            series: TimeSeries::new(),
            sink,
        }
    }

    /// Rebuild a recorder around a previously captured series — the restore
    /// half of checkpointing. The sink is supplied fresh (telemetry handles
    /// are deliberately not part of a capsule).
    pub fn from_series(
        name: &'static str,
        series: TimeSeries,
        sink: telemetry::Telemetry,
    ) -> RecordedSeries {
        RecordedSeries { name, series, sink }
    }

    /// Append a sample, mirroring it to the sink's counter track.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.series.push(t, v);
        self.sink.counter_sample(self.name, t.as_millis(), v);
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// A meter that accumulates a byte/record count and yields the mean rate per
/// sampling window — the exact quantity task trackers piggy-back on
/// heartbeats ("the map input processing rate, the shuffle rate and the map
/// output rate", §III-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    window_total: f64,
    window_start: SimTime,
    /// Total since creation (for end-of-job averages).
    lifetime_total: f64,
    /// Rate reported at the last harvest, carried so consumers between
    /// harvests see the latest completed window.
    last_rate: f64,
}

impl RateMeter {
    pub fn new(start: SimTime) -> RateMeter {
        RateMeter {
            window_total: 0.0,
            window_start: start,
            lifetime_total: 0.0,
            last_rate: 0.0,
        }
    }

    /// Record `amount` units moved (MB, records, …).
    pub fn record(&mut self, amount: f64) {
        debug_assert!(amount >= 0.0);
        self.window_total += amount;
        self.lifetime_total += amount;
    }

    /// Close the current window at `now`, returning the mean rate over it
    /// (units/second) and starting a fresh window.
    pub fn harvest(&mut self, now: SimTime) -> f64 {
        let dt = (now - self.window_start).as_secs_f64();
        let rate = if dt > 0.0 {
            self.window_total / dt
        } else {
            0.0
        };
        self.window_total = 0.0;
        self.window_start = now;
        self.last_rate = rate;
        rate
    }

    /// The rate from the most recently harvested window.
    pub fn last_rate(&self) -> f64 {
        self.last_rate
    }

    /// Units accumulated since creation.
    pub fn lifetime_total(&self) -> f64 {
        self.lifetime_total
    }
}

/// Summary statistics of a sample set (task durations, per-node loads).
///
/// ```
/// use simgrid::metrics::Summary;
///
/// let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!((s.min, s.max, s.p50), (1.0, 4.0, 2.0));
/// assert!(Summary::of(&[]).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
}

impl Summary {
    /// Compute a summary; returns `None` for an empty sample.
    /// Percentiles use the nearest-rank method on a sorted copy.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        let rank = |p: f64| -> f64 {
            let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Some(Summary {
            n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
            p50: rank(0.50),
            p95: rank(0.95),
        })
    }
}

/// Exponentially-weighted mean, used to smooth noisy per-window rates before
/// they feed threshold comparisons (thrashing detection compares *stable*
/// ranges, §IV-A2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    pub fn observe(&mut self, x: f64) -> f64 {
        self.observe_weighted(x, 1.0)
    }

    /// Observe a sample that covers `weight` nominal sampling intervals
    /// (time-weighted EWMA for irregular sample spacing). The effective
    /// smoothing factor is `1 - (1 - α)^weight`, so a sample spanning two
    /// intervals pulls exactly as hard as two unit observations of the
    /// same value; `weight == 1` is the plain [`Ewma::observe`].
    pub fn observe_weighted(&mut self, x: f64, weight: f64) -> f64 {
        debug_assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        let v = match self.value {
            None => x,
            Some(prev) => {
                let eff = 1.0 - (1.0 - self.alpha).powf(weight.max(0.0));
                prev + eff * (x - prev)
            }
        };
        self.value = Some(v);
        v
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }

    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn series_push_and_query() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(t(1), 10.0);
        ts.push(t(3), 30.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.at(t(0)), None);
        assert_eq!(ts.at(t(1)), Some(10.0));
        assert_eq!(ts.at(t(2)), Some(10.0));
        assert_eq!(ts.at(t(3)), Some(30.0));
        assert_eq!(ts.at(t(9)), Some(30.0));
        assert_eq!(ts.last(), Some((t(3), 30.0)));
    }

    #[test]
    fn first_reaching_finds_threshold() {
        let mut ts = TimeSeries::new();
        for s in 0..10 {
            ts.push(t(s), s as f64 * 10.0);
        }
        assert_eq!(ts.first_reaching(35.0), Some(t(4)));
        assert_eq!(ts.first_reaching(90.0), Some(t(9)));
        assert_eq!(ts.first_reaching(91.0), None);
    }

    #[test]
    fn thinned_keeps_endpoints() {
        let mut ts = TimeSeries::new();
        for s in 0..1000 {
            ts.push(SimTime::from_millis(s), s as f64);
        }
        let thin = ts.thinned(50);
        assert!(thin.len() <= 51);
        assert_eq!(thin.first(), ts.points().first());
        assert_eq!(thin.last().copied(), ts.last());
        // thinning a short series is the identity
        let mut short = TimeSeries::new();
        short.push(t(0), 1.0);
        assert_eq!(short.thinned(50).len(), 1);
    }

    #[test]
    fn recorded_series_mirrors_to_sink() {
        let sink = telemetry::Telemetry::with_capacity(8, 8);
        let mut rs = RecordedSeries::new("map_slots", sink.clone());
        rs.push(t(1), 12.0);
        rs.push(t(2), 16.0);
        assert_eq!(rs.series().len(), 2);
        assert_eq!(rs.name(), "map_slots");
        let json = sink.chrome_trace().unwrap();
        assert!(json.contains("map_slots"));
        // disabled sink: plain TimeSeries behaviour
        let mut quiet = RecordedSeries::new("x", telemetry::Telemetry::disabled());
        quiet.push(t(1), 1.0);
        assert_eq!(quiet.into_series().len(), 1);
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(t(0));
        m.record(50.0);
        m.record(50.0);
        let r = m.harvest(t(2));
        assert!((r - 50.0).abs() < 1e-12, "100 units over 2s");
        assert_eq!(m.last_rate(), r);
        // fresh window
        m.record(30.0);
        let r2 = m.harvest(t(5));
        assert!((r2 - 10.0).abs() < 1e-12, "30 units over 3s");
        assert_eq!(m.lifetime_total(), 130.0);
    }

    #[test]
    fn rate_meter_zero_window_is_zero() {
        let mut m = RateMeter::new(t(1));
        m.record(10.0);
        assert_eq!(m.harvest(t(1)), 0.0);
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.observe(20.0), 15.0);
        assert_eq!(e.observe(20.0), 17.5);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn weighted_ewma_matches_repeated_unit_observations() {
        let mut unit = Ewma::new(0.3);
        let mut weighted = Ewma::new(0.3);
        unit.observe(10.0);
        weighted.observe(10.0);
        // one sample covering 3 intervals == 3 unit samples of that value
        unit.observe(4.0);
        unit.observe(4.0);
        unit.observe(4.0);
        weighted.observe_weighted(4.0, 3.0);
        assert!((unit.value().unwrap() - weighted.value().unwrap()).abs() < 1e-12);
        // weight 1 is the plain observe; alpha 1 tracks regardless of weight
        let mut full = Ewma::new(1.0);
        full.observe(5.0);
        assert_eq!(full.observe_weighted(9.0, 0.5), 9.0);
    }

    #[test]
    fn weighted_ewma_zero_weight_is_inert_after_seed() {
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        assert_eq!(e.observe_weighted(100.0, 0.0), 10.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn summary_known_values() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn summary_unsorted_input() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_summary_bounds(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&samples).unwrap();
            proptest::prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
            proptest::prop_assert!(s.min <= s.mean && s.mean <= s.max + 1e-9);
            proptest::prop_assert_eq!(s.n, samples.len());
        }
    }
}

//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator (block placement, per-task
//! service-time jitter, heartbeat phase offsets) draws from a [`SimRng`]
//! seeded from a single experiment seed, so a run is exactly reproducible.
//! Sub-streams are derived with SplitMix64 so that adding a consumer in one
//! subsystem does not perturb the draws seen by another.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize, Value};

/// SplitMix64 step — the standard way to expand one `u64` seed into many
/// well-distributed derived seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream for one simulation subsystem.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create the root stream for an experiment.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream, keyed by a stable label hash, so
    /// that subsystems each get their own stream regardless of the order in
    /// which they are constructed.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut state = self.seed;
        for b in label.as_bytes() {
            state = state.wrapping_mul(0x100_0000_01B3) ^ u64::from(*b);
        }
        let child_seed = splitmix64(&mut state);
        SimRng::new(child_seed)
    }

    /// The four raw xoshiro256++ state words — the stream's complete
    /// position. Folded into the engine's per-step state hash so any
    /// divergence in draw order shows up the same step it happens.
    pub fn state_words(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// Multiplicative jitter in `[1 - amp, 1 + amp]`, used for per-task
    /// service-time variation. `amp` of `0.0` returns exactly `1.0`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        if amp <= 0.0 {
            return 1.0;
        }
        1.0 + (self.unit() * 2.0 - 1.0) * amp
    }

    /// Pick `k` distinct indices out of `0..n` (Floyd's algorithm would be
    /// overkill at our sizes; partial Fisher–Yates over an index vector is
    /// exact and simple). Returns fewer than `k` only when `n < k`.
    pub fn choose_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        let take = k.min(n);
        for i in 0..take {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(take);
        idx
    }
}

// A stream checkpoint is the originating seed plus the four xoshiro256++
// state words — enough to resume mid-stream without replaying draws while
// keeping `derive` (which hashes from the seed) stable across the restore.
impl Serialize for SimRng {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), self.seed.to_value()),
            ("state".to_string(), self.inner.state().to_value()),
        ])
    }
}

impl Deserialize for SimRng {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let seed = u64::deserialize(
            v.get("seed")
                .ok_or_else(|| serde::Error::new("SimRng: missing seed"))?,
        )?;
        let state = <[u64; 4]>::deserialize(
            v.get("state")
                .ok_or_else(|| serde::Error::new("SimRng: missing state"))?,
        )?;
        Ok(SimRng {
            inner: SmallRng::from_state(state),
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams with different seeds should not track");
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = SimRng::new(7);
        let mut a1 = root.derive("dfs");
        let mut a2 = root.derive("dfs");
        let mut b = root.derive("network");
        assert_eq!(a1.unit().to_bits(), a2.unit().to_bits());
        assert_ne!(a1.seed(), b.seed());
        let _ = b.unit();
    }

    #[test]
    fn derive_is_order_independent() {
        let root = SimRng::new(7);
        let a = root.derive("x").seed();
        let _ = root.derive("y");
        let a_again = root.derive("x").seed();
        assert_eq!(a, a_again);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SimRng::new(4);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let j = r.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
        assert_eq!(r.jitter(0.0), 1.0);
        assert_eq!(r.jitter(-1.0), 1.0);
    }

    #[test]
    fn choose_distinct_properties() {
        let mut r = SimRng::new(6);
        for _ in 0..200 {
            let picks = r.choose_distinct(10, 3);
            assert_eq!(picks.len(), 3);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "picks must be distinct");
            assert!(picks.iter().all(|&p| p < 10));
        }
        // k > n clamps
        assert_eq!(r.choose_distinct(2, 5).len(), 2);
        assert!(r.choose_distinct(0, 3).is_empty());
    }

    #[test]
    fn serde_roundtrip_resumes_mid_stream() {
        let mut a = SimRng::new(99);
        for _ in 0..37 {
            a.unit();
        }
        let v = serde::Serialize::to_value(&a);
        let mut b: SimRng = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(b.seed(), a.seed());
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
        // derive keys off the seed, so derivation survives the restore too
        assert_eq!(a.derive("x").seed(), b.derive("x").seed());
    }

    #[test]
    fn derived_streams_are_distinct_and_non_overlapping() {
        // The capsule stores derived-stream positions, so distinct labels
        // must yield streams that never share a draw sequence.
        let root = SimRng::new(1234);
        let labels = ["engine", "dfs", "faults", "jitter"];
        let mut seen = std::collections::HashSet::new();
        let mut seeds = std::collections::HashSet::new();
        for label in labels {
            let mut child = root.derive(label);
            assert!(seeds.insert(child.seed()), "seed collision for {label}");
            for _ in 0..512 {
                assert!(
                    seen.insert(child.unit().to_bits()),
                    "draw shared between derived streams ({label})"
                );
            }
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical SplitMix64 implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}

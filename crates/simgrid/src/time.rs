//! Simulated time.
//!
//! Time is an integer count of milliseconds since simulation start. Using an
//! integer (rather than `f64` seconds) keeps tick arithmetic exact: a
//! 100 ms tick repeated ten times is *exactly* one second, heartbeat
//! boundaries compare with `==`, and runs are bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// This instant expressed as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Milliseconds since origin.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// True when this instant lies on a multiple of `period` (used for
    /// heartbeat and manager-period scheduling on tick boundaries).
    pub fn is_multiple_of(self, period: SimDuration) -> bool {
        period.0 != 0 && self.0.is_multiple_of(period.0)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Span in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

/// Tick configuration shared by every simulation loop in the workspace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TickConfig {
    /// Length of one integration step.
    pub tick: SimDuration,
    /// Hard wall: a simulation that has not converged by this simulated
    /// instant is aborted (guards against livelocked configurations).
    pub horizon: SimTime,
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig {
            tick: SimDuration::from_millis(100),
            horizon: SimTime::from_secs(24 * 3600),
        }
    }
}

impl TickConfig {
    /// Tick length in fractional seconds (the `dt` for rate integration).
    pub fn dt_secs(&self) -> f64 {
        self.tick.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3000));
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(5) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 5500);
        assert_eq!((t - SimTime::from_secs(5)).as_millis(), 500);
        // subtraction saturates rather than panicking
        assert_eq!((SimTime::ZERO - SimTime::from_secs(1)).as_millis(), 0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_millis(100);
        }
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn multiple_of_detects_period_boundaries() {
        let hb = SimDuration::from_secs(3);
        assert!(SimTime::ZERO.is_multiple_of(hb));
        assert!(SimTime::from_secs(3).is_multiple_of(hb));
        assert!(!SimTime::from_millis(3100).is_multiple_of(hb));
        assert!(!SimTime::from_secs(1).is_multiple_of(SimDuration::ZERO));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a).as_millis(), 1000);
        assert_eq!(a.since(b).as_millis(), 0);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.5s");
        assert_eq!(SimDuration::from_millis(100).to_string(), "0.1s");
    }

    #[test]
    fn default_tick_is_100ms() {
        let tc = TickConfig::default();
        assert_eq!(tc.tick.as_millis(), 100);
        assert!((tc.dt_secs() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}

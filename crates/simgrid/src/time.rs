//! Simulated time.
//!
//! Time is an integer count of milliseconds since simulation start. Using an
//! integer (rather than `f64` seconds) keeps step arithmetic exact: a
//! 100 ms tick repeated ten times is *exactly* one second, heartbeat
//! boundaries compare with `==`, and runs are bit-for-bit reproducible.
//!
//! Simulation loops advance in one of two [`SteppingMode`]s: classic fixed
//! ticks, or adaptive macro-steps whose length is the [`EventHorizon`] —
//! the earliest instant at which any piecewise-constant rate in the system
//! can change. Both modes share the same millisecond grid, so periodic
//! boundaries (heartbeats, sample points) land exactly in either mode.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// This instant expressed as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Milliseconds since origin.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// True when this instant lies on a multiple of `period` (used for
    /// heartbeat and manager-period scheduling on step boundaries).
    pub fn is_multiple_of(self, period: SimDuration) -> bool {
        period.0 != 0 && self.0.is_multiple_of(period.0)
    }

    /// Time until the next *strictly later* multiple of `period`: an
    /// instant already on a boundary gets a full period. This is the step
    /// arithmetic the adaptive loop uses to land exactly on heartbeat and
    /// sample boundaries. Panics on a zero period.
    pub fn until_next_multiple_of(self, period: SimDuration) -> SimDuration {
        assert!(period.0 != 0, "period must be non-zero");
        SimDuration(period.0 - self.0 % period.0)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Span in milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Round fractional seconds *up* to the millisecond grid. Event times
    /// are ceiled so a step never stops just short of the event it was
    /// scheduled for (integrators clamp the ≤1 ms overshoot instead).
    /// Non-finite or negative inputs and overflows saturate to `u64::MAX`.
    pub fn from_secs_f64_ceil(s: f64) -> SimDuration {
        if !s.is_finite() || s < 0.0 {
            return SimDuration(u64::MAX);
        }
        let ms = (s * 1000.0).ceil();
        if ms >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ms as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.as_secs_f64())
    }
}

/// How a simulation loop chooses its integration step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SteppingMode {
    /// Classic fixed-length ticks: every step is exactly `tick` long.
    /// Kept as the reference integrator for cross-validation.
    Fixed,
    /// Adaptive macro-steps: after each (re)allocation the loop advances
    /// by the event horizon — the earliest heartbeat/sample boundary or
    /// rate-changing event — in a single step. Orders of magnitude fewer
    /// steps for identical piecewise-constant dynamics.
    #[default]
    Adaptive,
}

/// Stepping configuration shared by every simulation loop in the workspace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TickConfig {
    /// Length of one integration step in [`SteppingMode::Fixed`]; unused
    /// by the adaptive stepper (which derives its own step lengths).
    pub tick: SimDuration,
    /// Hard wall: a simulation that has not converged by this simulated
    /// instant is aborted (guards against livelocked configurations).
    pub horizon: SimTime,
    /// Step-length selection strategy.
    #[serde(default)]
    pub mode: SteppingMode,
}

impl Default for TickConfig {
    fn default() -> Self {
        TickConfig {
            tick: SimDuration::from_millis(100),
            horizon: SimTime::from_secs(24 * 3600),
            mode: SteppingMode::default(),
        }
    }
}

impl TickConfig {
    /// The default configuration pinned to the fixed-tick reference mode.
    pub fn fixed() -> Self {
        TickConfig {
            mode: SteppingMode::Fixed,
            ..TickConfig::default()
        }
    }

    /// The default configuration pinned to adaptive stepping.
    pub fn adaptive() -> Self {
        TickConfig {
            mode: SteppingMode::Adaptive,
            ..TickConfig::default()
        }
    }

    /// Fixed-tick length in fractional seconds (the `dt` for rate
    /// integration in [`SteppingMode::Fixed`]).
    pub fn dt_secs(&self) -> f64 {
        self.tick.as_secs_f64()
    }
}

/// Running minimum over candidate next-event times, resolved to one step
/// length on the millisecond grid.
///
/// The adaptive loop creates one accumulator per step, capped by the next
/// mandatory boundary (heartbeat or sample point), proposes every local
/// event the allocators and task state machines can foresee at current
/// rates, and advances by [`EventHorizon::resolve`]. Proposing an event
/// that never fires is harmless (the step is merely shorter); *missing* a
/// rate change mid-step is what would break the integration, so proposals
/// should be conservative.
#[derive(Debug, Clone, Copy)]
pub struct EventHorizon {
    /// Minimum over *exact* deadlines: the boundary cap and `propose`
    /// calls. The step never crosses one of these.
    exact_ms: u64,
    /// Minimum over *soft* task events (`propose_secs` /
    /// `propose_depletion`), which may be overshot by the coalescing pad.
    event_ms: u64,
    /// Coalescing window: soft events within `pad_ms` of the earliest one
    /// merge into a single step. Integrators clamp the overshoot, so this
    /// trades a bounded staleness (choose ≤ the fixed tick to never be
    /// less accurate than the reference mode) for far fewer steps when
    /// completions cascade.
    pad_ms: u64,
}

impl EventHorizon {
    /// Negligible remaining work / rate below which a depletion never
    /// fires (mirrors the integrators' completion epsilons).
    const EPS: f64 = 1e-9;

    /// Start an accumulator capped at `cap` (the next mandatory boundary).
    pub fn new(cap: SimDuration) -> EventHorizon {
        EventHorizon {
            exact_ms: cap.0,
            event_ms: u64::MAX,
            pad_ms: 0,
        }
    }

    /// Allow soft task events to be overshot by up to `pad`, so cascades
    /// of near-simultaneous completions resolve in one step instead of
    /// one step each. Exact deadlines (`new`'s cap, `propose`) are never
    /// padded — periodic boundaries stay bit-exact across modes.
    pub fn coalesce_events(&mut self, pad: SimDuration) {
        self.pad_ms = pad.0;
    }

    /// Propose an exact deadline `d` away (boundary, stall expiry, job
    /// arrival): never padded, never crossed.
    pub fn propose(&mut self, d: SimDuration) {
        self.exact_ms = self.exact_ms.min(d.0);
    }

    /// Propose a soft task event `s` fractional seconds away (ceiled to
    /// the grid). Non-positive and non-finite times are ignored — a "due
    /// now" event is already visible to the current allocation.
    pub fn propose_secs(&mut self, s: f64) {
        if s.is_finite() && s > 0.0 {
            self.event_ms = self.event_ms.min(SimDuration::from_secs_f64_ceil(s).0);
        }
    }

    /// Propose the depletion of `remaining` units draining at `rate`
    /// units/second; ignored when either is negligible (the quantity is
    /// not actually draining, so it cannot generate an event).
    pub fn propose_depletion(&mut self, remaining: f64, rate: f64) {
        if remaining > Self::EPS && rate > Self::EPS {
            self.propose_secs(remaining / rate);
        }
    }

    /// The step length: the earliest exact deadline or (padded) soft
    /// event, never shorter than 1 ms so the loop always makes progress
    /// on the integer grid.
    pub fn resolve(self) -> SimDuration {
        SimDuration(
            self.exact_ms
                .min(self.event_ms.saturating_add(self.pad_ms))
                .max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3000));
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(5) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 5500);
        assert_eq!((t - SimTime::from_secs(5)).as_millis(), 500);
        // subtraction saturates rather than panicking
        assert_eq!((SimTime::ZERO - SimTime::from_secs(1)).as_millis(), 0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_millis(100);
        }
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn multiple_of_detects_period_boundaries() {
        let hb = SimDuration::from_secs(3);
        assert!(SimTime::ZERO.is_multiple_of(hb));
        assert!(SimTime::from_secs(3).is_multiple_of(hb));
        assert!(!SimTime::from_millis(3100).is_multiple_of(hb));
        assert!(!SimTime::from_secs(1).is_multiple_of(SimDuration::ZERO));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a).as_millis(), 1000);
        assert_eq!(a.since(b).as_millis(), 0);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.5s");
        assert_eq!(SimDuration::from_millis(100).to_string(), "0.1s");
    }

    #[test]
    fn default_tick_is_100ms() {
        let tc = TickConfig::default();
        assert_eq!(tc.tick.as_millis(), 100);
        assert!((tc.dt_secs() - 0.1).abs() < 1e-12);
        assert_eq!(tc.mode, SteppingMode::Adaptive, "adaptive is the default");
        assert_eq!(TickConfig::fixed().mode, SteppingMode::Fixed);
        assert_eq!(TickConfig::adaptive().mode, SteppingMode::Adaptive);
    }

    #[test]
    fn until_next_multiple_is_strictly_positive() {
        let hb = SimDuration::from_secs(3);
        // on a boundary: a full period away
        assert_eq!(SimTime::ZERO.until_next_multiple_of(hb).as_millis(), 3000);
        assert_eq!(
            SimTime::from_secs(3).until_next_multiple_of(hb).as_millis(),
            3000
        );
        // mid-interval: the remainder
        assert_eq!(
            SimTime::from_millis(3100)
                .until_next_multiple_of(hb)
                .as_millis(),
            2900
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn until_next_multiple_rejects_zero_period() {
        let _ = SimTime::ZERO.until_next_multiple_of(SimDuration::ZERO);
    }

    #[test]
    fn ceil_conversion_saturates_and_rounds_up() {
        assert_eq!(SimDuration::from_secs_f64_ceil(0.1).as_millis(), 100);
        assert_eq!(SimDuration::from_secs_f64_ceil(0.0001).as_millis(), 1);
        assert_eq!(SimDuration::from_secs_f64_ceil(1.0005).as_millis(), 1001);
        assert_eq!(SimDuration::from_secs_f64_ceil(-1.0).0, u64::MAX);
        assert_eq!(SimDuration::from_secs_f64_ceil(f64::NAN).0, u64::MAX);
        assert_eq!(SimDuration::from_secs_f64_ceil(f64::INFINITY).0, u64::MAX);
    }

    #[test]
    fn event_horizon_takes_earliest_event() {
        let mut h = EventHorizon::new(SimDuration::from_secs(3));
        assert_eq!(h.resolve().as_millis(), 3000, "cap alone");
        h.propose(SimDuration::from_millis(700));
        h.propose_secs(1.5);
        assert_eq!(h.resolve().as_millis(), 700);
        // depletion: 10 units at 20/s = 0.5 s
        h.propose_depletion(10.0, 20.0);
        assert_eq!(h.resolve().as_millis(), 500);
    }

    #[test]
    fn event_horizon_ignores_degenerate_proposals() {
        let mut h = EventHorizon::new(SimDuration::from_secs(1));
        h.propose_secs(0.0);
        h.propose_secs(-3.0);
        h.propose_secs(f64::NAN);
        h.propose_depletion(0.0, 5.0); // nothing left
        h.propose_depletion(5.0, 0.0); // not draining
        assert_eq!(h.resolve().as_millis(), 1000, "cap survives");
    }

    #[test]
    fn event_horizon_never_resolves_below_one_ms() {
        let mut h = EventHorizon::new(SimDuration::from_secs(1));
        h.propose_secs(1e-9);
        assert_eq!(h.resolve().as_millis(), 1);
        let z = EventHorizon::new(SimDuration::ZERO);
        assert_eq!(z.resolve().as_millis(), 1);
    }

    #[test]
    fn event_horizon_coalescing_pads_soft_events_only() {
        let mut h = EventHorizon::new(SimDuration::from_secs(3));
        h.coalesce_events(SimDuration::from_millis(100));
        h.propose_secs(0.25); // soft task event at 250 ms
        assert_eq!(h.resolve().as_millis(), 350, "soft events are padded");
        h.propose(SimDuration::from_millis(300)); // exact deadline
        assert_eq!(h.resolve().as_millis(), 300, "deadlines never move");
        // the cap is itself an exact deadline: a padded event past it loses
        let mut h = EventHorizon::new(SimDuration::from_millis(280));
        h.coalesce_events(SimDuration::from_millis(100));
        h.propose_secs(0.25);
        assert_eq!(h.resolve().as_millis(), 280);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}

//! Error type shared by the simulation substrate.

use crate::time::SimTime;
use std::fmt;

/// Errors a simulation run can surface. Resource arithmetic itself is
/// total; errors come from configuration and from the safety horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulated clock crossed the configured horizon before the
    /// workload completed — almost always a mis-configured experiment
    /// (e.g. zero slots everywhere) rather than a slow one.
    HorizonExceeded {
        horizon: SimTime,
        pending_work: String,
    },
    /// A configuration that cannot produce a meaningful run.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::HorizonExceeded {
                horizon,
                pending_work,
            } => write!(
                f,
                "simulation horizon {horizon} exceeded with pending work: {pending_work}"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::HorizonExceeded {
            horizon: SimTime::from_secs(60),
            pending_work: "3 map tasks".into(),
        };
        assert!(e.to_string().contains("60.0s"));
        assert!(e.to_string().contains("3 map tasks"));
        let e = SimError::InvalidConfig("zero workers".into());
        assert!(e.to_string().contains("zero workers"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidConfig("x".into()));
    }
}

//! Error type shared by the simulation substrate.

use crate::cluster::NodeId;
use crate::time::SimTime;
use std::fmt;

/// Errors a simulation run can surface. Resource arithmetic itself is
/// total; errors come from configuration and from the safety horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulated clock crossed the configured horizon before the
    /// workload completed — almost always a mis-configured experiment
    /// (e.g. zero slots everywhere) rather than a slow one.
    HorizonExceeded {
        horizon: SimTime,
        pending_work: String,
    },
    /// A configuration that cannot produce a meaningful run.
    InvalidConfig(String),
    /// A node crashed holding work the run can never get back — in-flight
    /// attempts, needed map output, or the last replica of an input block —
    /// and recovery is disabled (or impossible). Surfaced instead of letting
    /// the run spin until [`SimError::HorizonExceeded`].
    NodeLost {
        node: NodeId,
        at: SimTime,
        pending_work: String,
    },
    /// The end-of-run invariant auditor found the report inconsistent with
    /// itself (counters vs event log vs scalars). Always a simulator bug,
    /// never a property of the workload.
    AuditFailed { violations: Vec<String> },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::HorizonExceeded {
                horizon,
                pending_work,
            } => write!(
                f,
                "simulation horizon {horizon} exceeded with pending work: {pending_work}"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::NodeLost {
                node,
                at,
                pending_work,
            } => write!(
                f,
                "node {} lost at {at} with unrecoverable work: {pending_work}",
                node.0
            ),
            SimError::AuditFailed { violations } => write!(
                f,
                "run-report audit failed with {} violation(s): {}",
                violations.len(),
                violations.join("; ")
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::HorizonExceeded {
            horizon: SimTime::from_secs(60),
            pending_work: "3 map tasks".into(),
        };
        assert!(e.to_string().contains("60.0s"));
        assert!(e.to_string().contains("3 map tasks"));
        let e = SimError::InvalidConfig("zero workers".into());
        assert!(e.to_string().contains("zero workers"));
        let e = SimError::NodeLost {
            node: NodeId(3),
            at: SimTime::from_secs(90),
            pending_work: "2 running maps".into(),
        };
        assert!(e.to_string().contains("node 3"));
        assert!(e.to_string().contains("2 running maps"));
        let e = SimError::AuditFailed {
            violations: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("2 violation(s)"));
        assert!(e.to_string().contains("a; b"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidConfig("x".into()));
    }
}

//! # simgrid — deterministic cluster simulation substrate
//!
//! This crate provides the resource-level substrate on which the MapReduce
//! framework, the YARN baseline and SMapReduce itself run. It models, per
//! simulated node: CPU time-slicing (with a context-switch overhead that
//! grows superlinearly once runnable threads exceed the core count), a
//! shared local disk, memory oversubscription (paging penalty) and a network
//! interface; and, across nodes, a switched fabric allocating bandwidth to
//! flows with max-min fairness plus a receiver-side *incast* penalty.
//!
//! The combination of the CPU/memory/disk penalties is what produces the
//! *thrashing* curve of the paper's Fig. 1: total task throughput on a node
//! rises roughly linearly with concurrency, flattens when a resource
//! saturates, and then falls as scheduling and paging overheads dominate.
//!
//! Everything is advanced in fixed discrete ticks ([`time::SimTime`],
//! milliseconds) and is fully deterministic for a given seed
//! ([`rng::SimRng`]).
//!
//! ## Quick tour
//!
//! ```
//! use simgrid::node::{NodeSpec, TaskDemand, allocate_node};
//!
//! let node = NodeSpec::paper_worker();
//! // Four identical CPU-hungry tasks on one node:
//! let demand = TaskDemand { cpu_cores: 4.0, threads: 3, mem_mb: 1800.0,
//!                           disk_read: 30.0, disk_write: 10.0 };
//! let demands = vec![demand; 4];
//! let scales = allocate_node(&node, &demands);
//! assert_eq!(scales.len(), 4);
//! assert!(scales.iter().all(|s| *s > 0.0 && *s <= 1.0));
//! ```

pub mod cluster;
pub mod disk;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod node;
pub mod rng;
pub mod time;
pub mod usage;

pub use cluster::{ClusterSpec, NodeId};
pub use error::SimError;
pub use fault::{FaultPlan, NodeFault};
pub use network::{Fabric, FabricConfig, FabricScratch, Flow, FlowId};
pub use node::{allocate_node, NodeSpec, TaskDemand};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, TickConfig};
pub use usage::{NodeUsageSampler, NodeUtilization};

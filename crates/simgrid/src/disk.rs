//! Standalone helpers for reasoning about shared-disk behaviour.
//!
//! The per-tick disk arbitration itself lives in [`crate::node::allocate_node`]
//! (disk contention interacts with CPU and memory there); this module
//! provides the *planning* helpers used by the framework: how long a given
//! volume of sequential I/O will take under a given number of concurrent
//! streams, used e.g. to size spill phases and for analytical cross-checks
//! in tests.

use crate::node::{disk_efficiency, NodeSpec};

/// Effective aggregate disk bandwidth (MB/s) with `streams` concurrent
/// sequential streams.
pub fn effective_bandwidth(spec: &NodeSpec, streams: usize) -> f64 {
    spec.disk_bw * disk_efficiency(spec, streams as f64)
}

/// Per-stream bandwidth when `streams` streams share the disk fairly.
pub fn per_stream_bandwidth(spec: &NodeSpec, streams: usize) -> f64 {
    if streams == 0 {
        return 0.0;
    }
    effective_bandwidth(spec, streams) / streams as f64
}

/// Time (seconds) for one stream among `streams` equals to move `mb`
/// megabytes, assuming steady state.
pub fn transfer_time_secs(spec: &NodeSpec, streams: usize, mb: f64) -> f64 {
    let bw = per_stream_bandwidth(spec, streams);
    if bw <= 0.0 {
        f64::INFINITY
    } else {
        mb / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stream_gets_full_disk() {
        let spec = NodeSpec::paper_worker();
        assert_eq!(effective_bandwidth(&spec, 1), spec.disk_bw);
        assert_eq!(per_stream_bandwidth(&spec, 1), spec.disk_bw);
    }

    #[test]
    fn aggregate_declines_with_seeking() {
        let spec = NodeSpec::paper_worker();
        let few = effective_bandwidth(&spec, 2);
        let many = effective_bandwidth(&spec, 20);
        assert!(many < few);
    }

    #[test]
    fn per_stream_monotone_decreasing() {
        let spec = NodeSpec::paper_worker();
        let mut prev = f64::INFINITY;
        for s in 1..30 {
            let b = per_stream_bandwidth(&spec, s);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn zero_streams_zero_bandwidth() {
        let spec = NodeSpec::paper_worker();
        assert_eq!(per_stream_bandwidth(&spec, 0), 0.0);
        assert!(transfer_time_secs(&spec, 0, 10.0).is_infinite());
    }

    #[test]
    fn transfer_time_scales_with_volume() {
        let spec = NodeSpec::paper_worker();
        let t1 = transfer_time_secs(&spec, 1, 100.0);
        let t2 = transfer_time_secs(&spec, 1, 200.0);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }
}

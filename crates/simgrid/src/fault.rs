//! Deterministic whole-node fault injection.
//!
//! A [`FaultPlan`] is a fixed schedule of node crashes (and optional
//! rejoins) decided before the run starts, so fault experiments stay
//! bit-for-bit reproducible: the same plan against the same seed yields
//! the same trajectory. Crash and rejoin instants are *exact* events on
//! the millisecond grid — simulation loops must propose them to the
//! [`crate::time::EventHorizon`] via [`FaultPlan::next_transition_after`]
//! so adaptive macro-steps land on them precisely, never pad past them.
//!
//! The plan answers two queries:
//!
//! - [`FaultPlan::is_up`]: is node `n` up at instant `t`? A node is down
//!   on the closed-open interval `[crash, crash + downtime)`; with no
//!   rejoin it stays down forever.
//! - [`FaultPlan::next_transition_after`]: the earliest crash or rejoin
//!   instant strictly after `t`, for event-horizon scheduling.

use crate::cluster::NodeId;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One scheduled whole-node crash, with an optional rejoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The node that goes down.
    pub node: NodeId,
    /// Instant the node crashes. Everything resident on the node — running
    /// tasks, stored map output, block replicas — is lost at this instant.
    pub at: SimTime,
    /// Downtime before the node rejoins empty (no state survives the
    /// crash). `None` means the node never comes back.
    pub downtime: Option<SimDuration>,
}

impl NodeFault {
    /// A crash with no rejoin.
    pub fn permanent(node: NodeId, at: SimTime) -> NodeFault {
        NodeFault {
            node,
            at,
            downtime: None,
        }
    }

    /// A crash followed by a rejoin after `downtime`.
    pub fn transient(node: NodeId, at: SimTime, downtime: SimDuration) -> NodeFault {
        NodeFault {
            node,
            at,
            downtime: Some(downtime),
        }
    }

    /// The rejoin instant, if the node comes back.
    pub fn rejoin_at(&self) -> Option<SimTime> {
        self.downtime.map(|d| self.at + d)
    }
}

/// A deterministic schedule of node crashes for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<NodeFault>,
}

impl FaultPlan {
    /// The empty plan: no node ever goes down.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build a plan from explicit faults (sorted by crash instant so
    /// iteration order is deterministic regardless of construction order).
    pub fn new(mut faults: Vec<NodeFault>) -> FaultPlan {
        faults.sort_by_key(|f| (f.at, f.node.0));
        FaultPlan { faults }
    }

    /// Append one fault, keeping the schedule sorted.
    pub fn push(&mut self, fault: NodeFault) {
        self.faults.push(fault);
        self.faults.sort_by_key(|f| (f.at, f.node.0));
    }

    /// True when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, ordered by crash instant.
    pub fn faults(&self) -> &[NodeFault] {
        &self.faults
    }

    /// Is `node` up at instant `t`? Down on `[crash, crash + downtime)`;
    /// overlapping faults for one node compose (down if any holds it down).
    pub fn is_up(&self, node: NodeId, t: SimTime) -> bool {
        !self.faults.iter().any(|f| {
            f.node == node
                && t >= f.at
                && match f.rejoin_at() {
                    Some(r) => t < r,
                    None => true,
                }
        })
    }

    /// Fill a dense per-node up-mask for instant `t`: `mask[n]` becomes
    /// `is_up(NodeId(n), t)`. One pass over the schedule instead of one
    /// `is_up` scan per node, so resumes and samplers can rebuild their
    /// cluster-sized slabs in O(nodes + faults).
    pub fn fill_up_mask(&self, t: SimTime, mask: &mut [bool]) {
        mask.fill(true);
        for f in &self.faults {
            let down = t >= f.at
                && match f.rejoin_at() {
                    Some(r) => t < r,
                    None => true,
                };
            if down {
                mask[f.node.slot(mask.len())] = false;
            }
        }
    }

    /// The earliest crash or rejoin instant strictly after `t`, if any.
    /// Simulation loops propose `next - now` as an *exact* event-horizon
    /// deadline so steps land on transitions precisely.
    pub fn next_transition_after(&self, t: SimTime) -> Option<SimTime> {
        self.faults
            .iter()
            .flat_map(|f| [Some(f.at), f.rejoin_at()])
            .flatten()
            .filter(|&i| i > t)
            .min()
    }

    /// The faults whose crash instant is exactly `t` (fired by the loop
    /// when a step lands on the transition).
    pub fn crashes_at(&self, t: SimTime) -> impl Iterator<Item = &NodeFault> {
        self.faults.iter().filter(move |f| f.at == t)
    }

    /// The faults whose rejoin instant is exactly `t`.
    pub fn rejoins_at(&self, t: SimTime) -> impl Iterator<Item = &NodeFault> {
        self.faults.iter().filter(move |f| f.rejoin_at() == Some(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_keeps_everything_up() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.is_up(NodeId(0), SimTime::from_secs(100)));
        assert_eq!(p.next_transition_after(SimTime::ZERO), None);
    }

    #[test]
    fn permanent_crash_downs_node_forever() {
        let p = FaultPlan::new(vec![NodeFault::permanent(
            NodeId(2),
            SimTime::from_secs(10),
        )]);
        assert!(p.is_up(NodeId(2), SimTime::from_millis(9_999)));
        assert!(
            !p.is_up(NodeId(2), SimTime::from_secs(10)),
            "closed at crash"
        );
        assert!(!p.is_up(NodeId(2), SimTime::from_secs(1_000_000)));
        assert!(p.is_up(NodeId(3), SimTime::from_secs(10)), "other nodes up");
    }

    #[test]
    fn transient_crash_rejoins_after_downtime() {
        let f = NodeFault::transient(
            NodeId(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(30),
        );
        let p = FaultPlan::new(vec![f]);
        assert_eq!(f.rejoin_at(), Some(SimTime::from_secs(40)));
        assert!(!p.is_up(NodeId(1), SimTime::from_secs(39)));
        assert!(p.is_up(NodeId(1), SimTime::from_secs(40)), "open at rejoin");
    }

    #[test]
    fn transitions_are_exact_and_ordered() {
        let p = FaultPlan::new(vec![
            NodeFault::transient(NodeId(1), SimTime::from_secs(20), SimDuration::from_secs(5)),
            NodeFault::permanent(NodeId(0), SimTime::from_secs(10)),
        ]);
        // sorted by crash instant despite construction order
        assert_eq!(p.faults()[0].node, NodeId(0));
        assert_eq!(
            p.next_transition_after(SimTime::ZERO),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(
            p.next_transition_after(SimTime::from_secs(10)),
            Some(SimTime::from_secs(20)),
            "strictly after"
        );
        assert_eq!(
            p.next_transition_after(SimTime::from_secs(20)),
            Some(SimTime::from_secs(25)),
            "rejoin is a transition"
        );
        assert_eq!(p.next_transition_after(SimTime::from_secs(25)), None);
    }

    #[test]
    fn crashes_and_rejoins_at_instant() {
        let p = FaultPlan::new(vec![NodeFault::transient(
            NodeId(4),
            SimTime::from_secs(7),
            SimDuration::from_secs(3),
        )]);
        assert_eq!(p.crashes_at(SimTime::from_secs(7)).count(), 1);
        assert_eq!(p.crashes_at(SimTime::from_secs(8)).count(), 0);
        assert_eq!(p.rejoins_at(SimTime::from_secs(10)).count(), 1);
    }

    #[test]
    fn up_mask_matches_per_node_queries() {
        let p = FaultPlan::new(vec![
            NodeFault::permanent(NodeId(0), SimTime::from_secs(10)),
            NodeFault::transient(NodeId(2), SimTime::from_secs(5), SimDuration::from_secs(10)),
        ]);
        let mut mask = vec![false; 4];
        for secs in [0u64, 5, 10, 15, 20] {
            let t = SimTime::from_secs(secs);
            p.fill_up_mask(t, &mut mask);
            for (n, &up) in mask.iter().enumerate() {
                assert_eq!(up, p.is_up(NodeId(n), t), "node {n} at {secs}s");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = FaultPlan::new(vec![NodeFault::transient(
            NodeId(3),
            SimTime::from_secs(60),
            SimDuration::from_secs(120),
        )]);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

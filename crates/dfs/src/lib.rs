//! # dfs — HDFS-like block storage model
//!
//! The evaluation in the paper runs on HDFS 1.x: files are split into
//! 128 MB blocks, each replicated three times across the data nodes, and
//! the MapReduce scheduler prefers to place a map task on a node holding a
//! replica of its input block ("data locality"). What matters to the
//! SMapReduce reproduction is exactly that interface:
//!
//! * given an input file size, how many map tasks are there and where can
//!   each run locally ([`FileLayout`]);
//! * when a map task runs *non-locally*, its input bytes cross the network
//!   (the engine turns that into a remote-read flow on the fabric).
//!
//! Placement follows HDFS 1.x semantics approximately: the first replica
//! lands on a (uniformly random) node, the remaining replicas on distinct
//! other nodes — the testbed is a single rack, so rack-awareness degenerates
//! to "distinct nodes", which we enforce.

pub mod block;
pub mod namenode;
pub mod placement;

pub use block::{BlockId, BlockInfo};
pub use namenode::{FileLayout, NameNode};
pub use placement::PlacementPolicy;

//! The name node: file → block layout bookkeeping.

use crate::block::{BlockId, BlockInfo};
use crate::placement::PlacementPolicy;
use serde::{Deserialize, Serialize};
use simgrid::cluster::{ClusterSpec, NodeId};
use simgrid::rng::SimRng;

/// The block layout of one stored input file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileLayout {
    pub blocks: Vec<BlockInfo>,
    pub block_mb: f64,
}

impl FileLayout {
    pub fn total_mb(&self) -> f64 {
        self.blocks.iter().map(|b| b.size_mb).sum()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Nodes holding a replica of `block`.
    pub fn replicas(&self, block: BlockId) -> &[NodeId] {
        &self.blocks[block.0].replicas
    }

    /// Whether a map over `block` would be node-local on `node`.
    pub fn is_local(&self, block: BlockId, node: NodeId) -> bool {
        self.blocks[block.0].is_local_to(node)
    }

    /// The namenode view inverted to per-node dense postings: for each of
    /// the cluster's `workers` nodes, the ascending block indices it holds
    /// a replica of. Placement and crash-time replica pruning walk one
    /// node's posting list instead of scanning every block and hashing
    /// membership — the layout stays the source of truth, postings are
    /// derived (and rebuilt, never serialized).
    pub fn node_postings(&self, workers: usize) -> Vec<Vec<u32>> {
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); workers];
        for (bi, block) in self.blocks.iter().enumerate() {
            for &n in &block.replicas {
                per_node[n.slot(workers)].push(bi as u32);
            }
        }
        per_node
    }
}

/// Minimal name node: creates layouts. (The real name node also tracks
/// leases, heartbeats from data nodes, etc.; none of that is observable by
/// the slot manager, so it is out of scope.)
#[derive(Debug, Clone)]
pub struct NameNode {
    cluster: ClusterSpec,
    policy: PlacementPolicy,
    block_mb: f64,
    rng: SimRng,
}

impl NameNode {
    /// `block_mb` — HDFS block size; the paper sets 128 MB.
    pub fn new(cluster: ClusterSpec, policy: PlacementPolicy, block_mb: f64, rng: SimRng) -> Self {
        assert!(block_mb > 0.0, "block size must be positive");
        NameNode {
            cluster,
            policy,
            block_mb,
            rng,
        }
    }

    /// Paper defaults: 128 MB blocks, 3× replication.
    pub fn paper_default(cluster: ClusterSpec, rng: SimRng) -> Self {
        NameNode::new(cluster, PlacementPolicy::default(), 128.0, rng)
    }

    pub fn block_mb(&self) -> f64 {
        self.block_mb
    }

    /// Store a file of `size_mb`, returning its layout. The final block may
    /// be partial; a zero-size file yields zero blocks.
    pub fn create_file(&mut self, size_mb: f64) -> FileLayout {
        assert!(size_mb >= 0.0, "file size cannot be negative");
        let mut blocks = Vec::new();
        let mut remaining = size_mb;
        let mut index = 0usize;
        while remaining > 1e-9 {
            let sz = remaining.min(self.block_mb);
            let replicas = self.policy.place(&self.cluster, index, &mut self.rng);
            blocks.push(BlockInfo {
                id: BlockId(index),
                size_mb: sz,
                replicas,
            });
            remaining -= sz;
            index += 1;
        }
        FileLayout {
            blocks,
            block_mb: self.block_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn namenode() -> NameNode {
        NameNode::paper_default(ClusterSpec::small(8), SimRng::new(5))
    }

    #[test]
    fn block_count_matches_ceiling_division() {
        let mut nn = namenode();
        let f = nn.create_file(1000.0);
        assert_eq!(f.num_blocks(), 8); // 7 full + 1 partial (104 MB)
        assert!((f.total_mb() - 1000.0).abs() < 1e-9);
        let last = f.blocks.last().unwrap();
        assert!((last.size_mb - 104.0).abs() < 1e-9);
    }

    #[test]
    fn exact_multiple_has_no_partial_block() {
        let mut nn = namenode();
        let f = nn.create_file(1024.0);
        assert_eq!(f.num_blocks(), 8);
        assert!(f.blocks.iter().all(|b| (b.size_mb - 128.0).abs() < 1e-9));
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let mut nn = namenode();
        let f = nn.create_file(0.0);
        assert_eq!(f.num_blocks(), 0);
        assert_eq!(f.total_mb(), 0.0);
    }

    #[test]
    fn locality_queries() {
        let mut nn = namenode();
        let f = nn.create_file(512.0);
        for b in &f.blocks {
            let holder = b.replicas[0];
            assert!(f.is_local(b.id, holder));
            // find some node that is NOT a holder (cluster of 8, 3 replicas)
            let non = (0..8)
                .map(NodeId)
                .find(|n| !b.replicas.contains(n))
                .unwrap();
            assert!(!f.is_local(b.id, non));
        }
    }

    #[test]
    fn node_postings_invert_the_layout() {
        let mut nn = namenode();
        let f = nn.create_file(2048.0);
        let postings = f.node_postings(8);
        for (n, posts) in postings.iter().enumerate() {
            assert!(posts.windows(2).all(|w| w[0] < w[1]), "postings ascend");
            for &bi in posts {
                assert!(f.is_local(BlockId(bi as usize), NodeId(n)));
            }
        }
        // the inversion is complete: one posting per replica
        let posted: usize = postings.iter().map(|p| p.len()).sum();
        let replicas: usize = f.blocks.iter().map(|b| b.replicas.len()).sum();
        assert_eq!(posted, replicas);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NameNode::paper_default(ClusterSpec::small(8), SimRng::new(42));
        let mut b = NameNode::paper_default(ClusterSpec::small(8), SimRng::new(42));
        let fa = a.create_file(2048.0);
        let fb = b.create_file(2048.0);
        for (x, y) in fa.blocks.iter().zip(&fb.blocks) {
            assert_eq!(x.replicas, y.replicas);
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        let _ = NameNode::new(
            ClusterSpec::small(2),
            PlacementPolicy::default(),
            0.0,
            SimRng::new(1),
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_layout_conserves_bytes(size in 0.0f64..10_000.0) {
            let mut nn = namenode();
            let f = nn.create_file(size);
            proptest::prop_assert!((f.total_mb() - size).abs() < 1e-6);
            for b in &f.blocks {
                proptest::prop_assert!(b.size_mb > 0.0 && b.size_mb <= 128.0 + 1e-9);
            }
            // ids are dense 0..n
            for (i, b) in f.blocks.iter().enumerate() {
                proptest::prop_assert_eq!(b.id, BlockId(i));
            }
        }
    }
}

//! Blocks: the unit of storage and of map-task input.

use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;

/// Identifier of one block within a [`crate::FileLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub usize);

/// One stored block and the nodes holding its replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockInfo {
    pub id: BlockId,
    /// Payload size in MB. All blocks are `block_mb` except possibly the
    /// final partial block of a file.
    pub size_mb: f64,
    /// Nodes holding a replica, distinct, in placement order.
    pub replicas: Vec<NodeId>,
}

impl BlockInfo {
    /// True if `node` holds a replica (a map task there reads locally).
    pub fn is_local_to(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let b = BlockInfo {
            id: BlockId(0),
            size_mb: 128.0,
            replicas: vec![NodeId(1), NodeId(4), NodeId(7)],
        };
        assert!(b.is_local_to(NodeId(4)));
        assert!(!b.is_local_to(NodeId(0)));
    }
}

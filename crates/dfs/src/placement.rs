//! Replica placement policy.

use serde::{Deserialize, Serialize};
use simgrid::cluster::{ClusterSpec, NodeId};
use simgrid::rng::SimRng;

/// How replicas are distributed over data nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// HDFS 1.x default on a single rack: each block's replicas land on
    /// `replication` *distinct* uniformly-chosen nodes.
    RandomDistinct {
        /// Replication factor (HDFS default 3).
        replication: usize,
    },
    /// Round-robin striping — not what HDFS does, but useful in tests for a
    /// perfectly balanced layout with zero variance.
    RoundRobin {
        /// Replication factor.
        replication: usize,
    },
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        PlacementPolicy::RandomDistinct { replication: 3 }
    }
}

impl PlacementPolicy {
    pub fn replication(&self) -> usize {
        match *self {
            PlacementPolicy::RandomDistinct { replication }
            | PlacementPolicy::RoundRobin { replication } => replication,
        }
    }

    /// Choose the replica set for block number `index`.
    pub fn place(&self, cluster: &ClusterSpec, index: usize, rng: &mut SimRng) -> Vec<NodeId> {
        let n = cluster.workers;
        assert!(n > 0, "cannot place blocks on an empty cluster");
        let r = self.replication().min(n).max(1);
        match *self {
            PlacementPolicy::RandomDistinct { .. } => {
                rng.choose_distinct(n, r).into_iter().map(NodeId).collect()
            }
            PlacementPolicy::RoundRobin { .. } => (0..r).map(|k| NodeId((index + k) % n)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_distinct_yields_distinct_nodes() {
        let cluster = ClusterSpec::small(8);
        let policy = PlacementPolicy::default();
        let mut rng = SimRng::new(11);
        for i in 0..200 {
            let reps = policy.place(&cluster, i, &mut rng);
            assert_eq!(reps.len(), 3);
            let mut s = reps.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), 3, "replicas must be distinct");
            assert!(reps.iter().all(|n| cluster.contains(*n)));
        }
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let cluster = ClusterSpec::small(2);
        let policy = PlacementPolicy::RandomDistinct { replication: 3 };
        let mut rng = SimRng::new(1);
        let reps = policy.place(&cluster, 0, &mut rng);
        assert_eq!(reps.len(), 2);
    }

    #[test]
    fn round_robin_is_deterministic_and_balanced() {
        let cluster = ClusterSpec::small(4);
        let policy = PlacementPolicy::RoundRobin { replication: 2 };
        let mut rng = SimRng::new(1);
        let mut counts = vec![0usize; 4];
        for i in 0..40 {
            for rep in policy.place(&cluster, i, &mut rng) {
                counts[rep.0] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn placement_spreads_load_roughly_uniformly() {
        let cluster = ClusterSpec::small(16);
        let policy = PlacementPolicy::default();
        let mut rng = SimRng::new(99);
        let mut counts = vec![0usize; 16];
        let blocks = 1600;
        for i in 0..blocks {
            for rep in policy.place(&cluster, i, &mut rng) {
                counts[rep.0] += 1;
            }
        }
        let expected = blocks * 3 / 16;
        for c in counts {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.25,
                "count {c} far from expected {expected}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_place_always_valid(workers in 1usize..32, idx in 0usize..1000, seed in 0u64..100) {
            let cluster = ClusterSpec::small(workers);
            let policy = PlacementPolicy::default();
            let mut rng = SimRng::new(seed);
            let reps = policy.place(&cluster, idx, &mut rng);
            proptest::prop_assert!(!reps.is_empty());
            proptest::prop_assert!(reps.len() <= 3);
            proptest::prop_assert!(reps.iter().all(|n| cluster.contains(*n)));
            let mut s = reps.clone();
            s.sort();
            s.dedup();
            proptest::prop_assert_eq!(s.len(), reps.len());
        }
    }
}

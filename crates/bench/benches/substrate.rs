//! Microbenchmarks of the hot simulation kernels: the per-tick node
//! contention allocator, the fabric's max-min water-filling, and a full
//! engine run per simulated second (the end-to-end tick rate).

use criterion::{criterion_group, criterion_main, Criterion};
use harness::{run_once, System};
use simgrid::network::{Fabric, FabricConfig, Flow, FlowId};
use simgrid::node::{allocate_node, NodeSpec, TaskDemand};
use simgrid::time::SteppingMode;
use simgrid::NodeId;
use smr_bench::{bench_config, mini_job};
use std::hint::black_box;
use workloads::Puma;

fn node_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_allocation");
    let spec = NodeSpec::paper_worker();
    for n in [4usize, 16, 64] {
        let demands = vec![
            TaskDemand {
                cpu_cores: 3.0,
                threads: 3,
                mem_mb: 2000.0,
                disk_read: 20.0,
                disk_write: 8.0,
            };
            n
        ];
        group.bench_function(format!("{n}_tasks"), |b| {
            b.iter(|| black_box(allocate_node(&spec, black_box(&demands))));
        });
    }
    group.finish();
}

fn fabric_waterfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_waterfill");
    for flows in [16usize, 150, 600] {
        let fabric = Fabric::new(FabricConfig::paper_gbe());
        let set: Vec<Flow> = (0..flows)
            .map(|i| Flow {
                id: FlowId(i as u64),
                src: NodeId(i % 16),
                dst: NodeId((i / 16 + 1 + i % 16) % 16),
                demand: if i % 3 == 0 { 25.0 } else { f64::INFINITY },
            })
            .collect();
        group.bench_function(format!("{flows}_flows"), |b| {
            b.iter(|| black_box(fabric.allocate(black_box(&set))));
        });
    }
    group.finish();
}

fn engine_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);
    for (name, sys) in [
        ("hadoopv1", System::HadoopV1),
        ("smapreduce", System::SMapReduce),
    ] {
        for (mode_name, mode) in [
            ("fixed", SteppingMode::Fixed),
            ("adaptive", SteppingMode::Adaptive),
        ] {
            group.bench_function(format!("grep_2gb_{name}_{mode_name}"), |b| {
                let mut cfg = bench_config();
                cfg.tick.mode = mode;
                b.iter(|| {
                    black_box(run_once(&cfg, vec![mini_job(Puma::Grep)], &sys, 1).expect("run"))
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = substrate;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = node_allocation, fabric_waterfill, engine_end_to_end
}
criterion_main!(substrate);

//! `telemetry_overhead` — what instrumentation costs the engine.
//!
//! Three states matter: telemetry disabled (the default build's hot path —
//! must be a branch, nothing more), enabled (preallocated rings), and
//! enabled under `--features profiling` (adds the per-tick duration
//! histogram). The profiling variant is a compile-time state, so run this
//! bench twice — `cargo bench -p smr-bench --bench telemetry` with and
//! without `--features profiling`; the bench labels itself accordingly.

use criterion::{criterion_group, criterion_main, Criterion};
use mapreduce::Engine;
use smr_bench::{bench_config, mini_job};
use std::hint::black_box;
use workloads::Puma;

fn enabled_label() -> &'static str {
    if telemetry::PROFILING_ENABLED {
        "enabled_profiling"
    } else {
        "enabled"
    }
}

/// Raw per-call costs of the operations the tick loop performs.
fn telemetry_calls(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    let disabled = telemetry::Telemetry::disabled();
    group.bench_function("span_call_disabled", |b| {
        b.iter(|| {
            let t0 = disabled.clock_us();
            disabled.record_span("tick", "allocate_nodes", black_box(t0), black_box(1));
        });
    });
    let enabled = telemetry::Telemetry::enabled();
    group.bench_function(format!("span_call_{}", enabled_label()), |b| {
        b.iter(|| {
            let t0 = enabled.clock_us();
            enabled.record_span("tick", "allocate_nodes", black_box(t0), black_box(1));
        });
    });
    group.finish();
}

/// Whole-run overhead: the same seeded engine run with and without a sink.
fn engine_run_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let cfg = bench_config();
    group.bench_function("engine_run_disabled", |b| {
        b.iter(|| {
            let mut p = smapreduce::SlotManagerPolicy::paper_default();
            black_box(
                Engine::new(cfg.clone())
                    .run(vec![mini_job(Puma::Grep)], &mut p)
                    .expect("run"),
            )
        });
    });
    group.bench_function(format!("engine_run_{}", enabled_label()), |b| {
        b.iter(|| {
            let mut p = smapreduce::SlotManagerPolicy::paper_default();
            let telem = telemetry::Telemetry::enabled();
            black_box(
                Engine::new(cfg.clone())
                    .run_with(vec![mini_job(Puma::Grep)], &mut p, &telem)
                    .expect("run"),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = telemetry_overhead;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = telemetry_calls, engine_run_overhead
}
criterion_main!(telemetry_overhead);

//! One Criterion bench group per paper figure. Each group drives the same
//! code path the `reproduce` binary uses for that figure, at miniature
//! scale — so `cargo bench` both times the experiment pipelines and acts
//! as an end-to-end smoke test of every figure generator.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::{run_averaged, run_once, System};
use smapreduce::SmrConfig;
use smr_bench::{bench_config, mini_job, mini_multi_job};
use std::hint::black_box;
use workloads::Puma;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Fig. 1 — thrashing curve point: a static-slot run at a high slot count.
fn fig1_thrashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_thrashing");
    group.sample_size(10);
    for slots in [3usize, 8] {
        group.bench_function(format!("terasort_slots{slots}"), |b| {
            let mut cfg = bench_config();
            cfg.init_map_slots = slots;
            b.iter(|| {
                let r = run_once(&cfg, vec![mini_job(Puma::Terasort)], &System::HadoopV1, 1)
                    .expect("run");
                black_box(r.jobs[0].map_time())
            });
        });
    }
    group.finish();
}

/// Fig. 3 — one benchmark cell under each system.
fn fig3_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_benchmarks");
    group.sample_size(10);
    for sys in System::all() {
        group.bench_function(format!("histogramratings_{}", sys.label()), |b| {
            let cfg = bench_config();
            b.iter(|| {
                let avg =
                    run_averaged(&cfg, &[mini_job(Puma::HistogramRatings)], &sys, 1).expect("run");
                black_box(avg.total_time_s)
            });
        });
    }
    group.finish();
}

/// Fig. 4 — progress trace extraction under SMapReduce.
fn fig4_progress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_progress");
    group.sample_size(10);
    group.bench_function("histogrammovies_smr_trace", |b| {
        let cfg = bench_config();
        b.iter(|| {
            let r = run_once(
                &cfg,
                vec![mini_job(Puma::HistogramMovies)],
                &System::SMapReduce,
                1,
            )
            .expect("run");
            black_box(r.jobs[0].progress.thinned(120))
        });
    });
    group.finish();
}

/// Fig. 5 — the slot-configuration sweep (three points).
fn fig5_slot_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_slot_sweep");
    group.sample_size(10);
    group.bench_function("histogramratings_3pt_sweep", |b| {
        b.iter(|| {
            let mut out = 0.0;
            for slots in [1usize, 4, 8] {
                let mut cfg = bench_config();
                cfg.init_map_slots = slots;
                let avg = run_averaged(
                    &cfg,
                    &[mini_job(Puma::HistogramRatings)],
                    &System::SMapReduce,
                    1,
                )
                .expect("run");
                out += avg.map_time_s;
            }
            black_box(out)
        });
    });
    group.finish();
}

/// Fig. 6 — the input-size sweep (two points).
fn fig6_input_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_input_size");
    group.sample_size(10);
    for gb in [1.0f64, 3.0] {
        group.bench_function(format!("histogramratings_{gb}gb"), |b| {
            let cfg = bench_config();
            let job = Puma::HistogramRatings.job(0, gb * 1024.0, 16, Default::default());
            b.iter(|| {
                let avg = run_averaged(&cfg, std::slice::from_ref(&job), &System::SMapReduce, 1)
                    .expect("run");
                black_box(avg.throughput)
            });
        });
    }
    group.finish();
}

/// Fig. 7 — the ablated slot managers.
fn fig7_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_ablation");
    group.sample_size(10);
    let variants = [
        ("full", System::SMapReduce),
        (
            "no_thrash_detect",
            System::SMapReduceWith(SmrConfig::without_thrashing_detection()),
        ),
        (
            "no_slow_start",
            System::SMapReduceWith(SmrConfig::without_slow_start()),
        ),
    ];
    for (name, sys) in variants {
        group.bench_function(format!("wordcount_{name}"), |b| {
            let cfg = bench_config();
            b.iter(|| {
                let avg = run_averaged(&cfg, &[mini_job(Puma::WordCount)], &sys, 1).expect("run");
                black_box(avg.map_time_s)
            });
        });
    }
    group.finish();
}

/// Fig. 8 — concurrent Grep jobs.
fn fig8_multijob_grep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_multijob_grep");
    group.sample_size(10);
    for sys in System::all() {
        group.bench_function(sys.label(), |b| {
            let cfg = bench_config();
            b.iter(|| {
                let r = run_once(&cfg, mini_multi_job(Puma::Grep), &sys, 1).expect("run");
                black_box((r.mean_execution_time(), r.makespan()))
            });
        });
    }
    group.finish();
}

/// Fig. 9 — concurrent InvertedIndex jobs.
fn fig9_multijob_inverted_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_multijob_inverted_index");
    group.sample_size(10);
    for sys in System::all() {
        group.bench_function(sys.label(), |b| {
            let cfg = bench_config();
            b.iter(|| {
                let r = run_once(&cfg, mini_multi_job(Puma::InvertedIndex), &sys, 1).expect("run");
                black_box((r.mean_execution_time(), r.makespan()))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    config = {
        let mut c = Criterion::default()
            .warm_up_time(std::time::Duration::from_millis(500))
            .measurement_time(std::time::Duration::from_secs(2));
        configure(&mut c);
        c
    };
    targets = fig1_thrashing, fig3_benchmarks, fig4_progress, fig5_slot_sweep,
              fig6_input_size, fig7_ablation, fig8_multijob_grep,
              fig9_multijob_inverted_index
}
criterion_main!(figures);

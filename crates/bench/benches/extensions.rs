//! Criterion benches for the extension and validation experiments
//! (heterogeneous clusters, fair scheduling, speculation, the design-knob
//! ablations and the §III-B1 model check), at miniature scale.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::{run_once, System};
use mapreduce::{EngineConfig, SchedKind};
use simgrid::cluster::ClusterSpec;
use simgrid::node::NodeSpec;
use simgrid::time::SimDuration;
use smapreduce::SmrConfig;
use smr_bench::{bench_config, mini_job, MINI_INPUT_MB};
use std::hint::black_box;
use workloads::Puma;

/// Heterogeneous cluster: uniform vs capacity-proportional manager.
fn ext_hetero(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_hetero");
    group.sample_size(10);
    let weak = NodeSpec {
        cores: 8.0,
        mem_mb: 14.0 * 1024.0,
        disk_bw: 140.0,
        ..NodeSpec::paper_worker()
    };
    for (name, sys) in [
        ("uniform", System::SMapReduce),
        ("capacity_proportional", System::SMapReduceHetero),
    ] {
        group.bench_function(name, |b| {
            let mut cfg = bench_config();
            cfg.cluster = ClusterSpec::mixed(8, 8, weak);
            b.iter(|| {
                black_box(
                    run_once(&cfg, vec![mini_job(Puma::HistogramRatings)], &sys, 1).expect("run"),
                )
            });
        });
    }
    group.finish();
}

/// FIFO vs Fair under a mixed-size queue.
fn ext_fair(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_fair");
    group.sample_size(10);
    for (name, kind) in [("fifo", SchedKind::Fifo), ("fair", SchedKind::Fair)] {
        group.bench_function(name, |b| {
            let mut cfg = bench_config();
            cfg.scheduler = kind;
            let jobs = vec![
                Puma::Grep.job(0, MINI_INPUT_MB, 8, simgrid::time::SimTime::ZERO),
                Puma::Grep.job(
                    1,
                    MINI_INPUT_MB / 4.0,
                    8,
                    simgrid::time::SimTime::from_secs(5),
                ),
                Puma::Grep.job(
                    2,
                    MINI_INPUT_MB / 4.0,
                    8,
                    simgrid::time::SimTime::from_secs(10),
                ),
            ];
            b.iter(|| black_box(run_once(&cfg, jobs.clone(), &System::HadoopV1, 1).expect("run")));
        });
    }
    group.finish();
}

/// Speculation on a degraded cluster.
fn ext_stragglers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_stragglers");
    group.sample_size(10);
    for (name, speculate) in [("no_speculation", false), ("speculation", true)] {
        group.bench_function(name, |b| {
            let mut cfg = bench_config();
            cfg.straggler_rate = 0.05;
            cfg.map_failure_rate = 0.03;
            cfg.speculative_maps = speculate;
            cfg.speculation_min_runtime = SimDuration::from_secs(5);
            b.iter(|| {
                black_box(
                    run_once(&cfg, vec![mini_job(Puma::Grep)], &System::HadoopV1, 1).expect("run"),
                )
            });
        });
    }
    group.finish();
}

/// One design-knob ablation point (the full sweep runs via `reproduce`).
fn ablation_knobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_knobs");
    group.sample_size(10);
    for (name, window_s) in [("window_12s", 12u64), ("window_48s", 48)] {
        group.bench_function(name, |b| {
            let cfg = bench_config();
            let smr = SmrConfig {
                balance_window: SimDuration::from_secs(window_s),
                ..SmrConfig::default()
            };
            let sys = System::SMapReduceWith(smr);
            b.iter(|| {
                black_box(run_once(&cfg, vec![mini_job(Puma::WordCount)], &sys, 1).expect("run"))
            });
        });
    }
    group.finish();
}

/// §III-B1 model evaluation (pure arithmetic — shows the analytic path is
/// effectively free next to a simulation).
fn model_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_check");
    group.bench_function("predict_four_benchmarks", |b| {
        let cfg = EngineConfig::paper_default();
        b.iter(|| {
            let mut acc = 0.0;
            for bench in harness::model_check::BENCHMARKS {
                let (m, f) = harness::model_check::predict(&cfg, bench, MINI_INPUT_MB, 16);
                acc += m + f;
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group! {
    name = extensions;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = ext_hetero, ext_fair, ext_stragglers, ablation_knobs, model_check
}
criterion_main!(extensions);

//! # smr-bench — benchmark support
//!
//! The Criterion benches live in `benches/`:
//!
//! * `figures` — one bench group per paper figure (Figs. 1, 3–9), running
//!   the same harness code paths at miniature scale so a `cargo bench`
//!   pass times every experiment pipeline;
//! * `substrate` — microbenchmarks of the hot simulation kernels (node
//!   contention allocation, fabric water-filling, a full engine run).
//!
//! This library exposes the shared miniature-workload constructors so the
//! two bench binaries (and any future ones) agree on scale.

use mapreduce::{EngineConfig, JobSpec};
use simgrid::time::SimTime;
use workloads::Puma;

/// Miniature input size (MB) used by the figure benches: big enough to
/// cross the reduce slow-start and exercise the whole pipeline, small
/// enough that one run takes tens of milliseconds.
pub const MINI_INPUT_MB: f64 = 2.0 * 1024.0;

/// The paper's engine configuration (16 workers), as used by every bench.
pub fn bench_config() -> EngineConfig {
    EngineConfig::paper_default()
}

/// A miniature single job of `bench`.
pub fn mini_job(bench: Puma) -> JobSpec {
    bench.job(0, MINI_INPUT_MB, 16, SimTime::ZERO)
}

/// A miniature §V-F multi-job workload.
pub fn mini_multi_job(bench: Puma) -> Vec<JobSpec> {
    workloads::paper_multi_job(bench, MINI_INPUT_MB / 2.0, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::{run_once, System};

    #[test]
    fn mini_workloads_run() {
        let cfg = bench_config();
        let r = run_once(&cfg, vec![mini_job(Puma::Grep)], &System::SMapReduce, 1).unwrap();
        assert_eq!(r.jobs.len(), 1);
        let jobs = mini_multi_job(Puma::Grep);
        assert_eq!(jobs.len(), 4);
        let r = run_once(&cfg, jobs, &System::HadoopV1, 1).unwrap();
        assert_eq!(r.jobs.len(), 4);
    }
}

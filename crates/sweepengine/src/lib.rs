//! # sweepengine — batched multi-cell sweep execution
//!
//! Every sweep in this reproduction is a grid of independent *cells*
//! (policy × fault plan × load × seed points). The original harness ran
//! one OS thread per cell: fine for the paper's ~30-cell figures, hopeless
//! for 1000-cell policy tournaments — wall time and memory both scale with
//! grid size × thread count, and every cell pays full engine construction.
//!
//! This crate replaces that with a [`BatchedSweep`] executor:
//!
//! * a **bounded worker pool** — `available_parallelism` workers, each
//!   claiming the next unclaimed cell from a shared atomic cursor
//!   (self-scheduling work stealing: an idle worker always takes the next
//!   cell, so stragglers never serialise the grid);
//! * **arena-backed state reuse** — each worker owns one
//!   [`mapreduce::EngineArena`] and recycles the engine's scratch buffers
//!   through it, cell after cell, instead of reallocating per cell;
//! * **double-buffered result slots** — every cell has its own
//!   write-once slot ([`std::sync::OnceLock`]), so a finished cell hands
//!   its `RunReport` off without taking any lock the pool contends on
//!   and immediately claims the next cell;
//! * **deterministic failure attribution** — a panicking cell never tears
//!   down the pool mid-grid; every panic is caught and recorded, and
//!   after the grid drains the executor re-raises the lowest-indexed one
//!   tagged with (system, cell index, trial seed).
//!
//! Shared warm-start prefixes (cluster boot + DFS load capsules from
//! `Engine::prepare`) are deduplicated across cells by capsule fingerprint
//! in a [`PrefixCache`].
//!
//! Cell results are byte-identical to the thread-per-cell path: workers
//! only decide *when* a cell runs, never *what* it computes, and arenas
//! hand out buffers reset to exactly the state a fresh allocation would
//! have. The cross-worker-count determinism suite in
//! `tests/sweep_determinism.rs` pins this down.

mod pool;
mod prefix;

pub use pool::{BatchedSweep, SweepCell, SweepOutcome, SweepStats};
pub use prefix::PrefixCache;

/// Best-effort extraction of a panic payload's message — the one shared
/// implementation for pool workers and the harness's per-trial wrappers.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_message_handles_both_string_forms() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}

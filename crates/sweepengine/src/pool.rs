//! The bounded worker pool and its cell protocol.

use crate::panic_message;
use mapreduce::{EngineArena, RunReport};
use simgrid::error::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One independent unit of sweep work. Implementations hold everything
/// the cell needs (config, jobs or a warm capsule, the system to run) and
/// produce a fully audited `RunReport` when driven by a pool worker.
///
/// `system` and `seed` exist purely for failure attribution: when a cell
/// panics, the executor re-raises with both attached so a 1000-cell grid
/// failure names the exact cell that died.
pub trait SweepCell: Sync {
    /// Label of the system this cell runs (e.g. `"SMapReduce"`).
    fn system(&self) -> &str;
    /// The trial seed this cell runs under.
    fn seed(&self) -> u64;
    /// Execute the cell, drawing scratch allocations from `arena`.
    fn run(&self, arena: &mut EngineArena) -> Result<RunReport, SimError>;
}

/// Aggregate execution metrics of one [`BatchedSweep::run`] call.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Cells in the grid.
    pub cells: usize,
    /// Workers the pool actually used (`min(bound, cells)`).
    pub workers: usize,
    /// Wall-clock duration of the whole grid (seconds).
    pub wall_seconds: f64,
    /// Grid throughput: `cells / wall_seconds`.
    pub cells_per_sec: f64,
    /// Most cells ever simultaneously in flight — bounded by `workers`,
    /// unlike the thread-per-cell path where it equalled the grid size.
    pub peak_resident_cells: usize,
    /// Arena buffer growths summed over all workers (checkout resizes +
    /// in-run growth); flat once every worker saw each cell shape once.
    pub arena_growth_events: u64,
    /// Cells that ran out of a recycled arena. Each worker's first cell
    /// allocates its arena fresh and is excluded, so this sits between
    /// `cells - workers` (every worker claimed a cell) and `cells - 1`
    /// (one worker claimed the whole grid).
    pub arena_cells_recycled: u64,
}

/// The reports of a finished grid, in cell order, plus [`SweepStats`].
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-cell results, indexed exactly like the input grid.
    pub reports: Vec<Result<RunReport, SimError>>,
    pub stats: SweepStats,
}

/// A recorded worker panic, held until the grid drains.
struct CellPanic {
    index: usize,
    system: String,
    seed: u64,
    message: String,
}

/// Bounded-pool executor for sweep grids. See the crate docs for the
/// execution model.
#[derive(Debug, Clone)]
pub struct BatchedSweep {
    workers: usize,
}

impl BatchedSweep {
    /// A pool sized to the machine: `available_parallelism` workers
    /// (falling back to 1 when the count is unavailable).
    pub fn auto() -> BatchedSweep {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchedSweep::with_workers(workers)
    }

    /// A pool with an explicit worker bound (clamped to at least 1) —
    /// the determinism suite runs the same grid at 1, 2, and N workers.
    pub fn with_workers(workers: usize) -> BatchedSweep {
        BatchedSweep {
            workers: workers.max(1),
        }
    }

    /// The configured worker bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Drive every cell to completion and return reports in cell order.
    ///
    /// Results are independent of the worker count and claim order: each
    /// cell is a pure function of its own inputs, writes its result into
    /// its own slot, and recycled arena buffers are indistinguishable
    /// from fresh ones.
    ///
    /// If any cell panicked, the panic with the lowest cell index is
    /// re-raised (deterministically, however many workers raced) as
    /// `"{system} cell {index} with trial seed {seed} panicked: {msg}"`.
    /// Drive a batch of **mutable** tasks through the pool once and return
    /// `f`'s results in task order — the realtime service's per-tick
    /// primitive, where each "cell" is a long-lived tenant advanced in
    /// place rather than a pure run-to-completion job.
    ///
    /// Each task is claimed by exactly one worker (atomic cursor, same
    /// claim protocol as [`BatchedSweep::run`]) which takes its lock
    /// uncontended and gets `&mut T` plus that worker's recycled
    /// [`EngineArena`]. Small batches skip thread spawning entirely: with
    /// one effective worker or one task the batch runs inline on the
    /// caller's thread against `inline_arena`, so a lightly-loaded tick
    /// pays no synchronisation at all.
    ///
    /// Panics re-raise like [`BatchedSweep::run`]: the lowest-index
    /// panicking task wins deterministically, labelled
    /// `"batch task {index} panicked: {msg}"`.
    pub fn run_mut<T, R, F>(&self, tasks: &mut [T], inline_arena: &mut EngineArena, f: F) -> Vec<R>
    where
        T: Send,
        R: Send + Sync,
        F: Fn(usize, &mut T, &mut EngineArena) -> R + Sync,
    {
        let n = tasks.len();
        let workers = self.workers.min(n).max(1);
        if workers == 1 {
            return tasks
                .iter_mut()
                .enumerate()
                .map(|(i, t)| f(i, t, inline_arena))
                .collect();
        }
        let cells: Vec<Mutex<&mut T>> = tasks.iter_mut().map(Mutex::new).collect();
        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut arena = EngineArena::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut task = cells[i].try_lock().expect("task claimed exactly once");
                        let outcome =
                            catch_unwind(AssertUnwindSafe(|| f(i, &mut task, &mut arena)));
                        match outcome {
                            Ok(result) => {
                                let _ = slots[i].set(result);
                            }
                            Err(payload) => panics
                                .lock()
                                .expect("panic log")
                                .push((i, panic_message(payload.as_ref()))),
                        }
                    }
                });
            }
        });
        let mut panics = panics.into_inner().expect("panic log");
        if !panics.is_empty() {
            panics.sort_by_key(|&(i, _)| i);
            let (i, msg) = &panics[0];
            std::panic::panic_any(format!("batch task {i} panicked: {msg}"));
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every claimed task published a result")
            })
            .collect()
    }

    pub fn run<C: SweepCell>(&self, cells: &[C]) -> SweepOutcome {
        let n = cells.len();
        let workers = self.workers.min(n).max(1);
        // one write-once slot per cell: finished cells publish here and
        // move straight on, nothing joins until the whole grid drains
        let slots: Vec<OnceLock<Result<RunReport, SimError>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let resident = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let growth = AtomicU64::new(0);
        let recycled = AtomicU64::new(0);
        let panics: Mutex<Vec<CellPanic>> = Mutex::new(Vec::new());
        let started = Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // one arena per worker, recycled across every cell
                    // this worker claims
                    let mut arena = EngineArena::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let now = resident.fetch_add(1, Ordering::Relaxed) + 1;
                        peak.fetch_max(now, Ordering::Relaxed);
                        let outcome = catch_unwind(AssertUnwindSafe(|| cells[i].run(&mut arena)));
                        resident.fetch_sub(1, Ordering::Relaxed);
                        match outcome {
                            Ok(result) => {
                                let _ = slots[i].set(result);
                            }
                            Err(payload) => panics.lock().expect("panic log").push(CellPanic {
                                index: i,
                                system: cells[i].system().to_string(),
                                seed: cells[i].seed(),
                                message: panic_message(payload.as_ref()),
                            }),
                        }
                    }
                    growth.fetch_add(arena.growth_events(), Ordering::Relaxed);
                    recycled.fetch_add(arena.cells_recycled(), Ordering::Relaxed);
                });
            }
        });

        let wall_seconds = started.elapsed().as_secs_f64();
        let mut panics = panics.into_inner().expect("panic log");
        if !panics.is_empty() {
            panics.sort_by_key(|p| p.index);
            let p = &panics[0];
            std::panic::panic_any(format!(
                "{} cell {} with trial seed {} panicked: {}",
                p.system, p.index, p.seed, p.message
            ));
        }
        let reports = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every claimed cell published a result")
            })
            .collect();
        SweepOutcome {
            reports,
            stats: SweepStats {
                cells: n,
                workers,
                wall_seconds,
                cells_per_sec: if wall_seconds > 0.0 {
                    n as f64 / wall_seconds
                } else {
                    0.0
                },
                peak_resident_cells: peak.load(Ordering::Relaxed),
                arena_growth_events: growth.load(Ordering::Relaxed),
                arena_cells_recycled: recycled.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::StaticSlotPolicy;
    use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
    use simgrid::SimTime;

    fn disabled() -> telemetry::Telemetry {
        telemetry::Telemetry::disabled()
    }

    struct EngineCell {
        seed: u64,
        poison: bool,
    }

    impl SweepCell for EngineCell {
        fn system(&self) -> &str {
            "HadoopV1"
        }

        fn seed(&self) -> u64 {
            self.seed
        }

        fn run(&self, arena: &mut EngineArena) -> Result<RunReport, SimError> {
            if self.poison {
                panic!("poisoned cell");
            }
            let cfg = EngineConfig::small_test(4, self.seed);
            let job = JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                512.0,
                8,
                SimTime::ZERO,
            );
            Engine::new(cfg).run_in(vec![job], &mut StaticSlotPolicy, &disabled(), arena)
        }
    }

    fn grid(seeds: &[u64]) -> Vec<EngineCell> {
        seeds
            .iter()
            .map(|&seed| EngineCell {
                seed,
                poison: false,
            })
            .collect()
    }

    #[test]
    fn pool_is_bounded_and_reports_land_in_cell_order() {
        let cells = grid(&[1, 2, 3, 4, 5, 6]);
        let out = BatchedSweep::with_workers(2).run(&cells);
        assert_eq!(out.stats.workers, 2);
        assert!(out.stats.peak_resident_cells <= 2);
        assert_eq!(out.reports.len(), 6);
        for r in &out.reports {
            assert!(r.is_ok());
        }
        // each worker's first cell allocates its arena fresh: 4 of the 6
        // cells recycled when both workers ran cells, 5 when one worker
        // raced ahead and claimed the whole grid
        assert!(
            (4..=5).contains(&out.stats.arena_cells_recycled),
            "recycled {} of 6 cells on 2 workers",
            out.stats.arena_cells_recycled
        );
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let cells = grid(&[10, 11, 12, 13]);
        let one = BatchedSweep::with_workers(1).run(&cells);
        let four = BatchedSweep::with_workers(4).run(&cells);
        for (a, b) in one.reports.iter().zip(&four.reports) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn arena_growth_flattens_after_warmup() {
        // a single worker sees the same cell shape repeatedly: all growth
        // happens on the first cell
        let cells = grid(&[1, 1, 1, 1, 1]);
        let out = BatchedSweep::with_workers(1).run(&cells);
        let single = BatchedSweep::with_workers(1).run(&grid(&[1]));
        assert_eq!(
            out.stats.arena_growth_events, single.stats.arena_growth_events,
            "cells after the first must not grow the arena"
        );
    }

    #[test]
    fn lowest_indexed_panic_wins_and_carries_cell_identity() {
        let mut cells = grid(&[20, 21, 22]);
        cells[1].poison = true;
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            BatchedSweep::with_workers(2).run(&cells);
        }))
        .expect_err("poisoned grid panics");
        let msg = payload
            .downcast_ref::<String>()
            .expect("re-panic carries a String");
        assert!(msg.contains("HadoopV1"), "no system in: {msg}");
        assert!(msg.contains("cell 1"), "no cell index in: {msg}");
        assert!(msg.contains("seed 21"), "no trial seed in: {msg}");
        assert!(
            msg.contains("poisoned cell"),
            "original message lost: {msg}"
        );
    }

    #[test]
    fn run_mut_visits_every_task_once_and_keeps_order() {
        let mut tasks: Vec<u64> = (0..37).collect();
        let mut arena = EngineArena::new();
        let results =
            BatchedSweep::with_workers(4).run_mut(&mut tasks, &mut arena, |i, t, _arena| {
                *t += 100;
                (i as u64, *t)
            });
        assert_eq!(results.len(), 37);
        for (i, (idx, val)) in results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*val, i as u64 + 100);
        }
        assert!(tasks.iter().enumerate().all(|(i, t)| *t == i as u64 + 100));
    }

    #[test]
    fn run_mut_inline_path_matches_pooled_path() {
        let mut a: Vec<u64> = (0..9).collect();
        let mut b = a.clone();
        let mut arena = EngineArena::new();
        let one = BatchedSweep::with_workers(1).run_mut(&mut a, &mut arena, |i, t, _| {
            *t = t.wrapping_mul(7) ^ i as u64;
            *t
        });
        let four = BatchedSweep::with_workers(4).run_mut(&mut b, &mut arena, |i, t, _| {
            *t = t.wrapping_mul(7) ^ i as u64;
            *t
        });
        assert_eq!(one, four);
        assert_eq!(a, b);
    }

    #[test]
    fn run_mut_advances_real_engine_tenants() {
        // two capsules advanced one bounded slice through the pool must
        // match the same advances run inline
        let prepare = |seed: u64| {
            let cfg = EngineConfig::small_test(4, seed);
            let job = JobSpec::new(
                0,
                JobProfile::synthetic_map_heavy(),
                256.0,
                4,
                SimTime::ZERO,
            );
            let mut state = Engine::new(cfg).prepare(vec![job]).unwrap();
            state.override_policy("HadoopV1").unwrap();
            state
        };
        let advance = |state: mapreduce::EngineState, arena: &mut EngineArena| {
            Engine::advance_until_in(
                state,
                &mut StaticSlotPolicy,
                SimTime::from_secs(30),
                &disabled(),
                arena,
            )
            .unwrap()
        };
        let mut pooled: Vec<Option<mapreduce::EngineState>> =
            vec![Some(prepare(1)), Some(prepare(2))];
        let mut arena = EngineArena::new();
        let hashes =
            BatchedSweep::with_workers(2).run_mut(&mut pooled, &mut arena, |_, slot, a| {
                let out = advance(slot.take().unwrap(), a);
                let h = out.state.state_hash();
                *slot = Some(out.state);
                h
            });
        let mut inline_arena = EngineArena::new();
        for (i, seed) in [1u64, 2].iter().enumerate() {
            let out = advance(prepare(*seed), &mut inline_arena);
            assert_eq!(hashes[i], out.state.state_hash(), "tenant {i} diverged");
        }
    }

    #[test]
    fn run_mut_panic_names_the_lowest_task() {
        let mut tasks: Vec<u64> = (0..8).collect();
        let mut arena = EngineArena::new();
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            BatchedSweep::with_workers(3).run_mut(&mut tasks, &mut arena, |i, _t, _| {
                if i >= 2 {
                    panic!("task blew up");
                }
                i
            });
        }))
        .expect_err("poisoned batch panics");
        let msg = payload
            .downcast_ref::<String>()
            .expect("re-panic carries a String");
        assert!(msg.contains("task 2"), "lowest index lost: {msg}");
        assert!(msg.contains("task blew up"), "message lost: {msg}");
    }

    #[test]
    fn empty_grid_is_a_noop() {
        let out = BatchedSweep::auto().run(&grid(&[]));
        assert!(out.reports.is_empty());
        assert_eq!(out.stats.cells, 0);
        assert_eq!(out.stats.peak_resident_cells, 0);
    }
}

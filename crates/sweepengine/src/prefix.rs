//! Warm-start prefix deduplication.
//!
//! Sweep cells that share a prefix — same cluster, seed, and job set, but
//! a different fault plan, policy, or knob bound at resume time — can all
//! warm-start from one `Engine::prepare` capsule (cluster booted, DFS
//! layouts materialised, t = 0). The cache keys capsules by their content
//! fingerprint ([`EngineState::fingerprint`]): however many grid axes
//! independently prepare "the same" prefix, exactly one capsule stays
//! resident and every cell resumes a clone of it.

use mapreduce::EngineState;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fingerprint-keyed pool of shared warm-start capsules. Cheap to share
/// across pool workers (`&PrefixCache` is `Sync`).
#[derive(Debug, Default)]
pub struct PrefixCache {
    by_fingerprint: Mutex<HashMap<u64, Arc<EngineState>>>,
    hits: AtomicU64,
}

impl PrefixCache {
    pub fn new() -> PrefixCache {
        PrefixCache::default()
    }

    /// Deduplicate `state` against the cache: if a capsule with the same
    /// fingerprint is already resident, drop `state` and return the
    /// resident one (counting a hit); otherwise `state` becomes resident.
    pub fn intern(&self, state: EngineState) -> Arc<EngineState> {
        let fingerprint = state.fingerprint();
        let mut map = self.by_fingerprint.lock().expect("prefix cache");
        if let Some(existing) = map.get(&fingerprint) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Arc::clone(existing)
        } else {
            let capsule = Arc::new(state);
            map.insert(fingerprint, Arc::clone(&capsule));
            capsule
        }
    }

    /// Distinct capsules resident.
    pub fn capsules(&self) -> usize {
        self.by_fingerprint.lock().expect("prefix cache").len()
    }

    /// Interns that collapsed onto an already-resident capsule.
    pub fn dedup_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
    use simgrid::SimTime;

    fn capsule(seed: u64) -> EngineState {
        let cfg = EngineConfig::small_test(4, seed);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            512.0,
            8,
            SimTime::ZERO,
        );
        Engine::new(cfg).prepare(vec![job]).expect("prepare")
    }

    #[test]
    fn identical_prefixes_collapse_to_one_capsule() {
        let cache = PrefixCache::new();
        let a = cache.intern(capsule(7));
        let b = cache.intern(capsule(7));
        assert!(Arc::ptr_eq(&a, &b), "same prefix must share one capsule");
        assert_eq!(cache.capsules(), 1);
        assert_eq!(cache.dedup_hits(), 1);
    }

    #[test]
    fn different_seeds_stay_distinct() {
        let cache = PrefixCache::new();
        let a = cache.intern(capsule(1));
        let b = cache.intern(capsule(2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.capsules(), 2);
        assert_eq!(cache.dedup_hits(), 0);
    }
}

//! Warm-start prefix deduplication.
//!
//! Sweep cells that share a prefix — same cluster, seed, and job set, but
//! a different fault plan, policy, or knob bound at resume time — can all
//! warm-start from one `Engine::prepare` capsule (cluster booted, DFS
//! layouts materialised, t = 0). The cache keys capsules by their content
//! fingerprint ([`EngineState::fingerprint`]): however many grid axes
//! independently prepare "the same" prefix, exactly one capsule stays
//! resident and every cell resumes a clone of it.
//!
//! Capsules are interned by their packed *binary* encoding
//! ([`checkpoint::state_encoding`]) rather than canonical JSON — the same
//! deterministic value-tree walk, at roughly a third of the bytes held
//! resident per capsule and without JSON float formatting on the hot
//! sweep path.
//!
//! The 64-bit fingerprint is a key, not a proof of identity: every hit is
//! confirmed by comparing the full encoding the fingerprint was
//! computed from. A colliding pair of distinct prefixes therefore ends up
//! as two resident capsules (and a bumped collision counter) instead of
//! one cell silently resuming the other's state — which would break the
//! byte-identical determinism contract with no diagnostic.

use mapreduce::EngineState;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One interned capsule plus the canonical encoding that identifies it.
#[derive(Debug)]
struct Resident {
    /// Packed binary encoding the fingerprint was computed from, compared
    /// in full on every fingerprint hit.
    canonical: Vec<u8>,
    capsule: Arc<EngineState>,
}

/// A fingerprint-keyed pool of shared warm-start capsules. Cheap to share
/// across pool workers (`&PrefixCache` is `Sync`).
#[derive(Debug, Default)]
pub struct PrefixCache {
    by_fingerprint: Mutex<HashMap<u64, Vec<Resident>>>,
    hits: AtomicU64,
    collisions: AtomicU64,
}

impl PrefixCache {
    pub fn new() -> PrefixCache {
        PrefixCache::default()
    }

    /// Deduplicate `state` against the cache: if a capsule with the same
    /// fingerprint *and* the same canonical encoding is already resident,
    /// drop `state` and return the resident one (counting a hit);
    /// otherwise `state` becomes resident. A fingerprint hit whose
    /// canonical encoding differs is a collision: the states stay
    /// distinct and [`PrefixCache::fingerprint_collisions`] is bumped.
    pub fn intern(&self, state: EngineState) -> Arc<EngineState> {
        let canonical = checkpoint::state_encoding(&state);
        let fingerprint = EngineState::fingerprint_of_bytes(&canonical);
        self.intern_keyed(fingerprint, canonical, state)
    }

    /// [`PrefixCache::intern`] with the fingerprint supplied by the
    /// caller — split out so tests can force a collision.
    fn intern_keyed(
        &self,
        fingerprint: u64,
        canonical: Vec<u8>,
        state: EngineState,
    ) -> Arc<EngineState> {
        let mut map = self.by_fingerprint.lock().expect("prefix cache");
        let bucket = map.entry(fingerprint).or_default();
        if let Some(resident) = bucket.iter().find(|r| r.canonical == canonical) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&resident.capsule);
        }
        if !bucket.is_empty() {
            self.collisions.fetch_add(1, Ordering::Relaxed);
        }
        let capsule = Arc::new(state);
        bucket.push(Resident {
            canonical,
            capsule: Arc::clone(&capsule),
        });
        capsule
    }

    /// Distinct capsules resident.
    pub fn capsules(&self) -> usize {
        self.by_fingerprint
            .lock()
            .expect("prefix cache")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Interns that collapsed onto an already-resident capsule.
    pub fn dedup_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fingerprint hits whose canonical encodings differed — distinct
    /// prefixes that would have been silently aliased by a
    /// fingerprint-only cache.
    pub fn fingerprint_collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
    use simgrid::SimTime;

    fn capsule(seed: u64) -> EngineState {
        let cfg = EngineConfig::small_test(4, seed);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            512.0,
            8,
            SimTime::ZERO,
        );
        Engine::new(cfg).prepare(vec![job]).expect("prepare")
    }

    #[test]
    fn identical_prefixes_collapse_to_one_capsule() {
        let cache = PrefixCache::new();
        let a = cache.intern(capsule(7));
        let b = cache.intern(capsule(7));
        assert!(Arc::ptr_eq(&a, &b), "same prefix must share one capsule");
        assert_eq!(cache.capsules(), 1);
        assert_eq!(cache.dedup_hits(), 1);
        assert_eq!(cache.fingerprint_collisions(), 0);
    }

    #[test]
    fn different_seeds_stay_distinct() {
        let cache = PrefixCache::new();
        let a = cache.intern(capsule(1));
        let b = cache.intern(capsule(2));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.capsules(), 2);
        assert_eq!(cache.dedup_hits(), 0);
    }

    #[test]
    fn colliding_fingerprints_do_not_alias_distinct_prefixes() {
        // force two different states onto one fingerprint key: the cache
        // must keep them distinct instead of handing the second interner
        // the first state's capsule
        let cache = PrefixCache::new();
        let (one, two) = (capsule(1), capsule(2));
        let (canon_one, canon_two) = (
            checkpoint::state_encoding(&one),
            checkpoint::state_encoding(&two),
        );
        assert_ne!(canon_one, canon_two, "states must actually differ");
        let a = cache.intern_keyed(42, canon_one.clone(), one);
        let b = cache.intern_keyed(42, canon_two, two);
        assert!(!Arc::ptr_eq(&a, &b), "collision aliased distinct prefixes");
        assert_eq!(cache.capsules(), 2);
        assert_eq!(cache.dedup_hits(), 0);
        assert_eq!(cache.fingerprint_collisions(), 1);

        // a true re-intern under the colliding key still deduplicates
        let c = cache.intern_keyed(42, canon_one, capsule(1));
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.dedup_hits(), 1);
        assert_eq!(cache.fingerprint_collisions(), 1);
    }
}

//! # yarn — the container-based baseline (Hadoop 2 / YARN)
//!
//! YARN replaces HadoopV1's statically partitioned map/reduce slots with
//! resource *containers*: a resource manager hands out memory/vcore leases,
//! node managers run a task per container, and a per-job application
//! master requests map containers at higher priority than reduce
//! containers. The paper evaluates against YARN configured "to be able to
//! run 3 map containers and 2 reduce containers concurrently" — i.e. the
//! same nominal concurrency as HadoopV1, but with the budget shared
//! flexibly.
//!
//! Per the paper's own uniformity note (§II-A: "we use the *slot* to denote
//! the slot in HadoopV1 and the container in YARN"), the baseline is
//! implemented as a [`mapreduce::policy::SlotPolicy`] over the same engine:
//!
//! * [`container`] — the memory/vcore sizing model (how a container size
//!   maps to per-node concurrency, the user guesswork of §I);
//! * [`capacity`] — the capacity scheduler with map priority as a dynamic
//!   per-heartbeat targets rule.
//!
//! What this baseline deliberately lacks — thrashing detection and
//! map/shuffle balancing — is exactly what `smapreduce` adds.
//!
//! ```
//! use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
//! use yarn::CapacityPolicy;
//! use simgrid::SimTime;
//!
//! let cfg = EngineConfig::small_test(4, 7);
//! let job = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 2048.0, 8, SimTime::ZERO);
//! let report = Engine::new(cfg).run(vec![job], &mut CapacityPolicy).unwrap();
//! assert_eq!(report.policy, "YARN");
//! ```

pub mod capacity;
pub mod container;

pub use capacity::{capacity_targets, CapacityPolicy, NodeTargets};
pub use container::{ContainerSpec, NodeResources};

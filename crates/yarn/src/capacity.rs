//! The capacity scheduler as a slot policy: container flexibility with map
//! priority.
//!
//! The paper's description (§V-F, §VI): the capacity scheduler behaves like
//! FIFO but gives map tasks higher scheduling priority than reduce tasks.
//! Structurally, YARN's improvement over HadoopV1's static partition is
//! that a node's resources form *one* budget: while no reduce containers
//! are wanted, map containers can use the whole node; once reduces pass
//! their slow-start the application master's reduce requests reserve their
//! share again; after the maps drain, freed resources serve pending
//! reduces. What YARN still does **not** do — the paper's target — is adapt
//! the total concurrency to the observed throughput (no thrashing
//! awareness, no map/shuffle balancing).
//!
//! Per-tracker targets are recomputed every heartbeat from demand:
//!
//! ```text
//! budget        = init_map + init_reduce            (container capacity)
//! reserve       = min(init_reduce, reduce_need)     (AM's reduce requests)
//!                 halved while map demand saturates the cluster
//!                 (reduce ramp-up throttle under map priority)
//! map_target    = min(map_need, budget - reserve)   (maps first)
//! reduce_target = min(reduce_need, budget - map_target)  (backfill)
//! ```

use mapreduce::policy::{PolicyContext, SlotDirective, SlotPolicy};
use mapreduce::stats::ClusterStats;

/// Per-node targets computed by the capacity rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeTargets {
    pub map: usize,
    pub reduce: usize,
}

/// Pure capacity computation (unit-testable without an engine).
pub fn capacity_targets(
    stats: &ClusterStats,
    workers: usize,
    init_map: usize,
    init_reduce: usize,
) -> NodeTargets {
    let workers = workers.max(1);
    let budget = init_map + init_reduce;
    let map_need = (stats.pending_maps + stats.running_maps).div_ceil(workers);
    let reduce_need = (stats.eligible_pending_reduces + stats.running_reduces).div_ceil(workers);
    // Map priority: while map demand saturates the cluster, reduce
    // containers are held to half their configured share (the AM's reduce
    // ramp-up throttle); the moment map demand drops below capacity,
    // reduces get their full reservation and then backfill freed budget.
    let full_reserve = init_reduce.min(reduce_need);
    let reserve = if map_need > budget {
        full_reserve.min(init_reduce.div_ceil(2))
    } else {
        full_reserve
    };
    let map = map_need
        .min(budget - reserve)
        .max(if map_need > 0 { 1 } else { 0 });
    let reduce = reduce_need.min(budget - map.min(budget));
    NodeTargets { map, reduce }
}

/// YARN's capacity scheduler as a [`SlotPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityPolicy;

impl SlotPolicy for CapacityPolicy {
    fn name(&self) -> &'static str {
        "YARN"
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> Vec<SlotDirective> {
        let t = capacity_targets(
            ctx.stats,
            ctx.trackers.len(),
            ctx.init_map_slots,
            ctx.init_reduce_slots,
        );
        // idle cluster: return to the configured baseline
        let (map, reduce) = if ctx.stats.total_maps == 0 {
            (ctx.init_map_slots, ctx.init_reduce_slots)
        } else {
            (t.map.max(1), t.reduce)
        };
        ctx.trackers
            .iter()
            .filter(|tr| tr.map_target != map || tr.reduce_target != reduce)
            .map(|tr| SlotDirective {
                node: tr.node,
                map_slots: map,
                reduce_slots: reduce,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::TrackerSnapshot;
    use simgrid::cluster::NodeId;
    use simgrid::time::SimTime;

    fn stats(
        pending_maps: usize,
        running_maps: usize,
        eligible_reduces: usize,
        running_reduces: usize,
    ) -> ClusterStats {
        ClusterStats {
            total_maps: pending_maps + running_maps + 100,
            pending_maps,
            running_maps,
            completed_maps: 100,
            total_reduces: 30,
            pending_reduces: eligible_reduces,
            eligible_pending_reduces: eligible_reduces,
            running_reduces,
            ..ClusterStats::default()
        }
    }

    #[test]
    fn early_phase_maps_use_whole_budget() {
        // plenty of maps pending, reduces not yet eligible
        let t = capacity_targets(&stats(500, 48, 0, 0), 16, 3, 2);
        assert_eq!(t, NodeTargets { map: 5, reduce: 0 });
    }

    #[test]
    fn overlap_phase_throttles_reduces_under_map_pressure() {
        // reduces eligible but map demand still saturates the cluster:
        // the ramp-up throttle holds reduces to half their share
        let t = capacity_targets(&stats(500, 48, 30, 0), 16, 3, 2);
        assert_eq!(t, NodeTargets { map: 4, reduce: 1 });
        // once map demand fits the cluster, the full reservation returns
        let t = capacity_targets(&stats(0, 70, 30, 2), 16, 3, 2);
        assert_eq!(t, NodeTargets { map: 3, reduce: 2 });
    }

    #[test]
    fn tail_phase_reduces_backfill() {
        // no maps left; 30 reduces over 16 nodes need 2/node
        let t = capacity_targets(&stats(0, 0, 10, 20), 16, 3, 2);
        assert_eq!(t.map, 0);
        assert_eq!(t.reduce, 2);
    }

    #[test]
    fn reduce_demand_capped_by_budget_minus_maps() {
        // tons of reduces eligible and maps still pending: throttle holds
        let t = capacity_targets(&stats(500, 48, 300, 0), 4, 3, 2);
        assert_eq!(t.map, 4, "maps take the throttled reducer's container");
        assert_eq!(t.reduce, 1, "reduces throttled under map pressure");
    }

    #[test]
    fn small_map_demand_frees_capacity() {
        // only 4 maps left cluster-wide on 4 nodes -> 1 per node
        let t = capacity_targets(&stats(0, 4, 40, 0), 4, 3, 2);
        assert_eq!(t.map, 1);
        assert_eq!(t.reduce, 4, "freed map budget serves reduces");
    }

    #[test]
    fn policy_emits_directives_only_on_change() {
        let mut p = CapacityPolicy;
        assert_eq!(p.name(), "YARN");
        let s = stats(500, 48, 0, 0);
        let trackers: Vec<TrackerSnapshot> = (0..4)
            .map(|i| TrackerSnapshot {
                node: NodeId(i),
                cores: 16.0,
                map_target: 5,
                map_occupied: 3,
                reduce_target: 0,
                reduce_occupied: 0,
            })
            .collect();
        let ctx = PolicyContext {
            now: SimTime::from_secs(3),
            stats: &s,
            trackers: &trackers,
            init_map_slots: 3,
            init_reduce_slots: 2,
        };
        assert!(p.decide(&ctx).is_empty(), "already at computed targets");
    }

    #[test]
    fn idle_cluster_returns_to_baseline() {
        let mut p = CapacityPolicy;
        let s = ClusterStats::default();
        let trackers = vec![TrackerSnapshot {
            node: NodeId(0),
            cores: 16.0,
            map_target: 5,
            map_occupied: 0,
            reduce_target: 0,
            reduce_occupied: 0,
        }];
        let ctx = PolicyContext {
            now: SimTime::from_secs(3),
            stats: &s,
            trackers: &trackers,
            init_map_slots: 3,
            init_reduce_slots: 2,
        };
        let ds = p.decide(&ctx);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].map_slots, 3);
        assert_eq!(ds[0].reduce_slots, 2);
    }

    proptest::proptest! {
        /// The budget is never exceeded and map priority holds: whenever
        /// map demand saturates its share, reduces never squeeze maps below
        /// min(map_need, budget - min(init_reduce, reduce_need)).
        #[test]
        fn prop_budget_respected(
            pm in 0usize..2000, rm in 0usize..200,
            er in 0usize..300, rr in 0usize..64,
            workers in 1usize..32,
        ) {
            let s = stats(pm, rm, er, rr);
            let t = capacity_targets(&s, workers, 3, 2);
            proptest::prop_assert!(t.map + t.reduce <= 5);
            let map_need = (pm + rm).div_ceil(workers);
            if map_need >= 4 {
                proptest::prop_assert!(t.map >= 3, "maps keep at least their reserved share");
            }
        }
    }
}

//! Container resource model.
//!
//! YARN abandons slots for containers sized in memory and vcores; the node
//! manager fits as many containers as its resources allow. The paper's
//! point (§I): the user still has to *guess* the container size — size them
//! too large and a few containers fill the node leaving resources idle,
//! too small and tasks die of memory starvation. This module computes the
//! concurrency a given sizing yields, which is how the YARN columns of
//! Figs. 3/5 are configured ("YARN is configured to be able to run 3 map
//! containers and 2 reduce containers concurrently").

use serde::{Deserialize, Serialize};

/// Resource vector of one container request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerSpec {
    pub mem_mb: f64,
    pub vcores: f64,
}

impl ContainerSpec {
    pub fn new(mem_mb: f64, vcores: f64) -> ContainerSpec {
        assert!(mem_mb > 0.0 && vcores > 0.0, "container resources positive");
        ContainerSpec { mem_mb, vcores }
    }
}

/// Resources a node manager offers to containers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeResources {
    pub mem_mb: f64,
    pub vcores: f64,
}

impl NodeResources {
    /// The paper's worker sized for YARN: 28 GB usable, 16 vcores.
    pub fn paper_worker() -> NodeResources {
        NodeResources {
            mem_mb: 28.0 * 1024.0,
            vcores: 16.0,
        }
    }

    /// How many containers of `spec` fit concurrently.
    pub fn fit(&self, spec: ContainerSpec) -> usize {
        let by_mem = (self.mem_mb / spec.mem_mb).floor() as usize;
        let by_cores = (self.vcores / spec.vcores).floor() as usize;
        by_mem.min(by_cores)
    }

    /// How many `map_spec` containers fit alongside `reserved` containers
    /// of `other_spec` (e.g. map containers next to reserved reduce
    /// containers).
    pub fn fit_alongside(
        &self,
        spec: ContainerSpec,
        other_spec: ContainerSpec,
        reserved: usize,
    ) -> usize {
        let mem = self.mem_mb - other_spec.mem_mb * reserved as f64;
        let cores = self.vcores - other_spec.vcores * reserved as f64;
        if mem <= 0.0 || cores <= 0.0 {
            return 0;
        }
        NodeResources {
            mem_mb: mem,
            vcores: cores,
        }
        .fit(spec)
    }

    /// Container sizing that yields exactly `n` concurrent containers on
    /// this node (memory-driven, generous vcores) — the inverse knob used
    /// to express "configured to run n containers" in experiments.
    pub fn sizing_for_concurrency(&self, n: usize) -> ContainerSpec {
        assert!(n > 0);
        ContainerSpec {
            mem_mb: self.mem_mb / n as f64,
            vcores: (self.vcores / n as f64).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_is_min_of_dimensions() {
        let node = NodeResources::paper_worker();
        // 4 GB, 1 core: memory allows 7, cores allow 16 -> 7
        assert_eq!(node.fit(ContainerSpec::new(4096.0, 1.0)), 7);
        // tiny memory, huge cores: cores bind
        assert_eq!(node.fit(ContainerSpec::new(64.0, 8.0)), 2);
    }

    #[test]
    fn oversized_container_fits_zero() {
        let node = NodeResources::paper_worker();
        assert_eq!(node.fit(ContainerSpec::new(64.0 * 1024.0, 1.0)), 0);
    }

    #[test]
    fn fit_alongside_subtracts_reservation() {
        let node = NodeResources::paper_worker();
        let map = ContainerSpec::new(4096.0, 2.0);
        let reduce = ContainerSpec::new(6144.0, 2.0);
        let alone = node.fit(map);
        let with_reduces = node.fit_alongside(map, reduce, 2);
        assert!(with_reduces < alone);
        // fully reserved node fits nothing
        assert_eq!(node.fit_alongside(map, reduce, 100), 0);
    }

    #[test]
    fn sizing_round_trips_concurrency() {
        let node = NodeResources::paper_worker();
        for n in 1..=10 {
            let spec = node.sizing_for_concurrency(n);
            assert_eq!(node.fit(spec), n, "sizing for {n}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sized_container_rejected() {
        let _ = ContainerSpec::new(0.0, 1.0);
    }

    #[test]
    fn sizing_expresses_fig5_configurations() {
        // Fig. 5 sweeps "map slots" 1..8; in YARN terms each point is a
        // container sizing — this is the mapping the experiments rely on
        // when they reuse `init_map_slots` for the container count.
        let node = NodeResources::paper_worker();
        for slots in 1..=8 {
            let spec = node.sizing_for_concurrency(slots);
            assert_eq!(node.fit(spec), slots);
            // the sizing is memory-driven: per-container memory shrinks as
            // concurrency grows
            if slots > 1 {
                let prev = node.sizing_for_concurrency(slots - 1);
                assert!(spec.mem_mb < prev.mem_mb);
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_fit_monotone_in_container_size(mem in 256.0f64..32768.0) {
            let node = NodeResources::paper_worker();
            let small = node.fit(ContainerSpec::new(mem, 1.0));
            let large = node.fit(ContainerSpec::new(mem * 2.0, 1.0));
            proptest::prop_assert!(large <= small);
        }
    }
}

//! Divergence bisection: find the first checkpoint where two capsule
//! streams disagree, and explain *which fields* disagree.
//!
//! The intended workflow: a run that should be deterministic produced two
//! different results (different machine, different build, a suspected
//! nondeterminism bug). Record both with `--checkpoint-every` into two
//! directories, then bisect. Real divergences are **monotone** — once the
//! two states differ, they stay different (state only accumulates) — so a
//! binary search over the paired capsules finds the first divergent
//! instant in `O(log n)` byte comparisons, and a field-by-field diff of
//! that capsule names the subsystem that forked first.
//!
//! The binary search verifies its answer (the found capsule differs, its
//! predecessor does not), so even on a non-monotone stream — e.g. one
//! corrupted file in an otherwise identical pair — the result is still a
//! genuine *locally first* divergence.

use crate::{list_capsules, CapsuleError};
use simgrid::time::SimTime;
use std::path::{Path, PathBuf};

/// One leaf-level disagreement between the two capsules.
#[derive(Debug, Clone)]
pub struct FieldDiff {
    /// Dotted path into the capsule JSON, e.g. `state.rng.state[2]`.
    pub path: String,
    pub a: String,
    pub b: String,
}

/// The first divergent checkpoint of two streams.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the paired stream (0-based).
    pub index: usize,
    /// The capture instant of the divergent pair.
    pub at: SimTime,
    pub path_a: PathBuf,
    pub path_b: PathBuf,
    /// Leaf fields that disagree, in capsule order.
    pub diffs: Vec<FieldDiff>,
}

/// Bisect two capsule streams to their first divergent checkpoint.
/// Returns `None` when every paired capsule is byte-identical and the
/// streams have the same length.
pub fn bisect_dirs(dir_a: &Path, dir_b: &Path) -> Result<Option<Divergence>, CapsuleError> {
    let list_a = list_capsules(dir_a)?;
    let list_b = list_capsules(dir_b)?;
    if list_a.is_empty() {
        return Err(CapsuleError::EmptyStream(dir_a.to_path_buf()));
    }
    if list_b.is_empty() {
        return Err(CapsuleError::EmptyStream(dir_b.to_path_buf()));
    }
    let common = list_a.len().min(list_b.len());
    for i in 0..common {
        if list_a[i].0 != list_b[i].0 {
            return Err(CapsuleError::Malformed(
                dir_b.to_path_buf(),
                format!(
                    "streams were captured on different grids: pair {i} is {} ms vs {} ms \
                     (same --checkpoint-every required)",
                    list_a[i].0.as_millis(),
                    list_b[i].0.as_millis()
                ),
            ));
        }
    }
    let differs = |i: usize| -> Result<bool, CapsuleError> {
        let read = |p: &PathBuf| std::fs::read(p).map_err(|e| CapsuleError::Io(p.clone(), e));
        Ok(read(&list_a[i].1)? != read(&list_b[i].1)?)
    };

    if !differs(common - 1)? {
        // identical up to the shared horizon; a length mismatch means one
        // run kept checkpointing past the other's end
        if list_a.len() != list_b.len() {
            let (longer, longer_dir) = if list_a.len() > list_b.len() {
                (&list_a[common], dir_a)
            } else {
                (&list_b[common], dir_b)
            };
            return Ok(Some(Divergence {
                index: common,
                at: longer.0,
                path_a: dir_a.to_path_buf(),
                path_b: dir_b.to_path_buf(),
                diffs: vec![FieldDiff {
                    path: "(stream length)".into(),
                    a: format!("{} capsules", list_a.len()),
                    b: format!(
                        "{} capsules ({} continues at {} ms)",
                        list_b.len(),
                        longer_dir.display(),
                        longer.0.as_millis()
                    ),
                }],
            }));
        }
        return Ok(None);
    }

    // first differing index, assuming monotone divergence; the loop
    // invariant (differs(hi), !differs(lo - 1)) makes the answer a
    // verified locally-first divergence even if the assumption is broken
    let (mut lo, mut hi) = (0usize, common - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if differs(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    let parse = |p: &PathBuf| -> Result<serde_json::Value, CapsuleError> {
        let text = std::fs::read_to_string(p).map_err(|e| CapsuleError::Io(p.clone(), e))?;
        serde_json::from_str(&text).map_err(|e| CapsuleError::Malformed(p.clone(), e.to_string()))
    };
    let va = parse(&list_a[lo].1)?;
    let vb = parse(&list_b[lo].1)?;
    let mut diffs = Vec::new();
    diff_value("", &va, &vb, &mut diffs);
    Ok(Some(Divergence {
        index: lo,
        at: list_a[lo].0,
        path_a: list_a[lo].1.clone(),
        path_b: list_b[lo].1.clone(),
        diffs,
    }))
}

/// Recursively collect leaf-level differences between two JSON values.
fn diff_value(path: &str, a: &serde_json::Value, b: &serde_json::Value, out: &mut Vec<FieldDiff>) {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(fa), Value::Object(fb)) => {
            // capsule objects carry identical field orders (they come from
            // the same serializer); walk a's order, then b-only keys
            for (key, va) in fa {
                let sub = join(path, key);
                match fb.iter().find(|(k, _)| k == key) {
                    Some((_, vb)) => diff_value(&sub, va, vb, out),
                    None => out.push(FieldDiff {
                        path: sub,
                        a: render(va),
                        b: "(absent)".into(),
                    }),
                }
            }
            for (key, vb) in fb {
                if !fa.iter().any(|(k, _)| k == key) {
                    out.push(FieldDiff {
                        path: join(path, key),
                        a: "(absent)".into(),
                        b: render(vb),
                    });
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            for i in 0..xa.len().max(xb.len()) {
                let sub = format!("{path}[{i}]");
                match (xa.get(i), xb.get(i)) {
                    (Some(va), Some(vb)) => diff_value(&sub, va, vb, out),
                    (Some(va), None) => out.push(FieldDiff {
                        path: sub,
                        a: render(va),
                        b: "(absent)".into(),
                    }),
                    (None, Some(vb)) => out.push(FieldDiff {
                        path: sub,
                        a: "(absent)".into(),
                        b: render(vb),
                    }),
                    (None, None) => unreachable!(),
                }
            }
        }
        _ => {
            if a != b {
                out.push(FieldDiff {
                    path: path.to_string(),
                    a: render(a),
                    b: render(b),
                });
            }
        }
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Short, single-line rendering of a leaf value for diff output.
fn render(v: &serde_json::Value) -> String {
    let mut s = serde_json::to_string(v).unwrap_or_else(|_| "(unprintable)".into());
    if s.len() > 96 {
        s.truncate(93);
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn diff_names_the_paths_that_disagree() {
        let a = obj(vec![
            ("now", Value::U64(12000)),
            (
                "rng",
                obj(vec![(
                    "state",
                    Value::Array(vec![Value::U64(1), Value::U64(2)]),
                )]),
            ),
            ("steps", Value::U64(7)),
        ]);
        let b = obj(vec![
            ("now", Value::U64(12000)),
            (
                "rng",
                obj(vec![(
                    "state",
                    Value::Array(vec![Value::U64(1), Value::U64(9)]),
                )]),
            ),
            ("steps", Value::U64(8)),
        ]);
        let mut diffs = Vec::new();
        diff_value("", &a, &b, &mut diffs);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["rng.state[1]", "steps"]);
        assert_eq!(diffs[0].a, "2");
        assert_eq!(diffs[0].b, "9");
    }

    #[test]
    fn diff_reports_missing_fields_and_lengths() {
        let a = obj(vec![("xs", Value::Array(vec![Value::U64(1)]))]);
        let b = obj(vec![
            ("xs", Value::Array(vec![Value::U64(1), Value::U64(2)])),
            ("extra", Value::Bool(true)),
        ]);
        let mut diffs = Vec::new();
        diff_value("", &a, &b, &mut diffs);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["xs[1]", "extra"]);
        assert_eq!(diffs[0].a, "(absent)");
    }

    #[test]
    fn bisect_finds_the_first_divergent_pair() {
        let base = std::env::temp_dir().join(format!("smr-bisect-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        // eight paired capsules, diverging from index 5 onwards
        for i in 0..8u64 {
            let name = crate::capsule_file_name(SimTime::from_secs(i * 10));
            let a = format!("{{\"at\":{},\"x\":{}}}", i * 10_000, i);
            let b = if i >= 5 {
                format!("{{\"at\":{},\"x\":{}}}", i * 10_000, i + 100)
            } else {
                a.clone()
            };
            std::fs::write(dir_a.join(&name), a).unwrap();
            std::fs::write(dir_b.join(&name), b).unwrap();
        }
        let div = bisect_dirs(&dir_a, &dir_b)
            .expect("bisect runs")
            .expect("streams diverge");
        assert_eq!(div.index, 5);
        assert_eq!(div.at, SimTime::from_secs(50));
        assert_eq!(div.diffs.len(), 1);
        assert_eq!(div.diffs[0].path, "x");
        assert_eq!(div.diffs[0].a, "5");
        assert_eq!(div.diffs[0].b, "105");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn identical_streams_bisect_to_none() {
        let base = std::env::temp_dir().join(format!("smr-bisect-eq-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        for i in 0..4u64 {
            let name = crate::capsule_file_name(SimTime::from_secs(i));
            std::fs::write(dir_a.join(&name), format!("{{\"x\":{i}}}")).unwrap();
            std::fs::write(dir_b.join(&name), format!("{{\"x\":{i}}}")).unwrap();
        }
        assert!(bisect_dirs(&dir_a, &dir_b).expect("runs").is_none());
        // a truncated (but otherwise identical) stream diverges at the cut
        std::fs::remove_file(dir_b.join(crate::capsule_file_name(SimTime::from_secs(3)))).unwrap();
        let div = bisect_dirs(&dir_a, &dir_b)
            .expect("runs")
            .expect("length mismatch is a divergence");
        assert_eq!(div.index, 3);
        assert_eq!(div.diffs[0].path, "(stream length)");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn empty_stream_is_an_error() {
        let base = std::env::temp_dir().join(format!("smr-bisect-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(base.join("a")).unwrap();
        std::fs::create_dir_all(base.join("b")).unwrap();
        std::fs::write(
            base.join("a").join(crate::capsule_file_name(SimTime::ZERO)),
            "{}",
        )
        .unwrap();
        assert!(matches!(
            bisect_dirs(&base.join("a"), &base.join("b")),
            Err(CapsuleError::EmptyStream(_))
        ));
        let _ = std::fs::remove_dir_all(&base);
    }
}

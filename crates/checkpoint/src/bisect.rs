//! Divergence bisection: find the first checkpoint where two capsule
//! streams disagree, and explain *which fields* disagree.
//!
//! The intended workflow: a run that should be deterministic produced two
//! different results (different machine, different build, a suspected
//! nondeterminism bug). Record both with `--checkpoint-every` into two
//! directories, then bisect. Real divergences are **monotone** — once the
//! two states differ, they stay different (state only accumulates) — so a
//! binary search over the paired capsules finds the first divergent
//! instant in `O(log n)` comparisons, and a field-by-field diff of that
//! capsule names the subsystem that forked first.
//!
//! Two refinements on top of the plain search:
//!
//! * **mixed formats** — when a pair's files share an encoding they are
//!   compared byte-for-byte (both encoders are deterministic); a
//!   JSON-vs-binary pair is compared through its decoded value trees
//!   (ignoring the envelope's `format_version`, which is metadata about
//!   the writer, not the run);
//! * **hash traces** — [`bisect_hash_traces`] scans the two runs'
//!   per-step hash traces first (one u64 comparison per step, no capsule
//!   I/O at all) and then parses only the single capsule pair at the
//!   divergent instant.
//!
//! The binary search verifies its answer (the found capsule differs, its
//! predecessor does not), so even on a non-monotone stream — e.g. one
//! corrupted file in an otherwise identical pair — the result is still a
//! genuine *locally first* divergence.

use crate::{codec, list_capsules, read_hash_trace, CapsuleError, HASH_TRACE_FILE};
use simgrid::time::SimTime;
use std::path::{Path, PathBuf};

/// One leaf-level disagreement between the two capsules.
#[derive(Debug, Clone)]
pub struct FieldDiff {
    /// Dotted path into the capsule JSON, e.g. `state.rng.state[2]`.
    pub path: String,
    pub a: String,
    pub b: String,
}

/// The first divergent checkpoint of two streams.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index into the paired stream (0-based).
    pub index: usize,
    /// The capture instant of the divergent pair.
    pub at: SimTime,
    /// The divergent capsule on each side. When `stream_truncated`, only
    /// the longer stream has a capsule here — the other path is the
    /// truncated stream's *directory* (there is no file to point at).
    pub path_a: PathBuf,
    pub path_b: PathBuf,
    /// True when the streams are identical over their shared horizon and
    /// the divergence is one stream simply ending early.
    pub stream_truncated: bool,
    /// Leaf fields that disagree, in capsule order.
    pub diffs: Vec<FieldDiff>,
}

/// Parse one capsule file (either encoding, sniffed) into its JSON value
/// tree, dropping the top-level `format_version` so that a JSON stream
/// and a binary re-recording of the same run compare equal.
fn capsule_value(path: &Path) -> Result<serde_json::Value, CapsuleError> {
    let bytes = std::fs::read(path).map_err(|e| CapsuleError::Io(path.to_path_buf(), e))?;
    let malformed = |why: String| CapsuleError::Malformed(path.to_path_buf(), why);
    let mut value = if bytes.first() == Some(&codec::MAGIC[0]) {
        codec::from_binary(&bytes).map_err(malformed)?
    } else {
        let text = std::str::from_utf8(&bytes).map_err(|e| malformed(e.to_string()))?;
        serde_json::parse_value(text).map_err(|e| malformed(e.to_string()))?
    };
    if let serde_json::Value::Object(fields) = &mut value {
        fields.retain(|(k, _)| k != "format_version");
    }
    Ok(value)
}

/// Bisect two capsule streams to their first divergent checkpoint.
/// Returns `None` when every paired capsule is equivalent and the
/// streams have the same length.
pub fn bisect_dirs(dir_a: &Path, dir_b: &Path) -> Result<Option<Divergence>, CapsuleError> {
    let list_a = list_capsules(dir_a)?;
    let list_b = list_capsules(dir_b)?;
    if list_a.is_empty() {
        return Err(CapsuleError::EmptyStream(dir_a.to_path_buf()));
    }
    if list_b.is_empty() {
        return Err(CapsuleError::EmptyStream(dir_b.to_path_buf()));
    }
    let common = list_a.len().min(list_b.len());
    for i in 0..common {
        if list_a[i].0 != list_b[i].0 {
            return Err(CapsuleError::Malformed(
                dir_b.to_path_buf(),
                format!(
                    "streams were captured on different grids: pair {i} is {} ms vs {} ms \
                     (same --checkpoint-every required)",
                    list_a[i].0.as_millis(),
                    list_b[i].0.as_millis()
                ),
            ));
        }
    }
    let differs = |i: usize| -> Result<bool, CapsuleError> {
        let (pa, pb) = (&list_a[i].1, &list_b[i].1);
        if pa.extension() == pb.extension() {
            // same encoding: both encoders are deterministic, so byte
            // inequality is value inequality
            let read = |p: &PathBuf| std::fs::read(p).map_err(|e| CapsuleError::Io(p.clone(), e));
            Ok(read(pa)? != read(pb)?)
        } else {
            // mixed JSON/binary pair: compare the decoded value trees
            let canon = |p: &PathBuf| -> Result<String, CapsuleError> {
                serde_json::to_string(&capsule_value(p)?)
                    .map_err(|e| CapsuleError::Malformed(p.clone(), e.to_string()))
            };
            Ok(canon(pa)? != canon(pb)?)
        }
    };

    if !differs(common - 1)? {
        // identical up to the shared horizon; a length mismatch means one
        // run kept checkpointing past the other's end
        if list_a.len() != list_b.len() {
            let a_longer = list_a.len() > list_b.len();
            let (extra, longer_dir) = if a_longer {
                (&list_a[common], dir_a)
            } else {
                (&list_b[common], dir_b)
            };
            return Ok(Some(Divergence {
                index: common,
                at: extra.0,
                path_a: if a_longer {
                    extra.1.clone()
                } else {
                    dir_a.to_path_buf()
                },
                path_b: if a_longer {
                    dir_b.to_path_buf()
                } else {
                    extra.1.clone()
                },
                stream_truncated: true,
                diffs: vec![FieldDiff {
                    path: "(stream length)".into(),
                    a: format!("{} capsules", list_a.len()),
                    b: format!(
                        "{} capsules ({} continues at {} ms)",
                        list_b.len(),
                        longer_dir.display(),
                        extra.0.as_millis()
                    ),
                }],
            }));
        }
        return Ok(None);
    }

    // first differing index, assuming monotone divergence; the loop
    // invariant (differs(hi), !differs(lo - 1)) makes the answer a
    // verified locally-first divergence even if the assumption is broken
    let (mut lo, mut hi) = (0usize, common - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if differs(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    let va = capsule_value(&list_a[lo].1)?;
    let vb = capsule_value(&list_b[lo].1)?;
    let mut diffs = Vec::new();
    diff_value("", &va, &vb, &mut diffs);
    Ok(Some(Divergence {
        index: lo,
        at: list_a[lo].0,
        path_a: list_a[lo].1.clone(),
        path_b: list_b[lo].1.clone(),
        stream_truncated: false,
        diffs,
    }))
}

/// The first step at which two runs' hash traces disagree — found without
/// reading any capsule except the one divergent pair.
#[derive(Debug, Clone)]
pub struct TraceDivergence {
    /// First step whose hashes disagree (or the first step past the
    /// shorter trace, when one trace is a prefix of the other).
    pub step: u64,
    pub at: SimTime,
    /// The rolling digests on each side; 0 for a side whose trace ended
    /// before `step`.
    pub hash_a: u64,
    pub hash_b: u64,
    /// Field-level diff of the first capsule pair captured at or after
    /// the divergent step — the only capsules parsed. `None` when the
    /// streams hold no paired capsule at or past that instant (the
    /// divergence happened after the last checkpoint).
    pub capsule_diff: Option<Divergence>,
}

/// Compare the hash traces recorded alongside two capsule streams
/// (`<dir>/hash-trace.txt`), and on divergence parse only the first
/// capsule pair at or after the divergent instant. One u64 comparison
/// per step, `O(1)` capsule reads.
pub fn bisect_hash_traces(
    dir_a: &Path,
    dir_b: &Path,
) -> Result<Option<TraceDivergence>, CapsuleError> {
    let trace_a = read_hash_trace(&dir_a.join(HASH_TRACE_FILE))?;
    let trace_b = read_hash_trace(&dir_b.join(HASH_TRACE_FILE))?;
    let common = trace_a.len().min(trace_b.len());
    for i in 0..common {
        let (pa, pb) = (trace_a[i], trace_b[i]);
        if pa.step != pb.step || pa.at_ms != pb.at_ms {
            return Err(CapsuleError::Malformed(
                dir_b.join(HASH_TRACE_FILE),
                format!(
                    "traces run on different step grids at line {}: \
                     step {} @ {} ms vs step {} @ {} ms",
                    i + 1,
                    pa.step,
                    pa.at_ms,
                    pb.step,
                    pb.at_ms
                ),
            ));
        }
        if pa.hash != pb.hash {
            let at = SimTime::from_millis(pa.at_ms);
            return Ok(Some(TraceDivergence {
                step: pa.step,
                at,
                hash_a: pa.hash,
                hash_b: pb.hash,
                capsule_diff: diff_pair_at(dir_a, dir_b, at)?,
            }));
        }
    }
    if trace_a.len() != trace_b.len() {
        let extra = if trace_a.len() > trace_b.len() {
            trace_a[common]
        } else {
            trace_b[common]
        };
        return Ok(Some(TraceDivergence {
            step: extra.step,
            at: SimTime::from_millis(extra.at_ms),
            hash_a: if trace_a.len() > common {
                extra.hash
            } else {
                0
            },
            hash_b: if trace_b.len() > common {
                extra.hash
            } else {
                0
            },
            capsule_diff: diff_pair_at(dir_a, dir_b, SimTime::from_millis(extra.at_ms))?,
        }));
    }
    Ok(None)
}

/// Diff the first capsule pair captured at or after `at`: the earliest
/// checkpoint that can exhibit the divergence.
fn diff_pair_at(
    dir_a: &Path,
    dir_b: &Path,
    at: SimTime,
) -> Result<Option<Divergence>, CapsuleError> {
    let list_a = list_capsules(dir_a)?;
    let list_b = list_capsules(dir_b)?;
    for (index, (instant_a, path_a)) in list_a.iter().enumerate() {
        if *instant_a < at {
            continue;
        }
        let Some((_, path_b)) = list_b.iter().find(|(instant_b, _)| instant_b == instant_a) else {
            continue;
        };
        let va = capsule_value(path_a)?;
        let vb = capsule_value(path_b)?;
        let mut diffs = Vec::new();
        diff_value("", &va, &vb, &mut diffs);
        return Ok(Some(Divergence {
            index,
            at: *instant_a,
            path_a: path_a.clone(),
            path_b: path_b.clone(),
            stream_truncated: false,
            diffs,
        }));
    }
    Ok(None)
}

/// Recursively collect leaf-level differences between two JSON values.
fn diff_value(path: &str, a: &serde_json::Value, b: &serde_json::Value, out: &mut Vec<FieldDiff>) {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(fa), Value::Object(fb)) => {
            // capsule objects carry identical field orders (they come from
            // the same serializer); walk a's order, then b-only keys
            for (key, va) in fa {
                let sub = join(path, key);
                match fb.iter().find(|(k, _)| k == key) {
                    Some((_, vb)) => diff_value(&sub, va, vb, out),
                    None => out.push(FieldDiff {
                        path: sub,
                        a: render(va),
                        b: "(absent)".into(),
                    }),
                }
            }
            for (key, vb) in fb {
                if !fa.iter().any(|(k, _)| k == key) {
                    out.push(FieldDiff {
                        path: join(path, key),
                        a: "(absent)".into(),
                        b: render(vb),
                    });
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            for i in 0..xa.len().max(xb.len()) {
                let sub = format!("{path}[{i}]");
                match (xa.get(i), xb.get(i)) {
                    (Some(va), Some(vb)) => diff_value(&sub, va, vb, out),
                    (Some(va), None) => out.push(FieldDiff {
                        path: sub,
                        a: render(va),
                        b: "(absent)".into(),
                    }),
                    (None, Some(vb)) => out.push(FieldDiff {
                        path: sub,
                        a: "(absent)".into(),
                        b: render(vb),
                    }),
                    (None, None) => unreachable!(),
                }
            }
        }
        _ => {
            if a != b {
                out.push(FieldDiff {
                    path: path.to_string(),
                    a: render(a),
                    b: render(b),
                });
            }
        }
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Short, single-line rendering of a leaf value for diff output.
fn render(v: &serde_json::Value) -> String {
    let mut s = serde_json::to_string(v).unwrap_or_else(|_| "(unprintable)".into());
    if s.len() > 96 {
        s.truncate(93);
        s.push('…');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapsuleFormat;
    use mapreduce::HashPoint;
    use serde_json::Value;

    fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn json_name(secs: u64) -> String {
        crate::capsule_file_name(SimTime::from_secs(secs), CapsuleFormat::Json)
    }

    #[test]
    fn diff_names_the_paths_that_disagree() {
        let a = obj(vec![
            ("now", Value::U64(12000)),
            (
                "rng",
                obj(vec![(
                    "state",
                    Value::Array(vec![Value::U64(1), Value::U64(2)]),
                )]),
            ),
            ("steps", Value::U64(7)),
        ]);
        let b = obj(vec![
            ("now", Value::U64(12000)),
            (
                "rng",
                obj(vec![(
                    "state",
                    Value::Array(vec![Value::U64(1), Value::U64(9)]),
                )]),
            ),
            ("steps", Value::U64(8)),
        ]);
        let mut diffs = Vec::new();
        diff_value("", &a, &b, &mut diffs);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["rng.state[1]", "steps"]);
        assert_eq!(diffs[0].a, "2");
        assert_eq!(diffs[0].b, "9");
    }

    #[test]
    fn diff_reports_missing_fields_and_lengths() {
        let a = obj(vec![("xs", Value::Array(vec![Value::U64(1)]))]);
        let b = obj(vec![
            ("xs", Value::Array(vec![Value::U64(1), Value::U64(2)])),
            ("extra", Value::Bool(true)),
        ]);
        let mut diffs = Vec::new();
        diff_value("", &a, &b, &mut diffs);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(paths, vec!["xs[1]", "extra"]);
        assert_eq!(diffs[0].a, "(absent)");
    }

    #[test]
    fn bisect_finds_the_first_divergent_pair() {
        let base = std::env::temp_dir().join(format!("smr-bisect-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        // eight paired capsules, diverging from index 5 onwards
        for i in 0..8u64 {
            let name = json_name(i * 10);
            let a = format!("{{\"at\":{},\"x\":{}}}", i * 10_000, i);
            let b = if i >= 5 {
                format!("{{\"at\":{},\"x\":{}}}", i * 10_000, i + 100)
            } else {
                a.clone()
            };
            std::fs::write(dir_a.join(&name), a).unwrap();
            std::fs::write(dir_b.join(&name), b).unwrap();
        }
        let div = bisect_dirs(&dir_a, &dir_b)
            .expect("bisect runs")
            .expect("streams diverge");
        assert_eq!(div.index, 5);
        assert_eq!(div.at, SimTime::from_secs(50));
        assert!(!div.stream_truncated);
        assert_eq!(div.diffs.len(), 1);
        assert_eq!(div.diffs[0].path, "x");
        assert_eq!(div.diffs[0].a, "5");
        assert_eq!(div.diffs[0].b, "105");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn mixed_format_pairs_compare_by_value_not_bytes() {
        let base = std::env::temp_dir().join(format!("smr-bisect-mixed-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        // stream A: JSON capsules; stream B: the same values re-encoded
        // as binary — genuinely diverging from pair 2 onwards
        for i in 0..4u64 {
            let a_val = obj(vec![
                ("format_version", Value::U64(1)),
                ("at", Value::U64(i * 10_000)),
                ("x", Value::U64(i)),
            ]);
            let b_x = if i >= 2 { i + 97 } else { i };
            let b_val = obj(vec![
                // a different envelope version must NOT count as a
                // divergence — it is writer metadata, not run state
                ("format_version", Value::U64(2)),
                ("at", Value::U64(i * 10_000)),
                ("x", Value::U64(b_x)),
            ]);
            std::fs::write(
                dir_a.join(json_name(i * 10)),
                serde_json::to_string(&a_val).unwrap(),
            )
            .unwrap();
            std::fs::write(
                dir_b.join(crate::capsule_file_name(
                    SimTime::from_secs(i * 10),
                    CapsuleFormat::Binary,
                )),
                codec::to_binary(&b_val),
            )
            .unwrap();
        }
        let div = bisect_dirs(&dir_a, &dir_b)
            .expect("bisect runs")
            .expect("pair 2 diverges");
        assert_eq!(div.index, 2);
        assert_eq!(div.diffs.len(), 1, "{:?}", div.diffs);
        assert_eq!(div.diffs[0].path, "x");
        assert_eq!(div.diffs[0].a, "2");
        assert_eq!(div.diffs[0].b, "99");
        assert_eq!(div.path_a.extension().unwrap(), "json");
        assert_eq!(div.path_b.extension().unwrap(), "bin");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn identical_streams_bisect_to_none() {
        let base = std::env::temp_dir().join(format!("smr-bisect-eq-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        for i in 0..4u64 {
            let name = json_name(i);
            std::fs::write(dir_a.join(&name), format!("{{\"x\":{i}}}")).unwrap();
            std::fs::write(dir_b.join(&name), format!("{{\"x\":{i}}}")).unwrap();
        }
        assert!(bisect_dirs(&dir_a, &dir_b).expect("runs").is_none());
        // a truncated (but otherwise identical) stream diverges at the cut
        std::fs::remove_file(dir_b.join(json_name(3))).unwrap();
        let div = bisect_dirs(&dir_a, &dir_b)
            .expect("runs")
            .expect("length mismatch is a divergence");
        assert_eq!(div.index, 3);
        assert!(div.stream_truncated);
        // the longer stream's first unmatched capsule is a real file; the
        // truncated side is represented by its directory
        assert_eq!(div.path_a, dir_a.join(json_name(3)));
        assert_eq!(div.path_b, dir_b);
        assert_eq!(div.diffs[0].path, "(stream length)");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn hash_trace_bisect_parses_only_the_divergent_pair() {
        let base = std::env::temp_dir().join(format!("smr-trace-bisect-{}", std::process::id()));
        let (dir_a, dir_b) = (base.join("a"), base.join("b"));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        let mk = |hashes: &[u64]| -> Vec<HashPoint> {
            hashes
                .iter()
                .enumerate()
                .map(|(i, h)| HashPoint {
                    step: i as u64 + 1,
                    at_ms: (i as u64 + 1) * 5_000,
                    hash: *h,
                })
                .collect()
        };
        crate::write_hash_trace(&dir_a, &mk(&[10, 20, 30, 40, 50])).unwrap();
        crate::write_hash_trace(&dir_b, &mk(&[10, 20, 31, 41, 51])).unwrap();
        // capsules only exist at 10 s and 20 s; step 3 diverges at 15 s,
        // so the pair at 20 s is the one that gets parsed. A deliberately
        // corrupt capsule at 10 s proves nothing earlier is read.
        std::fs::write(dir_a.join(json_name(10)), "{corrupt").unwrap();
        std::fs::write(dir_b.join(json_name(10)), "{corrupt").unwrap();
        std::fs::write(dir_a.join(json_name(20)), "{\"x\":1}").unwrap();
        std::fs::write(dir_b.join(json_name(20)), "{\"x\":2}").unwrap();
        let div = bisect_hash_traces(&dir_a, &dir_b)
            .expect("runs")
            .expect("traces diverge");
        assert_eq!(div.step, 3);
        assert_eq!(div.at, SimTime::from_millis(15_000));
        assert_eq!((div.hash_a, div.hash_b), (30, 31));
        let pair = div.capsule_diff.expect("capsule pair at 20 s");
        assert_eq!(pair.at, SimTime::from_secs(20));
        assert_eq!(pair.diffs[0].path, "x");
        // identical traces bisect to none without touching any capsule
        crate::write_hash_trace(&dir_b, &mk(&[10, 20, 30, 40, 50])).unwrap();
        assert!(bisect_hash_traces(&dir_a, &dir_b).expect("runs").is_none());
        let _ = std::fs::remove_dir_all(&base);
    }
}

//! Binary capsule codec: a compact, self-describing encoding of the
//! capsule JSON value tree.
//!
//! The format is two independent layers:
//!
//! 1. a **packed tree** encoding ([`pack_value`]/[`unpack_value`]) that
//!    deduplicates every object key, string, float and integer into three
//!    frequency-ordered constant pools (small pool indices get one-byte
//!    inline tags), and
//! 2. an **LZ layer** ([`compress`]/[`decompress`]) — an LZ4-block-style
//!    byte compressor (token nibbles, literal runs, 16-bit match offsets)
//!    with no external dependencies — that squeezes the structural
//!    repetition the pools cannot see (per-node record shapes repeat
//!    every few dozen bytes).
//!
//! [`to_binary`]/[`from_binary`] wrap both layers in the `SMRB` envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic b"SMRB"
//! 4       1     codec version (1)
//! 5       var   LEB128 length of the *packed* (uncompressed) payload
//! ...     rest  LZ-compressed packed payload
//! ```
//!
//! The first byte (`S`, 0x53) can never begin a JSON capsule (`{`), which
//! is what lets `checkpoint::load` sniff the format. Every decode path is
//! bounds-checked and returns an error — truncated or corrupted inputs
//! must never panic, because the bisector's whole job is reading capsule
//! files of questionable provenance.
//!
//! Integers are normalised on encode (non-negative → `U64`, negative →
//! `I64`) so a value round-tripped through the binary codec is
//! bit-identical to the same value round-tripped through JSON text.

use serde::Value;

/// Multiply-rotate hasher (the rustc/Firefox "Fx" scheme). The pool
/// builders hash every tree node once per pass; the default SipHash is
/// the dominant cost of `pack_value`, and pool keys are internal (no
/// HashDoS surface), so the fast non-cryptographic hash is safe here.
#[derive(Default, Clone, Copy)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= (b as u64) << (8 * i);
        }
        // always fold the tail (with a length marker) so "ab" and
        // "ab\0" hash differently
        self.mix(tail ^ ((bytes.len() as u64) << 56));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }
}

type FxMap<K> = std::collections::HashMap<K, usize, std::hash::BuildHasherDefault<FxHasher>>;

/// Envelope magic; `b"SMRB"[0]` doubles as the format-sniffing byte.
pub const MAGIC: [u8; 4] = *b"SMRB";
/// Version of the packed-tree + LZ layout inside the envelope.
pub const CODEC_VERSION: u8 = 1;

/// Refuse to allocate more than this for a decoded payload, no matter
/// what a (possibly corrupted) header claims.
const MAX_PACKED_LEN: u64 = 1 << 31;
/// Maximum value-tree nesting on decode; real capsules are < 20 deep.
const MAX_DEPTH: u32 = 128;

// --- tag space -----------------------------------------------------------
// 0x00..=0x3F  int pool ref 0..=63
// 0x40..=0x7F  f64 pool ref 0..=63
// 0x80..=0x9F  string pool ref 0..=31
// 0xA0..=0xAF  array, len 0..=15
// 0xB0..=0xBF  object, len 0..=15
// 0xC0 true · 0xC1 false · 0xC2 null
// 0xC4 string ref (varint) · 0xC5 object (varint len) · 0xC6 array
// (varint len) · 0xC7 f64 ref (varint) · 0xC8 int ref (varint)
const TAG_TRUE: u8 = 0xC0;
const TAG_FALSE: u8 = 0xC1;
const TAG_NULL: u8 = 0xC2;
const TAG_STR_REF: u8 = 0xC4;
const TAG_OBJECT: u8 = 0xC5;
const TAG_ARRAY: u8 = 0xC6;
const TAG_F64_REF: u8 = 0xC7;
const TAG_INT_REF: u8 = 0xC8;

/// Encode + envelope + compress: the bytes [`crate::save`] writes for
/// binary capsules.
pub fn to_binary(v: &Value) -> Vec<u8> {
    let packed = pack_value(v);
    let mut out = Vec::with_capacity(packed.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(CODEC_VERSION);
    push_varint(&mut out, packed.len() as u128);
    compress_into(&packed, &mut out);
    out
}

/// Sniff, decompress and unpack an `SMRB` envelope.
pub fn from_binary(bytes: &[u8]) -> Result<Value, String> {
    if bytes.len() < MAGIC.len() + 1 || bytes[..MAGIC.len()] != MAGIC {
        return Err("not an SMRB binary capsule (bad magic)".into());
    }
    let version = bytes[MAGIC.len()];
    if version != CODEC_VERSION {
        return Err(format!(
            "binary codec v{version}, this build reads v{CODEC_VERSION}"
        ));
    }
    let mut pos = MAGIC.len() + 1;
    let packed_len = read_varint(bytes, &mut pos)?;
    if packed_len > MAX_PACKED_LEN as u128 {
        return Err(format!("implausible packed length {packed_len}"));
    }
    let packed = decompress(&bytes[pos..], packed_len as usize)?;
    unpack_value(&packed)
}

// --- packed tree ---------------------------------------------------------

/// Normalised integer identity: JSON text parses every non-negative
/// integer as `U64`, so the binary codec stores the same normalisation.
fn int_key(v: &Value) -> Option<u128> {
    // extended zigzag over u128: non-negative n -> n<<1, negative n ->
    // (magnitude-1)<<1 | 1, which covers the full u64 *and* i64 ranges
    match v {
        Value::U64(n) => Some((*n as u128) << 1),
        Value::I64(n) if *n >= 0 => Some((*n as u128) << 1),
        Value::I64(n) => Some(((!*n as u64 as u128) << 1) | 1),
        _ => None,
    }
}

fn int_from_key(zig: u128) -> Result<Value, String> {
    let mag = zig >> 1;
    if mag > u64::MAX as u128 {
        return Err(format!("integer out of range: zigzag {zig}"));
    }
    Ok(if zig & 1 == 1 {
        if mag > i64::MAX as u128 {
            return Err(format!("negative integer out of range: zigzag {zig}"));
        }
        Value::I64(-(mag as i64) - 1)
    } else {
        Value::U64(mag as u64)
    })
}

#[derive(Default)]
struct Pools {
    strings: PoolBuilder<String>,
    floats: PoolBuilder<u64>,
    ints: PoolBuilder<u128>,
}

/// Frequency counter preserving first-seen order for deterministic ties.
struct PoolBuilder<K> {
    index: FxMap<K>,
    entries: Vec<(K, u64)>,
}

impl<K: std::hash::Hash + Eq + Clone> Default for PoolBuilder<K> {
    fn default() -> Self {
        PoolBuilder {
            index: FxMap::default(),
            entries: Vec::new(),
        }
    }
}

impl<K: std::hash::Hash + Eq + Clone> PoolBuilder<K> {
    fn note(&mut self, key: &K) {
        match self.index.get(key) {
            Some(&i) => self.entries[i].1 += 1,
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key.clone(), 1));
            }
        }
    }

    /// Final pool order: count descending, first-seen ascending — the
    /// hottest entries land in the one-byte inline tag ranges.
    fn finish(mut self) -> (Vec<K>, FxMap<K>) {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.entries[i].1), i));
        let pool: Vec<K> = order.iter().map(|&i| self.entries[i].0.clone()).collect();
        for (rank, key) in pool.iter().enumerate() {
            self.index.insert(key.clone(), rank);
        }
        (pool, self.index)
    }
}

fn collect_pools(v: &Value, pools: &mut Pools) {
    match v {
        Value::Null | Value::Bool(_) => {}
        Value::U64(_) | Value::I64(_) => pools.ints.note(&int_key(v).expect("int")),
        Value::F64(x) => pools.floats.note(&x.to_bits()),
        Value::String(s) => pools.strings.note(s),
        Value::Array(xs) => xs.iter().for_each(|x| collect_pools(x, pools)),
        Value::Object(fields) => {
            for (k, x) in fields {
                pools.strings.note(k);
                collect_pools(x, pools);
            }
        }
    }
}

/// Pack a value tree: pools first, then the tagged tree.
pub fn pack_value(v: &Value) -> Vec<u8> {
    let mut pools = Pools::default();
    collect_pools(v, &mut pools);
    let (strings, str_index) = pools.strings.finish();
    let (floats, f64_index) = pools.floats.finish();
    let (ints, int_index) = pools.ints.finish();

    let mut out = Vec::new();
    push_varint(&mut out, strings.len() as u128);
    for s in &strings {
        push_varint(&mut out, s.len() as u128);
        out.extend_from_slice(s.as_bytes());
    }
    push_varint(&mut out, floats.len() as u128);
    for bits in &floats {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    push_varint(&mut out, ints.len() as u128);
    for zig in &ints {
        push_varint(&mut out, *zig);
    }
    pack_tree(v, &str_index, &f64_index, &int_index, &mut out);
    out
}

fn pack_tree(
    v: &Value,
    strs: &FxMap<String>,
    floats: &FxMap<u64>,
    ints: &FxMap<u128>,
    out: &mut Vec<u8>,
) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::U64(_) | Value::I64(_) => {
            let r = ints[&int_key(v).expect("int")];
            if r <= 0x3F {
                out.push(r as u8);
            } else {
                out.push(TAG_INT_REF);
                push_varint(out, r as u128);
            }
        }
        Value::F64(x) => {
            let r = floats[&x.to_bits()];
            if r <= 0x3F {
                out.push(0x40 + r as u8);
            } else {
                out.push(TAG_F64_REF);
                push_varint(out, r as u128);
            }
        }
        Value::String(s) => {
            let r = strs[s];
            if r <= 0x1F {
                out.push(0x80 + r as u8);
            } else {
                out.push(TAG_STR_REF);
                push_varint(out, r as u128);
            }
        }
        Value::Array(xs) => {
            if xs.len() <= 0x0F {
                out.push(0xA0 + xs.len() as u8);
            } else {
                out.push(TAG_ARRAY);
                push_varint(out, xs.len() as u128);
            }
            for x in xs {
                pack_tree(x, strs, floats, ints, out);
            }
        }
        Value::Object(fields) => {
            if fields.len() <= 0x0F {
                out.push(0xB0 + fields.len() as u8);
            } else {
                out.push(TAG_OBJECT);
                push_varint(out, fields.len() as u128);
            }
            for (k, x) in fields {
                // keys are bare string-pool refs: no tag byte needed
                push_varint(out, strs[k] as u128);
                pack_tree(x, strs, floats, ints, out);
            }
        }
    }
}

struct Unpacker<'a> {
    bytes: &'a [u8],
    pos: usize,
    strings: Vec<String>,
    floats: Vec<u64>,
    ints: Vec<u128>,
}

/// Unpack a packed payload back into the value tree.
pub fn unpack_value(bytes: &[u8]) -> Result<Value, String> {
    let mut pos = 0usize;
    let nstr = checked_len(read_varint(bytes, &mut pos)?, "string pool")?;
    let mut strings = Vec::new();
    for _ in 0..nstr {
        let len = checked_len(read_varint(bytes, &mut pos)?, "string")?;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or("truncated string pool")?;
        let s = std::str::from_utf8(&bytes[pos..end]).map_err(|e| format!("bad UTF-8: {e}"))?;
        strings.push(s.to_string());
        pos = end;
    }
    let nf = checked_len(read_varint(bytes, &mut pos)?, "f64 pool")?;
    let mut floats = Vec::new();
    for _ in 0..nf {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= bytes.len())
            .ok_or("truncated f64 pool")?;
        floats.push(u64::from_le_bytes(bytes[pos..end].try_into().unwrap()));
        pos = end;
    }
    let ni = checked_len(read_varint(bytes, &mut pos)?, "int pool")?;
    let mut ints = Vec::new();
    for _ in 0..ni {
        ints.push(read_varint(bytes, &mut pos)?);
    }
    let mut up = Unpacker {
        bytes,
        pos,
        strings,
        floats,
        ints,
    };
    let v = up.tree(0)?;
    if up.pos != up.bytes.len() {
        return Err(format!(
            "{} trailing bytes after the value tree",
            up.bytes.len() - up.pos
        ));
    }
    Ok(v)
}

impl Unpacker<'_> {
    fn tree(&mut self, depth: u32) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("value tree deeper than {MAX_DEPTH}"));
        }
        let tag = *self
            .bytes
            .get(self.pos)
            .ok_or("truncated value tree (missing tag)")?;
        self.pos += 1;
        match tag {
            0x00..=0x3F => self.int_ref(tag as usize),
            0x40..=0x7F => self.f64_ref((tag - 0x40) as usize),
            0x80..=0x9F => self.str_ref((tag - 0x80) as usize),
            0xA0..=0xAF => self.array((tag - 0xA0) as usize, depth),
            0xB0..=0xBF => self.object((tag - 0xB0) as usize, depth),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_NULL => Ok(Value::Null),
            TAG_STR_REF => {
                let r = self.varint_len("string ref")?;
                self.str_ref(r)
            }
            TAG_OBJECT => {
                let n = self.varint_len("object length")?;
                self.object(n, depth)
            }
            TAG_ARRAY => {
                let n = self.varint_len("array length")?;
                self.array(n, depth)
            }
            TAG_F64_REF => {
                let r = self.varint_len("f64 ref")?;
                self.f64_ref(r)
            }
            TAG_INT_REF => {
                let r = self.varint_len("int ref")?;
                self.int_ref(r)
            }
            other => Err(format!("unknown tag byte {other:#04x}")),
        }
    }

    fn varint_len(&mut self, what: &str) -> Result<usize, String> {
        checked_len(read_varint(self.bytes, &mut self.pos)?, what)
    }

    fn int_ref(&self, r: usize) -> Result<Value, String> {
        let zig = *self
            .ints
            .get(r)
            .ok_or_else(|| format!("int pool ref {r} out of range"))?;
        int_from_key(zig)
    }

    fn f64_ref(&self, r: usize) -> Result<Value, String> {
        self.floats
            .get(r)
            .map(|bits| Value::F64(f64::from_bits(*bits)))
            .ok_or_else(|| format!("f64 pool ref {r} out of range"))
    }

    fn str_ref(&self, r: usize) -> Result<Value, String> {
        self.strings
            .get(r)
            .map(|s| Value::String(s.clone()))
            .ok_or_else(|| format!("string pool ref {r} out of range"))
    }

    fn array(&mut self, n: usize, depth: u32) -> Result<Value, String> {
        // no with_capacity(n): a corrupted length must hit EOF, not OOM
        let mut xs = Vec::new();
        for _ in 0..n {
            xs.push(self.tree(depth + 1)?);
        }
        Ok(Value::Array(xs))
    }

    fn object(&mut self, n: usize, depth: u32) -> Result<Value, String> {
        let mut fields = Vec::new();
        for _ in 0..n {
            let kref = self.varint_len("object key ref")?;
            let key = self
                .strings
                .get(kref)
                .ok_or_else(|| format!("object key ref {kref} out of range"))?
                .clone();
            fields.push((key, self.tree(depth + 1)?));
        }
        Ok(Value::Object(fields))
    }
}

fn checked_len(n: u128, what: &str) -> Result<usize, String> {
    if n > MAX_PACKED_LEN as u128 {
        return Err(format!("implausible {what} length {n}"));
    }
    Ok(n as usize)
}

// --- varints -------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut n: u128) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u128, String> {
    let mut n: u128 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        if shift >= 128 {
            return Err("varint overflows u128".into());
        }
        n |= ((byte & 0x7F) as u128) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

// --- LZ layer ------------------------------------------------------------

const HASH_BITS: u32 = 15;
const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = 65535;

fn lz_hash(window: &[u8]) -> usize {
    let w = u32::from_le_bytes(window[..4].try_into().unwrap());
    (w.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// LZ4-block-style greedy compressor. Sequence layout: token byte
/// (literal-run nibble ≪ 4 | match-length−4 nibble, 15 = extended with
/// 255-run bytes), literal bytes, 2-byte LE offset, extended match
/// length. The final sequence is literals-only (no offset) — the decoder
/// detects it by input exhaustion, exactly like LZ4.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out);
    out
}

fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    // LZ4-style acceleration: each failed probe lengthens the stride a
    // little (step = misses >> 6), so incompressible stretches — the f64
    // pool, mostly — are skimmed instead of probed byte by byte. Matches
    // reset the stride.
    const SKIP_TRIGGER: u32 = 6;
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of pending literals
    let mut pos = 0usize;
    let mut misses = 1usize << SKIP_TRIGGER;
    while pos + MIN_MATCH <= input.len() {
        let h = lz_hash(&input[pos..]);
        let candidate = table[h] as usize;
        table[h] = pos as u32;
        if candidate != u32::MAX as usize
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            let mut mlen = MIN_MATCH;
            // extend word-at-a-time, then settle the tail byte-wise
            while pos + mlen + 8 <= input.len() {
                let a = u64::from_le_bytes(input[candidate + mlen..][..8].try_into().unwrap());
                let b = u64::from_le_bytes(input[pos + mlen..][..8].try_into().unwrap());
                if a == b {
                    mlen += 8;
                } else {
                    mlen += ((a ^ b).trailing_zeros() / 8) as usize;
                    break;
                }
            }
            while pos + mlen < input.len() && input[candidate + mlen] == input[pos + mlen] {
                mlen += 1;
            }
            emit_sequence(out, &input[anchor..pos], Some((pos - candidate, mlen)));
            // index a strided sample of the match interior so nearby
            // repeats are still found without rehashing every byte
            let interior_end = (pos + mlen).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut p = pos + 1;
            while p < interior_end {
                table[lz_hash(&input[p..])] = p as u32;
                p += 3;
            }
            pos += mlen;
            anchor = pos;
            misses = 1 << SKIP_TRIGGER;
        } else {
            pos += misses >> SKIP_TRIGGER;
            misses += 1;
        }
    }
    emit_sequence(out, &input[anchor..], None);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = m
        .map(|(_, len)| (len - MIN_MATCH).min(15) as u8)
        .unwrap_or(0);
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        push_run(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_run(out, len - MIN_MATCH - 15);
        }
    }
}

fn push_run(out: &mut Vec<u8>, mut n: usize) {
    while n >= 255 {
        out.push(255);
        n -= 255;
    }
    out.push(n as u8);
}

/// Decompress an LZ stream produced by [`compress`]. Fully
/// bounds-checked: truncated or corrupted inputs return errors.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    // capacity is a hint only — a corrupted header must not drive a
    // multi-gigabyte allocation before the first bounds check fires
    let mut out: Vec<u8> = Vec::with_capacity(expected_len.min(1 << 20));
    let mut pos = 0usize;
    if input.is_empty() && expected_len == 0 {
        return Ok(out);
    }
    loop {
        let token = *input
            .get(pos)
            .ok_or("truncated LZ stream (missing token)")?;
        pos += 1;
        let mut litlen = (token >> 4) as usize;
        if litlen == 15 {
            litlen += read_run(input, &mut pos)?;
        }
        let end = pos
            .checked_add(litlen)
            .filter(|&e| e <= input.len())
            .ok_or("truncated LZ literals")?;
        out.extend_from_slice(&input[pos..end]);
        pos = end;
        if pos == input.len() {
            break; // final, literals-only sequence
        }
        let off_end = pos
            .checked_add(2)
            .filter(|&e| e <= input.len())
            .ok_or("truncated LZ offset")?;
        let offset = u16::from_le_bytes(input[pos..off_end].try_into().unwrap()) as usize;
        pos = off_end;
        if offset == 0 || offset > out.len() {
            return Err(format!(
                "LZ offset {offset} out of range at output length {}",
                out.len()
            ));
        }
        let mut mlen = MIN_MATCH + (token & 0x0F) as usize;
        if token & 0x0F == 15 {
            mlen += read_run(input, &mut pos)?;
        }
        if out.len() + mlen > expected_len {
            return Err("LZ output exceeds the promised length".into());
        }
        // byte-by-byte: matches may overlap their own output (RLE-style)
        let start = out.len() - offset;
        for i in 0..mlen {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(format!(
            "LZ stream decoded to {} bytes, envelope promised {expected_len}",
            out.len()
        ));
    }
    Ok(out)
}

fn read_run(input: &[u8], pos: &mut usize) -> Result<usize, String> {
    let mut n = 0usize;
    loop {
        let byte = *input.get(*pos).ok_or("truncated LZ run length")?;
        *pos += 1;
        n = n
            .checked_add(byte as usize)
            .ok_or("LZ run length overflow")?;
        if byte != 255 {
            return Ok(n);
        }
        if n > MAX_PACKED_LEN as usize {
            return Err("implausible LZ run length".into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_value() -> Value {
        Value::Object(vec![
            ("zero".into(), Value::U64(0)),
            ("max_u64".into(), Value::U64(u64::MAX)),
            ("min_i64".into(), Value::I64(i64::MIN)),
            ("neg_one".into(), Value::I64(-1)),
            ("normalised".into(), Value::I64(42)),
            (
                "floats".into(),
                Value::Array(vec![
                    Value::F64(0.0),
                    Value::F64(-0.0),
                    Value::F64(f64::MIN_POSITIVE),
                    Value::F64(1.0 / 3.0),
                    Value::F64(f64::INFINITY),
                ]),
            ),
            (
                "nested".into(),
                Value::Object(vec![
                    ("flag".into(), Value::Bool(true)),
                    ("off".into(), Value::Bool(false)),
                    ("nothing".into(), Value::Null),
                    ("text".into(), Value::String("héllo → wörld".into())),
                    ("empty".into(), Value::Array(vec![])),
                ]),
            ),
            (
                "wide".into(),
                // force the varint (non-inline) tag paths: >64 distinct
                // ints, >64 distinct floats, >32 distinct strings, and a
                // >15-element array/object
                Value::Array(
                    (0..80u64)
                        .flat_map(|i| {
                            [
                                Value::U64(1_000_000 + i),
                                Value::F64(i as f64 + 0.5),
                                Value::String(format!("s{i}")),
                            ]
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn packed_round_trip_is_exact() {
        let v = edge_value();
        let packed = pack_value(&v);
        let back = unpack_value(&packed).expect("unpacks");
        // compare through the canonical JSON printer: normalisation means
        // the trees must print identically (I64(42) became U64(42))
        let mut norm = v.clone();
        normalize(&mut norm);
        assert_eq!(
            serde_json::to_string(&norm).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }

    fn normalize(v: &mut Value) {
        match v {
            Value::I64(n) if *n >= 0 => *v = Value::U64(*n as u64),
            Value::Array(xs) => xs.iter_mut().for_each(normalize),
            Value::Object(fields) => fields.iter_mut().for_each(|(_, x)| normalize(x)),
            _ => {}
        }
    }

    #[test]
    fn envelope_round_trip_is_exact() {
        let v = edge_value();
        let bytes = to_binary(&v);
        assert_eq!(&bytes[..4], b"SMRB");
        let back = from_binary(&bytes).expect("decodes");
        let mut norm = v;
        normalize(&mut norm);
        assert_eq!(
            serde_json::to_string(&norm).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }

    #[test]
    fn float_bits_survive_exactly() {
        let v = Value::Array(vec![Value::F64(-0.0), Value::F64(f64::NAN)]);
        let back = from_binary(&to_binary(&v)).expect("decodes");
        let Value::Array(xs) = back else {
            panic!("expected array")
        };
        let bits: Vec<u64> = xs
            .iter()
            .map(|x| match x {
                Value::F64(f) => f.to_bits(),
                other => panic!("expected f64, got {other:?}"),
            })
            .collect();
        assert_eq!(bits, vec![(-0.0f64).to_bits(), f64::NAN.to_bits()]);
    }

    #[test]
    fn lz_round_trips_incompressible_and_repetitive_data() {
        // pseudo-random bytes (incompressible path: mostly literals)
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let noise: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        assert_eq!(decompress(&compress(&noise), noise.len()).unwrap(), noise);
        // highly repetitive (overlapping-match path)
        let runs: Vec<u8> = b"abcabcabc".iter().cycle().take(50_000).copied().collect();
        let packed = compress(&runs);
        assert!(packed.len() < runs.len() / 10, "run data should crush");
        assert_eq!(decompress(&packed, runs.len()).unwrap(), runs);
        // empty input
        assert_eq!(decompress(&compress(&[]), 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_truncation_of_a_valid_capsule_is_rejected_not_panicking() {
        let bytes = to_binary(&edge_value());
        for cut in 0..bytes.len() {
            assert!(
                from_binary(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} decoded successfully",
                bytes.len()
            );
        }
    }

    #[test]
    fn corrupted_bytes_are_rejected_not_panicking() {
        let clean = to_binary(&edge_value());
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0xA5;
            // any outcome but a panic is fine; decoded-but-different is
            // possible when the flip lands in a literal run
            let _ = from_binary(&bad);
        }
        assert!(from_binary(b"SMRBx").is_err());
        assert!(from_binary(b"{\"format_version\":1}").is_err());
        assert!(from_binary(&[]).is_err());
    }
}

//! Resume-equivalence proofs: run → capture → restore → run must equal
//! run straight through, byte for byte.
//!
//! This is the property that makes capsules trustworthy. Capture is
//! purely observational (it happens at step boundaries both stepping
//! modes already land on, and draws nothing from the RNG), so a run
//! interrupted at any checkpoint and resumed from the capsule must
//! produce the *identical* report — same auditor fingerprint, same
//! counters, same event log, bit-equal floats. [`prove_resume_equivalence`]
//! checks exactly that for one (config, workload, policy) cell.

use mapreduce::auditor;
use mapreduce::policy::SlotPolicy;
use mapreduce::{Engine, EngineConfig, JobSpec};
use simgrid::error::SimError;
use simgrid::time::{SimDuration, SimTime};

/// The outcome of one resume-equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceProof {
    /// Policy name the cell ran under.
    pub policy: String,
    /// How many capsules the straight run captured.
    pub capsules: usize,
    /// The checkpoint instant the interrupted run resumed from (the
    /// midpoint capsule — past cluster warm-up, before the tail).
    pub resumed_from: SimTime,
    /// Auditor fingerprint of the uninterrupted run.
    pub straight_fingerprint: u64,
    /// Auditor fingerprint of the capture-then-resume run.
    pub resumed_fingerprint: u64,
    /// Whether the two full reports (counters, events, series, floats)
    /// serialize to identical bytes — strictly stronger than the
    /// fingerprint match.
    pub byte_identical: bool,
}

impl EquivalenceProof {
    /// The proof holds only when the reports are byte-identical (which
    /// implies the fingerprints match).
    pub fn holds(&self) -> bool {
        self.byte_identical && self.straight_fingerprint == self.resumed_fingerprint
    }
}

/// Prove resume equivalence for one cell: run `jobs` under a policy from
/// `make_policy` capturing a capsule every `every`, then resume the
/// midpoint capsule under a *fresh* policy instance and compare the two
/// reports. `make_policy` is called twice and must return equivalent
/// fresh instances (the restored one is handed the captured state).
pub fn prove_resume_equivalence(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    every: SimDuration,
    make_policy: &mut dyn FnMut() -> Box<dyn SlotPolicy>,
) -> Result<EquivalenceProof, SimError> {
    let mut straight_policy = make_policy();
    let (straight, capsules) = Engine::new(cfg.clone()).run_with_snapshots(
        jobs.to_vec(),
        straight_policy.as_mut(),
        every,
    )?;
    // t=0 is a multiple of every period, so a completed run always
    // captured at least one capsule
    let mid = capsules[capsules.len() / 2].clone();
    let resumed_from = mid.at();
    let mut resumed_policy = make_policy();
    let resumed = Engine::resume(mid, resumed_policy.as_mut())?;
    let straight_bytes = serde_json::to_string(&straight).expect("report serialises");
    let resumed_bytes = serde_json::to_string(&resumed).expect("report serialises");
    Ok(EquivalenceProof {
        policy: straight.policy.clone(),
        capsules: capsules.len(),
        resumed_from,
        straight_fingerprint: auditor::fingerprint(&straight),
        resumed_fingerprint: auditor::fingerprint(&resumed),
        byte_identical: straight_bytes == resumed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::StaticSlotPolicy;
    use mapreduce::JobProfile;
    use simgrid::time::SimTime;

    #[test]
    fn equivalence_holds_for_a_small_static_run() {
        let cfg = EngineConfig::small_test(4, 9);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1536.0,
            8,
            SimTime::ZERO,
        );
        let proof = prove_resume_equivalence(&cfg, &[job], SimDuration::from_secs(10), &mut || {
            Box::new(StaticSlotPolicy)
        })
        .expect("both runs complete");
        assert!(proof.holds(), "{proof:?}");
        assert_eq!(proof.policy, "HadoopV1");
        assert!(proof.capsules >= 2);
        assert!(proof.resumed_from > SimTime::ZERO, "midpoint is mid-run");
    }

    #[test]
    fn equivalence_holds_for_the_slot_manager() {
        let cfg = EngineConfig::small_test(4, 21);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let proof = prove_resume_equivalence(&cfg, &[job], SimDuration::from_secs(20), &mut || {
            Box::new(smapreduce::SlotManagerPolicy::paper_default())
        })
        .expect("both runs complete");
        assert!(proof.holds(), "{proof:?}");
        assert_eq!(proof.policy, "SMapReduce");
    }
}

//! Resume-equivalence proofs: run → capture → restore → run must retrace
//! the straight run exactly, step for step.
//!
//! This is the property that makes capsules trustworthy. Capture is
//! purely observational (it happens at step boundaries both stepping
//! modes already land on, and draws nothing from the RNG), so a run
//! interrupted at any checkpoint and resumed from the capsule must
//! produce the *identical* trajectory — same per-step state hashes, same
//! auditor fingerprint, bit-equal floats.
//!
//! [`prove_resume_equivalence`] checks this with the engine's rolling
//! per-step hash: the resumed run's hash trace must equal the straight
//! run's trace over the post-resume suffix, one `u64` comparison per
//! step. That is both *cheaper* than re-serializing two full reports and
//! *sharper* — a divergence is pinned to the exact step it first
//! happened, not discovered at the end of the run.
//! [`prove_resume_equivalence_full`] additionally byte-compares the two
//! serialized reports, the belt-and-braces form used by the slower
//! integration gates.

use mapreduce::auditor;
use mapreduce::policy::SlotPolicy;
use mapreduce::{Engine, EngineConfig, JobSpec};
use simgrid::error::SimError;
use simgrid::time::{SimDuration, SimTime};

/// The first step at which the straight and resumed hash traces disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashMismatch {
    /// 1-based completed-step count at the divergence.
    pub step: u64,
    /// Simulated time (ms) after that step on the straight run.
    pub at_ms: u64,
    /// Rolling state hash on the straight run; 0 when the straight trace
    /// ended before `step` (the resumed run took extra steps).
    pub straight: u64,
    /// Rolling state hash on the resumed run; 0 when the resumed trace
    /// ended before `step`.
    pub resumed: u64,
}

/// The outcome of one resume-equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceProof {
    /// Policy name the cell ran under.
    pub policy: String,
    /// How many capsules the straight run captured.
    pub capsules: usize,
    /// The checkpoint instant the interrupted run resumed from (the
    /// midpoint capsule — past cluster warm-up, before the tail).
    pub resumed_from: SimTime,
    /// Auditor fingerprint of the uninterrupted run.
    pub straight_fingerprint: u64,
    /// Auditor fingerprint of the capture-then-resume run.
    pub resumed_fingerprint: u64,
    /// How many post-resume steps had their hashes compared (the whole
    /// shared suffix when the traces agree).
    pub steps_compared: usize,
    /// The first step whose rolling hashes disagree, if any.
    pub first_divergence: Option<HashMismatch>,
    /// Whether the two full reports (counters, events, series, floats)
    /// serialize to identical bytes. `None` when the check was not run
    /// ([`prove_resume_equivalence`] proves through hashes alone);
    /// `Some(_)` only from [`prove_resume_equivalence_full`].
    pub byte_identical: Option<bool>,
}

impl EquivalenceProof {
    /// The proof holds when the resumed run retraced the straight run's
    /// every post-resume step and the auditor fingerprints match (and,
    /// when the byte-level check ran, the reports are byte-identical).
    pub fn holds(&self) -> bool {
        self.first_divergence.is_none()
            && self.steps_compared > 0
            && self.straight_fingerprint == self.resumed_fingerprint
            && self.byte_identical != Some(false)
    }
}

/// Prove resume equivalence for one cell: run `jobs` under a policy from
/// `make_policy` capturing a capsule every `every`, then resume the
/// midpoint capsule under a *fresh* policy instance and compare the two
/// hash traces step by step. `make_policy` is called twice and must
/// return equivalent fresh instances (the restored one is handed the
/// captured state).
pub fn prove_resume_equivalence(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    every: SimDuration,
    make_policy: &mut dyn FnMut() -> Box<dyn SlotPolicy>,
) -> Result<EquivalenceProof, SimError> {
    prove(cfg, jobs, every, make_policy, false)
}

/// [`prove_resume_equivalence`] plus the byte-level report comparison —
/// strictly stronger (it also covers report fields the per-step hash
/// does not fold, such as event logs and sampled series).
pub fn prove_resume_equivalence_full(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    every: SimDuration,
    make_policy: &mut dyn FnMut() -> Box<dyn SlotPolicy>,
) -> Result<EquivalenceProof, SimError> {
    prove(cfg, jobs, every, make_policy, true)
}

fn prove(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    every: SimDuration,
    make_policy: &mut dyn FnMut() -> Box<dyn SlotPolicy>,
    byte_level: bool,
) -> Result<EquivalenceProof, SimError> {
    let mut straight_policy = make_policy();
    let (straight, capsules, straight_trace) = Engine::new(cfg.clone()).run_with_snapshots_traced(
        jobs.to_vec(),
        straight_policy.as_mut(),
        every,
    )?;
    // t=0 is a multiple of every period, so a completed run always
    // captures at least one capsule — but guard rather than index: a
    // refactor that breaks that invariant must not turn into a panic
    if capsules.is_empty() {
        return Err(SimError::InvalidConfig(
            "resume-equivalence proof: the straight run captured no capsules \
             (is the snapshot period longer than the run?)"
                .into(),
        ));
    }
    let mid = capsules[capsules.len() / 2].clone();
    let resumed_from = mid.at();
    let mut resumed_policy = make_policy();
    let (resumed, resumed_trace) = Engine::resume_traced(mid, resumed_policy.as_mut())?;
    let (steps_compared, first_divergence) = compare_traces(&straight_trace, &resumed_trace);
    let byte_identical = byte_level.then(|| {
        let straight_bytes = serde_json::to_string(&straight).expect("report serialises");
        let resumed_bytes = serde_json::to_string(&resumed).expect("report serialises");
        straight_bytes == resumed_bytes
    });
    Ok(EquivalenceProof {
        policy: straight.policy.clone(),
        capsules: capsules.len(),
        resumed_from,
        straight_fingerprint: auditor::fingerprint(&straight),
        resumed_fingerprint: auditor::fingerprint(&resumed),
        steps_compared,
        first_divergence,
        byte_identical,
    })
}

/// Align the resumed trace against the straight trace's suffix by step
/// number and compare hashes pointwise. Returns how many steps agreed
/// and the first mismatch, if any.
pub fn compare_traces(
    straight: &[mapreduce::HashPoint],
    resumed: &[mapreduce::HashPoint],
) -> (usize, Option<HashMismatch>) {
    let Some(first) = resumed.first() else {
        // a resume at the final checkpoint legitimately takes zero steps;
        // `holds()` separately requires steps_compared > 0, so callers
        // that expect a mid-run resume still reject this
        return (0, None);
    };
    let Some(start) = straight.iter().position(|p| p.step == first.step) else {
        return (
            0,
            Some(HashMismatch {
                step: first.step,
                at_ms: first.at_ms,
                straight: 0,
                resumed: first.hash,
            }),
        );
    };
    let suffix = &straight[start..];
    let mut compared = 0usize;
    for (s, r) in suffix.iter().zip(resumed.iter()) {
        if s.step != r.step || s.at_ms != r.at_ms || s.hash != r.hash {
            return (
                compared,
                Some(HashMismatch {
                    step: s.step,
                    at_ms: s.at_ms,
                    straight: s.hash,
                    resumed: r.hash,
                }),
            );
        }
        compared += 1;
    }
    // one run taking more steps than the other is itself a divergence
    if suffix.len() != resumed.len() {
        let (extra_is_straight, extra) = if suffix.len() > resumed.len() {
            (true, suffix[compared])
        } else {
            (false, resumed[compared])
        };
        return (
            compared,
            Some(HashMismatch {
                step: extra.step,
                at_ms: extra.at_ms,
                straight: if extra_is_straight { extra.hash } else { 0 },
                resumed: if extra_is_straight { 0 } else { extra.hash },
            }),
        );
    }
    (compared, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::StaticSlotPolicy;
    use mapreduce::{HashPoint, JobProfile};
    use simgrid::time::SimTime;

    #[test]
    fn equivalence_holds_for_a_small_static_run() {
        let cfg = EngineConfig::small_test(4, 9);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1536.0,
            8,
            SimTime::ZERO,
        );
        let proof = prove_resume_equivalence(&cfg, &[job], SimDuration::from_secs(10), &mut || {
            Box::new(StaticSlotPolicy)
        })
        .expect("both runs complete");
        assert!(proof.holds(), "{proof:?}");
        assert_eq!(proof.policy, "HadoopV1");
        assert!(proof.capsules >= 2);
        assert!(proof.resumed_from > SimTime::ZERO, "midpoint is mid-run");
        assert!(proof.steps_compared > 0, "suffix was actually compared");
        assert_eq!(proof.byte_identical, None, "hash proof skips byte check");
    }

    #[test]
    fn equivalence_holds_for_the_slot_manager() {
        let cfg = EngineConfig::small_test(4, 21);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            2048.0,
            8,
            SimTime::ZERO,
        );
        let proof =
            prove_resume_equivalence_full(&cfg, &[job], SimDuration::from_secs(20), &mut || {
                Box::new(smapreduce::SlotManagerPolicy::paper_default())
            })
            .expect("both runs complete");
        assert!(proof.holds(), "{proof:?}");
        assert_eq!(proof.policy, "SMapReduce");
        assert_eq!(proof.byte_identical, Some(true));
    }

    fn pt(step: u64, hash: u64) -> HashPoint {
        HashPoint {
            step,
            at_ms: step * 1_000,
            hash,
        }
    }

    #[test]
    fn trace_comparison_pins_the_first_divergent_step() {
        let straight = vec![pt(1, 10), pt(2, 20), pt(3, 30), pt(4, 40)];
        // resumed from the capsule captured after step 2
        let resumed_good = vec![pt(3, 30), pt(4, 40)];
        assert_eq!(compare_traces(&straight, &resumed_good), (2, None));

        let resumed_bad = vec![pt(3, 30), pt(4, 41)];
        let (compared, div) = compare_traces(&straight, &resumed_bad);
        assert_eq!(compared, 1);
        let div = div.expect("diverges at step 4");
        assert_eq!((div.step, div.straight, div.resumed), (4, 40, 41));

        // a resumed run that takes extra (or fewer) steps diverges too
        let resumed_long = vec![pt(3, 30), pt(4, 40), pt(5, 50)];
        let (_, div) = compare_traces(&straight, &resumed_long);
        let div = div.expect("extra step is a divergence");
        assert_eq!((div.step, div.straight, div.resumed), (5, 0, 50));
    }
}

//! # checkpoint — deterministic capsules for the simulation engine
//!
//! The engine is bit-deterministic: the same configuration and seed
//! replay to byte-identical reports. This crate makes that determinism
//! *inspectable* by freezing a run into a versioned **state capsule**
//! ([`SimSnapshot`] wrapping [`mapreduce::EngineState`]) at any sampling
//! instant, and builds two tools on top of it:
//!
//! * a **resume-equivalence proof** ([`equivalence`]): run to T, capture,
//!   restore, run to the end — and check the result is byte-identical to
//!   the uninterrupted run (same auditor fingerprint, counters, events);
//! * a **divergence bisector** ([`bisect`]): given two capsule streams of
//!   what should be the same run, binary-search to the first divergent
//!   checkpoint and diff it field by field.
//!
//! Capsules are plain JSON files. A *capsule stream* is a directory of
//! `capsule-<millis>.json` files, one per checkpoint instant, written by
//! [`write_stream`] and enumerated (sorted by instant) by
//! [`list_capsules`].

use mapreduce::EngineState;
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod bisect;
pub mod equivalence;

pub use bisect::{bisect_dirs, Divergence, FieldDiff};
pub use equivalence::{prove_resume_equivalence, EquivalenceProof};

/// Capsule wire-format version. Bumped whenever [`EngineState`]'s
/// serialized shape changes incompatibly; [`load`] refuses capsules from
/// another version instead of misinterpreting them.
pub const FORMAT_VERSION: u32 = 1;

/// A complete simulation state frozen at one simulated instant, plus the
/// envelope needed to trust it later: the format version and the capture
/// instant (duplicated out of the state so streams can be enumerated
/// without parsing the full state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    pub format_version: u32,
    pub at: SimTime,
    pub state: EngineState,
}

impl SimSnapshot {
    pub fn new(state: EngineState) -> SimSnapshot {
        SimSnapshot {
            format_version: FORMAT_VERSION,
            at: state.at(),
            state,
        }
    }

    /// Check the envelope is coherent (version supported, instant matches
    /// the state). Called by [`load`]; callers constructing snapshots by
    /// hand can use it too.
    pub fn validate(&self, origin: &Path) -> Result<(), CapsuleError> {
        if self.format_version != FORMAT_VERSION {
            return Err(CapsuleError::VersionMismatch {
                path: origin.to_path_buf(),
                found: self.format_version,
            });
        }
        if self.at != self.state.at() {
            return Err(CapsuleError::Malformed(
                origin.to_path_buf(),
                format!(
                    "envelope instant {} ms disagrees with state instant {} ms",
                    self.at.as_millis(),
                    self.state.at().as_millis()
                ),
            ));
        }
        Ok(())
    }
}

/// Everything that can go wrong reading or writing capsules.
#[derive(Debug)]
pub enum CapsuleError {
    Io(PathBuf, std::io::Error),
    Malformed(PathBuf, String),
    VersionMismatch { path: PathBuf, found: u32 },
    EmptyStream(PathBuf),
}

impl fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsuleError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            CapsuleError::Malformed(p, why) => {
                write!(f, "{}: malformed capsule: {why}", p.display())
            }
            CapsuleError::VersionMismatch { path, found } => write!(
                f,
                "{}: capsule format v{found}, this build reads v{FORMAT_VERSION}",
                path.display()
            ),
            CapsuleError::EmptyStream(p) => {
                write!(f, "{}: no capsule-*.json files", p.display())
            }
        }
    }
}

impl std::error::Error for CapsuleError {}

/// Write one capsule as JSON.
pub fn save(path: &Path, snap: &SimSnapshot) -> Result<(), CapsuleError> {
    let json = serde_json::to_string(snap)
        .map_err(|e| CapsuleError::Malformed(path.to_path_buf(), e.to_string()))?;
    std::fs::write(path, json).map_err(|e| CapsuleError::Io(path.to_path_buf(), e))
}

/// Read and validate one capsule.
pub fn load(path: &Path) -> Result<SimSnapshot, CapsuleError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CapsuleError::Io(path.to_path_buf(), e))?;
    let snap: SimSnapshot = serde_json::from_str(&text)
        .map_err(|e| CapsuleError::Malformed(path.to_path_buf(), e.to_string()))?;
    snap.validate(path)?;
    Ok(snap)
}

/// Stream file name for a capture instant: zero-padded so lexicographic
/// order is chronological order.
pub fn capsule_file_name(at: SimTime) -> String {
    format!("capsule-{:012}.json", at.as_millis())
}

/// Write a run's captured states into `dir` as a capsule stream. Creates
/// the directory; returns the written paths in chronological order.
pub fn write_stream(dir: &Path, states: &[EngineState]) -> Result<Vec<PathBuf>, CapsuleError> {
    std::fs::create_dir_all(dir).map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
    let mut paths = Vec::with_capacity(states.len());
    for state in states {
        let path = dir.join(capsule_file_name(state.at()));
        save(&path, &SimSnapshot::new(state.clone()))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Enumerate a capsule stream, sorted by capture instant. Non-capsule
/// files in the directory are ignored.
pub fn list_capsules(dir: &Path) -> Result<Vec<(SimTime, PathBuf)>, CapsuleError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(ms) = name
            .strip_prefix("capsule-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((SimTime::from_millis(ms), entry.path()));
    }
    out.sort_by_key(|(at, _)| *at);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::StaticSlotPolicy;
    use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
    use simgrid::time::SimDuration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smr-capsule-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_stream() -> (mapreduce::RunReport, Vec<EngineState>) {
        let cfg = EngineConfig::small_test(4, 5);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        Engine::new(cfg)
            .run_with_snapshots(vec![job], &mut StaticSlotPolicy, SimDuration::from_secs(10))
            .expect("runs")
    }

    #[test]
    fn file_names_sort_chronologically() {
        assert_eq!(
            capsule_file_name(SimTime::ZERO),
            "capsule-000000000000.json"
        );
        let a = capsule_file_name(SimTime::from_secs(9));
        let b = capsule_file_name(SimTime::from_secs(100));
        assert!(a < b, "{a} should sort before {b}");
    }

    #[test]
    fn stream_round_trips_through_disk() {
        let (_, states) = small_stream();
        assert!(states.len() >= 2, "expected several capsules");
        let dir = tmp_dir("roundtrip");
        let paths = write_stream(&dir, &states).expect("write");
        assert_eq!(paths.len(), states.len());
        let listed = list_capsules(&dir).expect("list");
        assert_eq!(listed.len(), states.len());
        for ((at, path), state) in listed.iter().zip(&states) {
            assert_eq!(*at, state.at());
            let snap = load(path).expect("load");
            assert_eq!(snap.at, state.at());
            assert_eq!(
                serde_json::to_string(&snap.state).unwrap(),
                serde_json::to_string(state).unwrap(),
                "capsule at {} ms changed through disk",
                at.as_millis()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_capsule_resumes_to_the_straight_result() {
        let (straight, states) = small_stream();
        let dir = tmp_dir("resume");
        let paths = write_stream(&dir, &states).expect("write");
        let snap = load(&paths[paths.len() / 2]).expect("load");
        let resumed = Engine::resume(snap.state, &mut StaticSlotPolicy).expect("resume");
        assert_eq!(
            serde_json::to_string(&straight).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resume from a disk capsule diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_, states) = small_stream();
        let dir = tmp_dir("version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(capsule_file_name(states[0].at()));
        let mut snap = SimSnapshot::new(states[0].clone());
        snap.format_version = FORMAT_VERSION + 1;
        let json = serde_json::to_string(&snap).unwrap();
        std::fs::write(&path, json).unwrap();
        match load(&path) {
            Err(CapsuleError::VersionMismatch { found, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_files_are_ignored_by_listing_and_rejected_by_load() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        std::fs::write(dir.join("capsule-000000000000.json"), "{not json").unwrap();
        let listed = list_capsules(&dir).expect("list");
        assert_eq!(listed.len(), 1, "only capsule-*.json names are capsules");
        assert!(matches!(
            load(&listed[0].1),
            Err(CapsuleError::Malformed(..))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # checkpoint — deterministic capsules for the simulation engine
//!
//! The engine is bit-deterministic: the same configuration and seed
//! replay to byte-identical reports. This crate makes that determinism
//! *inspectable* by freezing a run into a versioned **state capsule**
//! ([`SimSnapshot`] wrapping [`mapreduce::EngineState`]) at any sampling
//! instant, and builds two tools on top of it:
//!
//! * a **resume-equivalence proof** ([`equivalence`]): run to T, capture,
//!   restore, run to the end — and check the resumed run's per-step hash
//!   trace and auditor fingerprint match the uninterrupted run's;
//! * a **divergence bisector** ([`bisect`]): given two capsule streams of
//!   what should be the same run, binary-search to the first divergent
//!   checkpoint and diff it field by field — or, cheaper, scan two hash
//!   traces and parse only the one divergent capsule pair.
//!
//! Capsules come in two encodings behind the same versioned envelope:
//! **JSON** (`capsule-<millis>.json`, the format-v1 wire form, still
//! written on request and always readable) and **binary**
//! (`capsule-<millis>.bin`, the [`codec`] module's pooled + LZ-compressed
//! encoding — several times smaller and faster, the default for new
//! sweeps). [`load`] sniffs the encoding from the first byte (`{` opens a
//! JSON capsule, `S` opens the binary `SMRB` magic), so a *capsule
//! stream* — a directory of capsule files written by [`write_stream_as`]
//! and enumerated by [`list_capsules`] — may freely mix both.
//!
//! All writes are crash-safe: bytes land in a temp file in the target
//! directory and are atomically renamed into place, so a killed run
//! leaves either the complete capsule or no capsule — never a truncated
//! file that later bisects as a spurious divergence.

use mapreduce::{EngineState, HashPoint};
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod bisect;
pub mod codec;
pub mod equivalence;

pub use bisect::{bisect_dirs, bisect_hash_traces, Divergence, FieldDiff, TraceDivergence};
pub use equivalence::{
    compare_traces, prove_resume_equivalence, prove_resume_equivalence_full, EquivalenceProof,
    HashMismatch,
};

/// Capsule envelope version written by this build. v1 capsules were
/// always JSON text; v2 capsules additionally carry the engine's rolling
/// per-step `state_hash` and may be encoded in either JSON or the binary
/// [`codec`] form. [`load`] reads every version in
/// [`MIN_FORMAT_VERSION`]..=[`FORMAT_VERSION`] and refuses anything newer
/// instead of misinterpreting it.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest capsule version this build still reads (committed v1 fixtures
/// must keep loading and resuming for as long as this stays at 1).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// File name of the per-step hash trace recorded alongside a capsule
/// stream: one `<step> <at_ms> <hash>` line per engine step.
pub const HASH_TRACE_FILE: &str = "hash-trace.txt";

/// The two on-disk capsule encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapsuleFormat {
    /// Compact JSON text — the v1 wire form; human-greppable.
    Json,
    /// Pooled, LZ-compressed binary (`SMRB` envelope, see [`codec`]).
    Binary,
}

impl CapsuleFormat {
    /// Parse a `--capsule-format` operand.
    pub fn parse(s: &str) -> Option<CapsuleFormat> {
        match s {
            "json" => Some(CapsuleFormat::Json),
            "bin" | "binary" => Some(CapsuleFormat::Binary),
            _ => None,
        }
    }

    pub fn extension(self) -> &'static str {
        match self {
            CapsuleFormat::Json => "json",
            CapsuleFormat::Binary => "bin",
        }
    }

    /// Infer the format a path's extension asks for.
    pub fn of_path(path: &Path) -> Option<CapsuleFormat> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Some(CapsuleFormat::Json),
            Some("bin") => Some(CapsuleFormat::Binary),
            _ => None,
        }
    }
}

impl fmt::Display for CapsuleFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension())
    }
}

/// A complete simulation state frozen at one simulated instant, plus the
/// envelope needed to trust it later: the format version and the capture
/// instant (duplicated out of the state so streams can be enumerated
/// without parsing the full state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    pub format_version: u32,
    pub at: SimTime,
    pub state: EngineState,
}

impl SimSnapshot {
    pub fn new(state: EngineState) -> SimSnapshot {
        SimSnapshot {
            format_version: FORMAT_VERSION,
            at: state.at(),
            state,
        }
    }

    /// Check the envelope is coherent (version supported, instant matches
    /// the state). Called by [`load`]; callers constructing snapshots by
    /// hand can use it too.
    pub fn validate(&self, origin: &Path) -> Result<(), CapsuleError> {
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&self.format_version) {
            return Err(CapsuleError::VersionMismatch {
                path: origin.to_path_buf(),
                found: self.format_version,
            });
        }
        if self.at != self.state.at() {
            return Err(CapsuleError::Malformed(
                origin.to_path_buf(),
                format!(
                    "envelope instant {} ms disagrees with state instant {} ms",
                    self.at.as_millis(),
                    self.state.at().as_millis()
                ),
            ));
        }
        Ok(())
    }
}

/// Everything that can go wrong reading or writing capsules.
#[derive(Debug)]
pub enum CapsuleError {
    Io(PathBuf, std::io::Error),
    Malformed(PathBuf, String),
    VersionMismatch {
        path: PathBuf,
        found: u32,
    },
    EmptyStream(PathBuf),
    /// Two states in one stream share a capture instant: they would land
    /// on the same file name, silently shortening the stream on disk.
    DuplicateInstant {
        dir: PathBuf,
        at: SimTime,
    },
}

impl fmt::Display for CapsuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapsuleError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            CapsuleError::Malformed(p, why) => {
                write!(f, "{}: malformed capsule: {why}", p.display())
            }
            CapsuleError::VersionMismatch { path, found } => write!(
                f,
                "{}: capsule format v{found}, this build reads \
                 v{MIN_FORMAT_VERSION}..=v{FORMAT_VERSION}",
                path.display()
            ),
            CapsuleError::EmptyStream(p) => {
                write!(f, "{}: no capsule-*.{{json,bin}} files", p.display())
            }
            CapsuleError::DuplicateInstant { dir, at } => write!(
                f,
                "{}: two capsules captured at the same instant ({} ms)",
                dir.display(),
                at.as_millis()
            ),
        }
    }
}

impl std::error::Error for CapsuleError {}

/// Serialize one capsule into its wire bytes.
pub fn to_bytes(snap: &SimSnapshot, format: CapsuleFormat) -> Vec<u8> {
    match format {
        CapsuleFormat::Json => serde_json::to_string(snap)
            .expect("capsule serialises")
            .into_bytes(),
        CapsuleFormat::Binary => {
            codec::to_binary(&serde_json::to_value(snap).expect("capsule serialises"))
        }
    }
}

/// Parse capsule wire bytes, sniffing the encoding from the first byte:
/// a JSON capsule opens with `{`, a binary capsule with the `SMRB` magic.
/// `origin` is only used in error messages.
pub fn from_bytes(origin: &Path, bytes: &[u8]) -> Result<SimSnapshot, CapsuleError> {
    let malformed = |why: String| CapsuleError::Malformed(origin.to_path_buf(), why);
    let snap: SimSnapshot = if bytes.first() == Some(&codec::MAGIC[0]) {
        let value = codec::from_binary(bytes).map_err(malformed)?;
        Deserialize::deserialize(&value).map_err(|e| malformed(e.to_string()))?
    } else {
        let text = std::str::from_utf8(bytes).map_err(|e| malformed(e.to_string()))?;
        serde_json::from_str(text).map_err(|e| malformed(e.to_string()))?
    };
    snap.validate(origin)?;
    Ok(snap)
}

/// Write one capsule, in the encoding the path's extension names
/// (`.bin` → binary, anything else → JSON). Crash-safe: bytes go to a
/// temp file in the same directory, atomically renamed into place.
pub fn save(path: &Path, snap: &SimSnapshot) -> Result<(), CapsuleError> {
    let format = CapsuleFormat::of_path(path).unwrap_or(CapsuleFormat::Json);
    write_atomic(path, &to_bytes(snap, format))
}

/// Read and validate one capsule (either encoding, sniffed).
pub fn load(path: &Path) -> Result<SimSnapshot, CapsuleError> {
    let bytes = std::fs::read(path).map_err(|e| CapsuleError::Io(path.to_path_buf(), e))?;
    from_bytes(path, &bytes)
}

/// Atomically replace `path` with `bytes`: write a uniquely-named temp
/// file in the same directory, then rename. A crash mid-write leaves only
/// the temp file (dot-prefixed, never enumerated as a capsule).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CapsuleError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_TMP: AtomicU64 = AtomicU64::new(0);
    let io_err = |e: std::io::Error| CapsuleError::Io(path.to_path_buf(), e);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io_err(std::io::Error::other("path has no file name")))?;
    let tmp = dir.join(format!(
        ".{file_name}.tmp-{}-{}",
        std::process::id(),
        NEXT_TMP.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes).map_err(|e| CapsuleError::Io(tmp.clone(), e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err(e)
    })
}

/// Stream file name for a capture instant: zero-padded so lexicographic
/// order is chronological order. The v2 name scheme pads to 15 digits —
/// enough for every representable instant below ~31,688 simulated years
/// (the v1 scheme's 12 digits broke the invariant past 10^12 ms).
pub fn capsule_file_name(at: SimTime, format: CapsuleFormat) -> String {
    format!("capsule-{:015}.{}", at.as_millis(), format.extension())
}

/// [`write_stream_as`] in the JSON encoding.
pub fn write_stream(dir: &Path, states: &[EngineState]) -> Result<Vec<PathBuf>, CapsuleError> {
    write_stream_as(dir, states, CapsuleFormat::Json)
}

/// Write a run's captured states into `dir` as a capsule stream. Creates
/// the directory; returns the written paths in chronological order.
/// States sharing a capture instant are a [`CapsuleError::DuplicateInstant`]
/// — they would collapse onto one file name and desynchronize the
/// on-disk stream length from the run report.
pub fn write_stream_as(
    dir: &Path,
    states: &[EngineState],
    format: CapsuleFormat,
) -> Result<Vec<PathBuf>, CapsuleError> {
    std::fs::create_dir_all(dir).map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
    let mut instants: Vec<SimTime> = states.iter().map(|s| s.at()).collect();
    instants.sort();
    if let Some(dup) = instants.windows(2).find(|w| w[0] == w[1]) {
        return Err(CapsuleError::DuplicateInstant {
            dir: dir.to_path_buf(),
            at: dup[0],
        });
    }
    let mut paths = Vec::with_capacity(states.len());
    for state in states {
        let path = dir.join(capsule_file_name(state.at(), format));
        save(&path, &SimSnapshot::new(state.clone()))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Enumerate a capsule stream (both encodings, any digit width), sorted
/// by capture instant. Non-capsule files in the directory are ignored.
pub fn list_capsules(dir: &Path) -> Result<Vec<(SimTime, PathBuf)>, CapsuleError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(ms) = name
            .strip_prefix("capsule-")
            .and_then(|rest| {
                rest.strip_suffix(".json")
                    .or_else(|| rest.strip_suffix(".bin"))
            })
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((SimTime::from_millis(ms), entry.path()));
    }
    out.sort();
    Ok(out)
}

/// The packed (pool-deduplicated, uncompressed) binary encoding of one
/// engine state — the byte string the sweep engine's prefix cache interns
/// by: several times shorter than canonical JSON, so fingerprinting and
/// hit confirmation are correspondingly cheaper.
pub fn state_encoding(state: &EngineState) -> Vec<u8> {
    codec::pack_value(&serde_json::to_value(state).expect("capsule serialises"))
}

/// Write a run's per-step hash trace next to its capsule stream
/// (`dir/hash-trace.txt`, atomically). One line per step:
/// `<step> <at_ms> <hash>`.
pub fn write_hash_trace(dir: &Path, trace: &[HashPoint]) -> Result<PathBuf, CapsuleError> {
    std::fs::create_dir_all(dir).map_err(|e| CapsuleError::Io(dir.to_path_buf(), e))?;
    let mut text = String::with_capacity(trace.len() * 44);
    for p in trace {
        text.push_str(&format!("{} {} {:#018x}\n", p.step, p.at_ms, p.hash));
    }
    let path = dir.join(HASH_TRACE_FILE);
    write_atomic(&path, text.as_bytes())?;
    Ok(path)
}

/// Read a hash trace written by [`write_hash_trace`].
pub fn read_hash_trace(path: &Path) -> Result<Vec<HashPoint>, CapsuleError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CapsuleError::Io(path.to_path_buf(), e))?;
    let malformed = |line_no: usize, line: &str| {
        CapsuleError::Malformed(
            path.to_path_buf(),
            format!("hash-trace line {}: {line:?}", line_no + 1),
        )
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let (Some(step), Some(at_ms), Some(hash), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(malformed(i, line));
        };
        let hash = hash.strip_prefix("0x").unwrap_or(hash);
        let point = HashPoint {
            step: step.parse().map_err(|_| malformed(i, line))?,
            at_ms: at_ms.parse().map_err(|_| malformed(i, line))?,
            hash: u64::from_str_radix(hash, 16).map_err(|_| malformed(i, line))?,
        };
        out.push(point);
    }
    Ok(out)
}

/// Fold a whole hash trace down to one u64 — the digest `reproduce
/// fingerprint --hash-trace` prints, identical for a straight run and an
/// equivalent resumed run's reconstructed trace.
pub fn trace_digest(trace: &[HashPoint]) -> u64 {
    let mut h = mapreduce::initial_state_hash(trace.len() as u64);
    for p in trace {
        h = mapreduce::fold_hash(h, p.step);
        h = mapreduce::fold_hash(h, p.at_ms);
        h = mapreduce::fold_hash(h, p.hash);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::StaticSlotPolicy;
    use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
    use simgrid::time::SimDuration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smr-capsule-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_stream() -> (mapreduce::RunReport, Vec<EngineState>) {
        let cfg = EngineConfig::small_test(4, 5);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            1024.0,
            8,
            SimTime::ZERO,
        );
        Engine::new(cfg)
            .run_with_snapshots(vec![job], &mut StaticSlotPolicy, SimDuration::from_secs(10))
            .expect("runs")
    }

    #[test]
    fn file_names_sort_chronologically() {
        assert_eq!(
            capsule_file_name(SimTime::ZERO, CapsuleFormat::Json),
            "capsule-000000000000000.json"
        );
        assert_eq!(
            capsule_file_name(SimTime::ZERO, CapsuleFormat::Binary),
            "capsule-000000000000000.bin"
        );
        let a = capsule_file_name(SimTime::from_secs(9), CapsuleFormat::Json);
        let b = capsule_file_name(SimTime::from_secs(100), CapsuleFormat::Json);
        assert!(a < b, "{a} should sort before {b}");
        // the v1 12-digit pad broke lexicographic order past 10^12 ms;
        // 15 digits cover every instant below ~31,688 simulated years
        let big = capsule_file_name(SimTime::from_millis(10u64.pow(12)), CapsuleFormat::Json);
        assert!(b < big, "{b} should sort before {big}");
    }

    #[test]
    fn stream_round_trips_through_disk_in_both_formats() {
        let (_, states) = small_stream();
        assert!(states.len() >= 2, "expected several capsules");
        for format in [CapsuleFormat::Json, CapsuleFormat::Binary] {
            let dir = tmp_dir(&format!("roundtrip-{format}"));
            let paths = write_stream_as(&dir, &states, format).expect("write");
            assert_eq!(paths.len(), states.len());
            let listed = list_capsules(&dir).expect("list");
            assert_eq!(listed.len(), states.len());
            for ((at, path), state) in listed.iter().zip(&states) {
                assert_eq!(*at, state.at());
                let snap = load(path).expect("load");
                assert_eq!(snap.at, state.at());
                assert_eq!(
                    serde_json::to_string(&snap.state).unwrap(),
                    serde_json::to_string(state).unwrap(),
                    "capsule at {} ms changed through disk ({format})",
                    at.as_millis()
                );
            }
            // crash-safe writes leave no temp droppings behind
            let stray = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
                .count();
            assert_eq!(stray, 0, "temp files left in the stream directory");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn binary_capsules_are_much_smaller() {
        // a tiny 4-worker capsule has little redundancy for the LZ layer
        // to chew on, so the floor here is 3×; the ≥5× acceptance gate
        // runs on the representative ext-faults stream in capsule-bench
        let (_, states) = small_stream();
        let last = states.last().expect("capsules");
        let snap = SimSnapshot::new(last.clone());
        let json = to_bytes(&snap, CapsuleFormat::Json).len();
        let bin = to_bytes(&snap, CapsuleFormat::Binary).len();
        assert!(
            bin * 3 <= json,
            "binary capsule not ≥3× smaller: {bin} vs {json} bytes"
        );
    }

    #[test]
    fn loaded_capsule_resumes_to_the_straight_result() {
        let (straight, states) = small_stream();
        for format in [CapsuleFormat::Json, CapsuleFormat::Binary] {
            let dir = tmp_dir(&format!("resume-{format}"));
            let paths = write_stream_as(&dir, &states, format).expect("write");
            let snap = load(&paths[paths.len() / 2]).expect("load");
            let resumed = Engine::resume(snap.state, &mut StaticSlotPolicy).expect("resume");
            assert_eq!(
                serde_json::to_string(&straight).unwrap(),
                serde_json::to_string(&resumed).unwrap(),
                "resume from a {format} disk capsule diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn duplicate_capture_instants_are_an_error() {
        let (_, states) = small_stream();
        let dir = tmp_dir("dup");
        let mut dup = states.clone();
        dup.push(states[0].clone());
        match write_stream(&dir, &dup) {
            Err(CapsuleError::DuplicateInstant { at, .. }) => assert_eq!(at, states[0].at()),
            other => panic!("expected DuplicateInstant, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (_, states) = small_stream();
        let dir = tmp_dir("version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(capsule_file_name(states[0].at(), CapsuleFormat::Json));
        let mut snap = SimSnapshot::new(states[0].clone());
        snap.format_version = FORMAT_VERSION + 1;
        let json = serde_json::to_string(&snap).unwrap();
        std::fs::write(&path, json).unwrap();
        match load(&path) {
            Err(CapsuleError::VersionMismatch { found, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_files_are_ignored_by_listing_and_rejected_by_load() {
        let dir = tmp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        std::fs::write(dir.join("capsule-000000000000000.json"), "{not json").unwrap();
        // truncated binary: valid magic, nothing behind it
        std::fs::write(dir.join("capsule-000000000010000.bin"), b"SMRB").unwrap();
        let listed = list_capsules(&dir).expect("list");
        assert_eq!(listed.len(), 2, "only capsule-*.{{json,bin}} are capsules");
        for (_, path) in &listed {
            assert!(matches!(load(path), Err(CapsuleError::Malformed(..))));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_trace_round_trips_and_digests_stably() {
        let dir = tmp_dir("trace");
        let trace = vec![
            HashPoint {
                step: 1,
                at_ms: 100,
                hash: 0xdead_beef_0123_4567,
            },
            HashPoint {
                step: 2,
                at_ms: 250,
                hash: 0,
            },
        ];
        let path = write_hash_trace(&dir, &trace).expect("write");
        assert_eq!(path.file_name().unwrap(), HASH_TRACE_FILE);
        let back = read_hash_trace(&path).expect("read");
        assert_eq!(back, trace);
        assert_eq!(trace_digest(&back), trace_digest(&trace));
        assert_ne!(trace_digest(&trace), trace_digest(&trace[..1]));
        std::fs::write(&path, "1 100\n").unwrap();
        assert!(matches!(
            read_hash_trace(&path),
            Err(CapsuleError::Malformed(..))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

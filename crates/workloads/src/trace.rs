//! Arrival traces: sustained multi-job load.
//!
//! The paper's introduction motivates runtime management with "the
//! workload is typically always changing in the cluster"; its §V-F
//! experiment approximates that with four identical staggered jobs. This
//! module generates the fuller version — a Poisson arrival process over a
//! mixed benchmark set — used by the sustained-load extension experiment.

use crate::puma::Puma;
use mapreduce::job::JobSpec;
use simgrid::rng::SimRng;
use simgrid::time::SimTime;

/// Parameters of a synthetic arrival trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Mean inter-arrival gap (seconds); arrivals are exponential.
    pub mean_interarrival_s: f64,
    /// Jobs stop arriving after this instant (the trace's horizon).
    pub horizon_s: f64,
    /// Benchmarks drawn from (uniformly).
    pub mix: Vec<Puma>,
    /// Input size range (MB), uniform.
    pub input_mb: (f64, f64),
    /// Reduce tasks per job.
    pub num_reduces: usize,
}

impl TraceSpec {
    /// A mixed interactive/batch load: map-heavy scans, a medium
    /// aggregation and one sort-like job class.
    pub fn mixed_load() -> TraceSpec {
        TraceSpec {
            mean_interarrival_s: 45.0,
            horizon_s: 600.0,
            mix: vec![
                Puma::Grep,
                Puma::HistogramRatings,
                Puma::WordCount,
                Puma::InvertedIndex,
            ],
            input_mb: (2.0 * 1024.0, 10.0 * 1024.0),
            num_reduces: 12,
        }
    }

    /// A calmer batch load: fewer, larger jobs with long stable stretches
    /// between arrivals — the regime the paper's Fig. 6 shows the slot
    /// manager needs.
    pub fn batch_load() -> TraceSpec {
        TraceSpec {
            mean_interarrival_s: 180.0,
            horizon_s: 600.0,
            mix: vec![
                Puma::Grep,
                Puma::HistogramRatings,
                Puma::WordCount,
                Puma::InvertedIndex,
            ],
            input_mb: (15.0 * 1024.0, 35.0 * 1024.0),
            num_reduces: 24,
        }
    }

    /// Generate the trace deterministically from `seed`. At least one job
    /// is always produced (at t = 0).
    pub fn generate(&self, seed: u64) -> Vec<JobSpec> {
        assert!(!self.mix.is_empty(), "need at least one benchmark");
        assert!(self.mean_interarrival_s > 0.0 && self.horizon_s >= 0.0);
        assert!(self.input_mb.0 > 0.0 && self.input_mb.1 >= self.input_mb.0);
        let mut rng = SimRng::new(seed).derive("trace");
        let mut jobs = Vec::new();
        let mut t = 0.0_f64;
        loop {
            let bench = self.mix[rng.below(self.mix.len())];
            let input = self.input_mb.0 + rng.unit() * (self.input_mb.1 - self.input_mb.0);
            jobs.push(bench.job(
                jobs.len(),
                input,
                self.num_reduces,
                SimTime::from_millis((t * 1000.0) as u64),
            ));
            // exponential inter-arrival
            let gap = -self.mean_interarrival_s * (1.0 - rng.unit()).ln();
            t += gap;
            if t > self.horizon_s {
                break;
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_ordered() {
        let spec = TraceSpec::mixed_load();
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit_at, y.submit_at);
            assert_eq!(x.profile.name, y.profile.name);
            assert_eq!(x.input_mb, y.input_mb);
        }
        // ids dense, times non-decreasing, within horizon
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id.0, i);
            assert!(j.submit_at.as_secs_f64() <= spec.horizon_s + 1e-9);
        }
        for w in a.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = TraceSpec::mixed_load();
        let a = spec.generate(1);
        let b = spec.generate(2);
        assert!(
            a.len() != b.len()
                || a.iter()
                    .zip(&b)
                    .any(|(x, y)| x.submit_at != y.submit_at || x.input_mb != y.input_mb)
        );
    }

    #[test]
    fn arrival_rate_roughly_matches_mean() {
        let mut spec = TraceSpec::mixed_load();
        spec.horizon_s = 20_000.0;
        spec.mean_interarrival_s = 50.0;
        let jobs = spec.generate(3);
        let expected = spec.horizon_s / spec.mean_interarrival_s;
        let n = jobs.len() as f64;
        assert!(
            (n - expected).abs() < expected * 0.25,
            "{n} arrivals vs ~{expected}"
        );
    }

    #[test]
    fn always_at_least_one_job() {
        let mut spec = TraceSpec::mixed_load();
        spec.horizon_s = 0.0;
        let jobs = spec.generate(9);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].submit_at, SimTime::ZERO);
    }

    #[test]
    fn input_sizes_within_range() {
        let spec = TraceSpec::mixed_load();
        for j in spec.generate(11) {
            assert!(j.input_mb >= spec.input_mb.0 && j.input_mb <= spec.input_mb.1);
        }
    }
}

//! Workload generators: parameter sweeps and job-set builders used by the
//! experiment harness.

use crate::puma::Puma;
use mapreduce::job::JobSpec;
use simgrid::time::SimTime;

/// One job of `bench` with explicit input size (for the Fig. 6 input-size
/// sweep), 30 reduces, submitted at t = 0.
pub fn sized_job(bench: Puma, input_mb: f64) -> JobSpec {
    bench.job(0, input_mb, 30, SimTime::ZERO)
}

/// The Fig. 6 sweep: input sizes in GB.
pub fn input_sweep_gb() -> Vec<f64> {
    vec![50.0, 100.0, 150.0, 200.0, 250.0]
}

/// The Fig. 1 / Fig. 5 map-slot sweep.
pub fn map_slot_sweep() -> Vec<usize> {
    (1..=8).collect()
}

/// `count` identical jobs of `bench`, each submitted `stagger` after the
/// previous — the multi-job workload of §V-F.
pub fn staggered_jobs(
    bench: Puma,
    count: usize,
    input_mb: f64,
    num_reduces: usize,
    stagger: simgrid::time::SimDuration,
) -> Vec<JobSpec> {
    (0..count)
        .map(|i| bench.job(i, input_mb, num_reduces, SimTime(stagger.0 * i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::time::SimDuration;

    #[test]
    fn sized_job_uses_requested_size() {
        let j = sized_job(Puma::HistogramRatings, 4096.0);
        assert_eq!(j.input_mb, 4096.0);
        assert_eq!(j.num_reduces, 30);
    }

    #[test]
    fn sweeps_match_paper_ranges() {
        assert_eq!(input_sweep_gb(), vec![50.0, 100.0, 150.0, 200.0, 250.0]);
        assert_eq!(map_slot_sweep(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn staggered_jobs_are_spaced_and_dense() {
        let jobs = staggered_jobs(Puma::Grep, 4, 1024.0, 8, SimDuration::from_secs(5));
        assert_eq!(jobs.len(), 4);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id.0, i, "ids must be dense for the engine");
            assert_eq!(j.submit_at, SimTime::from_secs(5 * i as u64));
            assert_eq!(j.profile.name, "Grep");
        }
    }
}

//! The §V-F multi-job workloads: "we submit 4 jobs of the same benchmark
//! in total to the system, and each job is submitted 5 seconds after the
//! previous job."

use crate::generator::staggered_jobs;
use crate::puma::Puma;
use mapreduce::job::JobSpec;
use simgrid::time::SimDuration;

/// Number of jobs in the paper's concurrent workload.
pub const PAPER_JOB_COUNT: usize = 4;

/// Submission stagger between consecutive jobs.
pub const PAPER_STAGGER: SimDuration = SimDuration(5_000);

/// The paper's concurrent workload for `bench` at a given per-job input
/// size (Figs. 8 and 9 use Grep and InvertedIndex).
pub fn paper_multi_job(bench: Puma, input_mb: f64, num_reduces: usize) -> Vec<JobSpec> {
    staggered_jobs(bench, PAPER_JOB_COUNT, input_mb, num_reduces, PAPER_STAGGER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::time::SimTime;

    #[test]
    fn paper_workload_shape() {
        let jobs = paper_multi_job(Puma::InvertedIndex, 8192.0, 30);
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].submit_at, SimTime::ZERO);
        assert_eq!(jobs[3].submit_at, SimTime::from_secs(15));
        assert!(jobs.iter().all(|j| j.profile.name == "InvertedIndex"));
        assert!(jobs.iter().all(|j| j.input_mb == 8192.0));
    }
}

//! The PUMA benchmark catalog (Ahmad et al., "PUMA: Purdue MapReduce
//! Benchmarks Suite", 2012) — the workloads of the paper's evaluation.
//!
//! We cannot run the actual Java programs on real Wikipedia/Netflix data;
//! what the reproduction needs is each benchmark's **resource signature**
//! (see `DESIGN.md`). The profiles below encode the published qualitative
//! characteristics of each PUMA job:
//!
//! * **shuffle volume** (`map_selectivity`): Grep and the histogram jobs
//!   emit almost nothing; Terasort/RankedInvertedIndex/SelfJoin shuffle
//!   roughly their whole input; WordCount-with-combiner, TermVector and
//!   K-Means sit in between;
//! * **per-task weight**: reduce-heavy jobs carry big sort buffers and
//!   more service threads per JVM, which lowers their thrashing point
//!   (§II-B: "map-heavy jobs have a higher thrashing point than
//!   reduce-heavy jobs"); the numbers are calibrated so the knee lands
//!   near 3–4 slots for reduce-heavy and 7–9 for map-heavy profiles on
//!   the paper's 16-core worker;
//! * **compute intensity** (`map_rate`): text scanning (Grep) streams
//!   fast; K-Means distance computation and TermVector scoring are
//!   CPU-bound and slow per MB.

use mapreduce::job::{JobProfile, JobSpec};
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;

/// Coarse class of a benchmark, per the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobClass {
    /// Tiny shuffle; performance ≈ map throughput.
    MapHeavy,
    /// Moderate shuffle.
    Medium,
    /// Shuffle comparable to the input; the barrier bites.
    ReduceHeavy,
}

/// The thirteen PUMA benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Puma {
    Terasort,
    WordCount,
    Grep,
    InvertedIndex,
    TermVector,
    SequenceCount,
    RankedInvertedIndex,
    HistogramMovies,
    HistogramRatings,
    Classification,
    KMeans,
    SelfJoin,
    AdjacencyList,
}

impl Puma {
    /// Every benchmark, in the order used by the Fig. 3 bar groups.
    pub const ALL: [Puma; 13] = [
        Puma::Terasort,
        Puma::WordCount,
        Puma::Grep,
        Puma::InvertedIndex,
        Puma::TermVector,
        Puma::SequenceCount,
        Puma::RankedInvertedIndex,
        Puma::HistogramMovies,
        Puma::HistogramRatings,
        Puma::Classification,
        Puma::KMeans,
        Puma::SelfJoin,
        Puma::AdjacencyList,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Puma::Terasort => "Terasort",
            Puma::WordCount => "WordCount",
            Puma::Grep => "Grep",
            Puma::InvertedIndex => "InvertedIndex",
            Puma::TermVector => "TermVector",
            Puma::SequenceCount => "SequenceCount",
            Puma::RankedInvertedIndex => "RankedInvertedIndex",
            Puma::HistogramMovies => "HistogramMovies",
            Puma::HistogramRatings => "HistogramRatings",
            Puma::Classification => "Classification",
            Puma::KMeans => "KMeans",
            Puma::SelfJoin => "SelfJoin",
            Puma::AdjacencyList => "AdjacencyList",
        }
    }

    /// Parse a benchmark from its display name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Puma> {
        Puma::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// The paper's coarse classification.
    pub fn class(self) -> JobClass {
        match self {
            Puma::Grep | Puma::HistogramMovies | Puma::HistogramRatings | Puma::Classification => {
                JobClass::MapHeavy
            }
            Puma::WordCount | Puma::TermVector | Puma::KMeans => JobClass::Medium,
            Puma::Terasort
            | Puma::InvertedIndex
            | Puma::SequenceCount
            | Puma::RankedInvertedIndex
            | Puma::SelfJoin
            | Puma::AdjacencyList => JobClass::ReduceHeavy,
        }
    }

    /// Default input size (MB) — 60 GB, within the range of PUMA's
    /// published datasets (30 GB Netflix ratings to 150 GB Wikipedia),
    /// and the default of the Fig. 3 experiments here. Long enough that
    /// the slot manager's adaptation amortises, as in the paper's runs.
    pub fn default_input_mb(self) -> f64 {
        60.0 * 1024.0
    }

    /// The benchmark's resource signature.
    pub fn profile(self) -> JobProfile {
        let (class_cpu, class_threads, class_mem) = match self.class() {
            // light JVMs, late thrashing knee (~8)
            JobClass::MapHeavy => (1.8, 2, 1200.0),
            // knee ~5-6
            JobClass::Medium => (2.8, 3, 1900.0),
            // heavy sort buffers, knee ~3-4
            JobClass::ReduceHeavy => (4.4, 4, 3000.0),
        };
        // Within the reduce-heavy class the map-side weight still varies:
        // Terasort/RankedInvertedIndex maps carry the full sort buffers
        // (knee ≈ 3, the paper's "optimal happens to be the default"),
        // while the index builders are lighter (knee ≈ 4-5, so SMapReduce
        // finds headroom even on reduce-heavy jobs).
        let (class_cpu, class_threads) = match self {
            Puma::InvertedIndex => (3.3, 3),
            Puma::SequenceCount => (3.5, 3),
            Puma::AdjacencyList => (3.4, 3),
            Puma::SelfJoin => (3.9, 3),
            Puma::Terasort | Puma::RankedInvertedIndex => (4.6, 4),
            _ => (class_cpu, class_threads),
        };
        // Per-task input rates reflect real Hadoop 1.x Java tasks on the
        // paper's hardware (whole-job map phases of minutes, not seconds):
        // a 128 MB block takes ~20-45 s of map time depending on compute
        // intensity.
        let (map_rate, map_selectivity) = match self {
            Puma::Terasort => (6.0, 1.0),
            Puma::WordCount => (4.5, 0.22), // combiner collapses counts
            Puma::Grep => (7.0, 0.002),
            Puma::InvertedIndex => (4.2, 0.65),
            Puma::TermVector => (3.4, 0.35),
            Puma::SequenceCount => (3.8, 0.85),
            Puma::RankedInvertedIndex => (5.0, 1.05),
            Puma::HistogramMovies => (5.4, 0.001),
            Puma::HistogramRatings => (5.6, 0.001),
            Puma::Classification => (5.0, 0.008),
            Puma::KMeans => (2.8, 0.05), // distance compute dominates
            Puma::SelfJoin => (5.2, 0.9),
            Puma::AdjacencyList => (4.0, 0.7),
        };
        JobProfile {
            name: self.name().to_string(),
            map_rate,
            map_cpu: class_cpu,
            map_threads: class_threads,
            map_mem: class_mem,
            map_selectivity,
            spill_weight: 0.4,
            sort_rate: 30.0,
            reduce_rate: 24.0,
            reduce_cpu: match self.class() {
                JobClass::MapHeavy => 1.6,
                JobClass::Medium => 2.4,
                JobClass::ReduceHeavy => 3.2,
            },
            reduce_threads: 3,
            reduce_mem: match self.class() {
                JobClass::MapHeavy => 1600.0,
                JobClass::Medium => 2400.0,
                JobClass::ReduceHeavy => 3400.0,
            },
            reduce_selectivity: 1.0,
            shuffle_fetchers: 5,
            shuffle_cpu: 0.6,
            // Reduce-heavy partitions (≈1 GB per reducer at 30 GB input)
            // need multi-pass on-disk merges — per-reducer shuffle ingest
            // is far below line rate, which is what makes over-producing
            // maps genuinely counterproductive for these jobs (§III-B1).
            shuffle_merge_rate: match self.class() {
                JobClass::MapHeavy => 70.0,
                JobClass::Medium => 30.0,
                JobClass::ReduceHeavy => 10.0,
            },
            // §III-B1: T_r2 (no resource sharing with maps) exceeds T_r1.
            shuffle_barrier_boost: match self.class() {
                JobClass::MapHeavy => 1.5,
                JobClass::Medium => 2.5,
                JobClass::ReduceHeavy => 3.0,
            },
        }
        .validated()
    }

    /// Build a [`JobSpec`] for this benchmark.
    pub fn job(self, id: usize, input_mb: f64, num_reduces: usize, submit_at: SimTime) -> JobSpec {
        JobSpec::new(id, self.profile(), input_mb, num_reduces, submit_at)
    }

    /// The paper's standard single-job configuration: default input,
    /// 30 reduce tasks, submitted at t = 0.
    pub fn paper_job(self) -> JobSpec {
        self.job(0, self.default_input_mb(), 30, SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::node::{thrashing_point, NodeSpec};

    #[test]
    fn all_profiles_validate() {
        for p in Puma::ALL {
            let prof = p.profile(); // panics if invalid
            assert_eq!(prof.name, p.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Puma::ALL {
            assert_eq!(Puma::from_name(p.name()), Some(p));
            assert_eq!(Puma::from_name(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Puma::from_name("NotABenchmark"), None);
    }

    #[test]
    fn class_matches_shuffle_volume() {
        for p in Puma::ALL {
            let sel = p.profile().map_selectivity;
            match p.class() {
                JobClass::MapHeavy => assert!(sel < 0.05, "{}: {sel}", p.name()),
                JobClass::Medium => assert!((0.04..0.6).contains(&sel), "{}: {sel}", p.name()),
                JobClass::ReduceHeavy => assert!(sel >= 0.6, "{}: {sel}", p.name()),
            }
        }
    }

    #[test]
    fn thrashing_points_ordered_by_class() {
        // §II-B: map-heavy jobs thrash later than reduce-heavy ones.
        let spec = NodeSpec::paper_worker();
        let knee = |p: Puma| thrashing_point(&spec, p.profile().map_demand(), 16);
        let grep = knee(Puma::Grep);
        let terasort = knee(Puma::Terasort);
        let wordcount = knee(Puma::WordCount);
        assert!(
            grep > wordcount && wordcount > terasort,
            "knees: grep={grep} wordcount={wordcount} terasort={terasort}"
        );
        assert!((3..=5).contains(&terasort), "terasort knee {terasort}");
        assert!(grep >= 7, "grep knee {grep}");
    }

    #[test]
    fn fig1_benchmarks_have_distinct_knees() {
        // Fig. 1 plots Terasort, TermVector and Grep precisely because
        // their thrashing points differ.
        let spec = NodeSpec::paper_worker();
        let knee = |p: Puma| thrashing_point(&spec, p.profile().map_demand(), 16);
        let mut knees = [
            knee(Puma::Terasort),
            knee(Puma::TermVector),
            knee(Puma::Grep),
        ];
        knees.sort_unstable();
        assert!(knees[0] < knees[2], "knees must spread: {knees:?}");
    }

    #[test]
    fn paper_job_defaults() {
        let j = Puma::HistogramRatings.paper_job();
        assert_eq!(j.num_reduces, 30);
        assert!((j.input_mb - 60.0 * 1024.0).abs() < 1e-9);
        assert_eq!(j.submit_at, SimTime::ZERO);
    }

    #[test]
    fn thirteen_distinct_benchmarks() {
        let mut names: Vec<&str> = Puma::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
    }
}

//! # workloads — the PUMA benchmark catalog and workload generators
//!
//! The paper evaluates SMapReduce on the Purdue MapReduce Benchmarks Suite
//! (PUMA). This crate provides the thirteen benchmarks as parametric
//! resource profiles ([`puma::Puma`]) plus the generators for every
//! evaluation workload: single paper-standard jobs, the Fig. 5 slot sweep,
//! the Fig. 6 input-size sweep and the §V-F staggered multi-job mixes.
//!
//! ```
//! use workloads::Puma;
//!
//! let job = Puma::HistogramRatings.paper_job();
//! assert_eq!(job.num_reduces, 30);
//! assert_eq!(Puma::ALL.len(), 13);
//! ```

pub mod generator;
pub mod multijob;
pub mod puma;
pub mod trace;

pub use generator::{input_sweep_gb, map_slot_sweep, sized_job, staggered_jobs};
pub use multijob::paper_multi_job;
pub use puma::{JobClass, Puma};
pub use trace::TraceSpec;

//! The slot manager (§III-B, §IV-A): SMapReduce's decision thread, as a
//! [`SlotPolicy`] plugged into the `mapreduce` engine.
//!
//! Once per period it:
//!
//! 1. waits out the **slow start** (≥ 10 % of maps completed);
//! 2. smooths the heartbeat rates and feeds the **thrashing detector**
//!    the current map processing rate;
//! 3. in the **front stretch**, classifies the balance factor
//!    `f = R_s / R_m` and increments (map-heavy, and only while below the
//!    thrashing ceiling) or decrements (reduce-heavy) the per-tracker map
//!    slot target;
//! 4. in the **tail stretch**, shrinks map slots to what the draining maps
//!    need and grows reduce slots if the per-reduce shuffle volume is small.
//!
//! Targets are uniform across trackers (homogeneous cluster, the paper's
//! stated scope) and delivered to trackers via heartbeat responses; the
//! trackers apply them with the lazy changer.

use crate::audit::{AuditLog, DecisionInputs, DecisionRecord};
use crate::balance::{classify, BalanceVerdict};
use crate::config::SmrConfig;
use crate::slow_start::SlowStartGate;
use crate::tail;
use crate::thrashing::{ThrashVerdict, ThrashingDetector};
use mapreduce::policy::{PolicyContext, PolicyDecisionRecord, SlotDirective, SlotPolicy};
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;
use std::collections::VecDeque;

/// A record of one decision, kept for diagnostics and the ablation
/// experiments' analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    SlowStartHold,
    IncrementMaps { to: usize },
    DecrementMaps { to: usize },
    ThrashingRetreat { to: usize },
    TailSwitch { maps: usize, reduces: usize },
    Hold,
}

impl Decision {
    /// Stable snake_case name (telemetry arg values, log lines).
    pub fn label(&self) -> &'static str {
        match self {
            Decision::SlowStartHold => "slow_start_hold",
            Decision::IncrementMaps { .. } => "increment_maps",
            Decision::DecrementMaps { .. } => "decrement_maps",
            Decision::ThrashingRetreat { .. } => "thrashing_retreat",
            Decision::TailSwitch { .. } => "tail_switch",
            Decision::Hold => "hold",
        }
    }
}

/// SMapReduce's slot manager policy.
pub struct SlotManagerPolicy {
    cfg: SmrConfig,
    gate: SlowStartGate,
    detector: ThrashingDetector,
    /// Uniform per-tracker targets the manager currently wants.
    map_target: Option<usize>,
    reduce_target: Option<usize>,
    last_decision_at: Option<SimTime>,
    /// Per-heartbeat `(time, R_t, R_s)` samples within the balance window.
    rate_window: VecDeque<(SimTime, f64, f64)>,
    /// Signature of the active job mix (total map count is a cheap proxy);
    /// when it changes the detector history is stale.
    workload_sig: Option<(usize, usize)>,
    /// Decision log (bounded use: one entry per period).
    pub decisions: Vec<(SimTime, Decision)>,
    /// Optional rate trace recorded at each decision (diagnostics; off by
    /// default).
    pub trace: Option<Vec<RateTracePoint>>,
    /// Full audit log: every decision with the inputs behind it. Mirrors
    /// into telemetry when the engine attaches a sink.
    pub audit: AuditLog,
}

/// One diagnostics sample: `(now, R_t, R_s, R_m, f)`.
pub type RateTracePoint = (SimTime, f64, f64, f64, f64);

impl SlotManagerPolicy {
    pub fn new(cfg: SmrConfig) -> SlotManagerPolicy {
        cfg.validate();
        SlotManagerPolicy {
            gate: SlowStartGate::new(cfg.slow_start_fraction, cfg.slow_start_enabled),
            detector: ThrashingDetector::new(
                cfg.stabilise,
                cfg.suspect_threshold,
                cfg.healthy_threshold,
                cfg.detector_alpha,
                cfg.suspect_margin,
            ),
            rate_window: VecDeque::new(),
            cfg,
            map_target: None,
            reduce_target: None,
            last_decision_at: None,
            workload_sig: None,
            decisions: Vec::new(),
            trace: None,
            audit: AuditLog::new(),
        }
    }

    /// Paper-default configuration.
    pub fn paper_default() -> SlotManagerPolicy {
        SlotManagerPolicy::new(SmrConfig::default())
    }

    fn due(&self, now: SimTime) -> bool {
        match self.last_decision_at {
            None => true,
            Some(last) => now.since(last) >= self.cfg.period,
        }
    }

    /// Emit uniform directives for every tracker whose targets differ.
    fn directives(&self, ctx: &PolicyContext<'_>) -> Vec<SlotDirective> {
        let (m, r) = (
            self.map_target.expect("targets initialised"),
            self.reduce_target.expect("targets initialised"),
        );
        ctx.trackers
            .iter()
            .filter(|t| t.map_target != m || t.reduce_target != r)
            .map(|t| SlotDirective {
                node: t.node,
                map_slots: m,
                reduce_slots: r,
            })
            .collect()
    }

    fn record(&mut self, now: SimTime, d: Decision, inputs: DecisionInputs) {
        self.decisions.push((now, d));
        self.audit.push(DecisionRecord {
            at: now,
            decision: d,
            inputs,
            map_target: self.map_target.unwrap_or(0),
            reduce_target: self.reduce_target.unwrap_or(0),
            check_pending: self.detector.check_pending(),
            ceiling: self.detector.ceiling(),
            level_rates: self.detector.levels(),
        });
    }

    /// The uniform per-tracker `(map, reduce)` targets the manager
    /// currently wants; `None` before the first decision context.
    pub fn current_targets(&self) -> Option<(usize, usize)> {
        Some((self.map_target?, self.reduce_target?))
    }

    /// Push one heartbeat's rates and return the window means `(rt, rs)`.
    ///
    /// The mean is **time-weighted**: a sample reported at `t_i` is the
    /// aggregate over the stretch since the previous sample, so it is
    /// weighted by that gap (the oldest sample borrows the first gap).
    /// Under uniform spacing this is exactly the arithmetic mean; under
    /// irregular spacing — decision periods straddling workload resets,
    /// or any future variable-cadence caller — a sample's influence stays
    /// proportional to the span of time it actually describes.
    fn window_rates(&mut self, now: SimTime, rt: f64, rs: f64) -> (f64, f64) {
        self.rate_window.push_back((now, rt, rs));
        while let Some(&(t0, _, _)) = self.rate_window.front() {
            if now.since(t0) > self.cfg.balance_window {
                self.rate_window.pop_front();
            } else {
                break;
            }
        }
        if self.rate_window.len() == 1 {
            return (rt, rs);
        }
        let first_gap = self.rate_window[1]
            .0
            .since(self.rate_window[0].0)
            .as_secs_f64();
        let (mut sum_w, mut sum_t, mut sum_s) = (0.0, 0.0, 0.0);
        let mut prev: Option<SimTime> = None;
        for &(t, a, b) in &self.rate_window {
            let w = match prev {
                Some(p) => t.since(p).as_secs_f64(),
                None => first_gap,
            };
            sum_w += w;
            sum_t += a * w;
            sum_s += b * w;
            prev = Some(t);
        }
        if sum_w <= 0.0 {
            // all samples share one timestamp: fall back to the plain mean
            let n = self.rate_window.len() as f64;
            let (t, s) = self
                .rate_window
                .iter()
                .fold((0.0, 0.0), |(a, b), &(_, x, y)| (a + x, b + y));
            return (t / n, s / n);
        }
        (sum_t / sum_w, sum_s / sum_w)
    }

    /// Has the cluster's actual map occupancy settled at the current
    /// target? (Lazy shrinking keeps tasks running past a decrease; rates
    /// measured mid-transition belong to no slot level.)
    fn occupancy_settled(ctx: &PolicyContext<'_>) -> bool {
        let occupied: usize = ctx.trackers.iter().map(|t| t.map_occupied).sum();
        let target: usize = ctx.trackers.iter().map(|t| t.map_target).sum();
        if occupied > target {
            return false; // shrink still draining
        }
        // after a grow, wait until the new slots actually filled (or there
        // is no work left to fill them with)
        let unfillable = ctx.stats.pending_maps == 0;
        unfillable || occupied * 10 >= target * 9
    }
}

/// The manager's mutable run state, as stored in a checkpoint capsule.
/// Configuration (`cfg`, and the `gate` derived from it) is reconstructed
/// when the policy is built, not captured.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManagerState {
    detector: ThrashingDetector,
    map_target: Option<usize>,
    reduce_target: Option<usize>,
    last_decision_at: Option<SimTime>,
    rate_window: VecDeque<(SimTime, f64, f64)>,
    workload_sig: Option<(usize, usize)>,
    decisions: Vec<(SimTime, Decision)>,
    trace: Option<Vec<RateTracePoint>>,
    audit: AuditLog,
}

impl SlotPolicy for SlotManagerPolicy {
    fn name(&self) -> &'static str {
        "SMapReduce"
    }

    fn directive_overhead_ms(&self) -> u64 {
        self.cfg.directive_overhead_ms
    }

    fn attach_telemetry(&mut self, telem: &telemetry::Telemetry) {
        self.audit.set_sink(telem.clone());
    }

    fn decision_records(&self) -> Vec<PolicyDecisionRecord> {
        self.audit
            .records()
            .iter()
            .map(|r| PolicyDecisionRecord {
                at: r.at,
                decision: r.decision.label().to_string(),
                map_target: r.map_target,
                reduce_target: r.reduce_target,
                f: r.inputs.f,
                rs: r.inputs.rs,
                rm: r.inputs.rm,
            })
            .collect()
    }

    fn snapshot_state(&self) -> serde::Value {
        ManagerState {
            detector: self.detector.clone(),
            map_target: self.map_target,
            reduce_target: self.reduce_target,
            last_decision_at: self.last_decision_at,
            rate_window: self.rate_window.clone(),
            workload_sig: self.workload_sig,
            decisions: self.decisions.clone(),
            trace: self.trace.clone(),
            audit: self.audit.clone(),
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        if state.is_null() {
            return Ok(()); // capsule taken before the first decision
        }
        let s = ManagerState::deserialize(state)?;
        self.detector = s.detector;
        self.map_target = s.map_target;
        self.reduce_target = s.reduce_target;
        self.last_decision_at = s.last_decision_at;
        self.rate_window = s.rate_window;
        self.workload_sig = s.workload_sig;
        self.decisions = s.decisions;
        self.trace = s.trace;
        // the restored log carries records only; the telemetry mirror is
        // reattached by the engine via attach_telemetry
        self.audit = s.audit;
        Ok(())
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> Vec<SlotDirective> {
        let stats = ctx.stats;
        let now = ctx.now;

        // initialise targets from the user configuration, like HadoopV1
        let map_target = *self.map_target.get_or_insert(ctx.init_map_slots);
        let reduce_target = *self.reduce_target.get_or_insert(ctx.init_reduce_slots);

        // idle cluster: drift back to the initial configuration so the next
        // job starts from the user's baseline
        if stats.total_maps == 0 {
            self.map_target = Some(ctx.init_map_slots);
            self.reduce_target = Some(ctx.init_reduce_slots);
            self.detector.reset();
            self.rate_window.clear();
            self.workload_sig = None;
            return self.directives(ctx);
        }

        // workload mix changed (job arrived/finished): rate history and
        // per-level baselines mixed two different workloads — drop both
        // and re-learn, holding decisions until the window refills
        let sig = (stats.total_maps, stats.total_reduces);
        if self.workload_sig != Some(sig) {
            if self.workload_sig.is_some() {
                self.detector.reset();
                self.rate_window.clear();
            }
            self.workload_sig = Some(sig);
        }

        // average rates over the balance window every heartbeat, decide
        // only on period boundaries
        let (rt, rs) = self.window_rates(now, stats.map_output_rate, stats.shuffle_rate);
        let window_span = self
            .rate_window
            .front()
            .map(|&(t0, _, _)| now.since(t0))
            .unwrap_or(simgrid::time::SimDuration::ZERO);
        let window_warm = window_span.as_millis() * 2 >= self.cfg.balance_window.as_millis();

        let gate_open = self.gate.open(stats.completed_maps, stats.total_maps);
        let settled = Self::occupancy_settled(ctx);

        // the balance inputs (§IV-A3) are computed up front so every
        // decision — including early exits — audits with the rates it saw
        let rm = if stats.total_reduces == 0 {
            0.0
        } else {
            (stats.shuffling_reduces as f64 / stats.total_reduces as f64) * rt
        };
        let f = (rm > 1e-9).then_some(rs / rm);
        let inputs = DecisionInputs {
            rt,
            rs,
            rm,
            f,
            gate_open,
            occupancy_settled: settled,
            window_warm,
        };

        // thrashing detection (§IV-A2): the detector sees the raw cluster
        // map processing rate every heartbeat (its per-level EWMAs do the
        // smoothing) and a confirmation retreats immediately — holding a
        // thrashing configuration for a full period only loses throughput.
        if self.cfg.detect_thrashing && gate_open {
            if let ThrashVerdict::Confirmed(good) =
                self.detector
                    .observe(map_target, stats.map_input_rate, now, settled)
            {
                let to = good.max(self.cfg.min_map_slots).min(self.cfg.max_map_slots);
                self.map_target = Some(to);
                self.record(now, Decision::ThrashingRetreat { to }, inputs);
                self.last_decision_at = Some(now);
                return self.directives(ctx);
            }
        }

        if !self.due(now) {
            return self.directives(ctx);
        }
        self.last_decision_at = Some(now);

        // slow start (§IV-A1)
        if !gate_open {
            self.record(now, Decision::SlowStartHold, inputs);
            return self.directives(ctx);
        }

        // tail stretch (§III-B3)
        if self.cfg.tail_switching && tail::in_tail_stretch(stats) {
            let workers = ctx.trackers.len();
            let maps = tail::tail_map_target(stats, workers, self.cfg.min_map_slots)
                .min(self.cfg.max_map_slots);
            let reduces = tail::tail_reduce_target(
                stats,
                workers,
                reduce_target,
                self.cfg.max_reduce_slots,
                self.cfg.tail_shuffle_per_reduce_max_mb,
            );
            if maps != map_target || reduces != reduce_target {
                if maps < map_target {
                    self.detector.on_slot_change(map_target, maps, now);
                }
                self.map_target = Some(maps);
                self.reduce_target = Some(reduces);
                self.record(now, Decision::TailSwitch { maps, reduces }, inputs);
            } else {
                self.record(now, Decision::Hold, inputs);
            }
            return self.directives(ctx);
        }

        // front stretch: balance map vs shuffle throughput (§IV-A3).
        // A freshly-cleared window (job arrival/finish) has too little
        // history for a meaningful factor — hold until it warms up.
        if !window_warm {
            self.record(now, Decision::Hold, inputs);
            return self.directives(ctx);
        }
        if let Some(trace) = &mut self.trace {
            trace.push((now, rt, rs, rm, f.unwrap_or(f64::NAN)));
        }
        let verdict = classify(f, self.cfg.f_lower, self.cfg.f_upper);

        match verdict {
            BalanceVerdict::MapHeavy => {
                if self.cfg.detect_thrashing && self.detector.check_pending() {
                    // an earlier increase is still under evaluation
                    // (stabilising or suspected): hold until it resolves
                    self.record(now, Decision::Hold, inputs);
                    return self.directives(ctx);
                }
                let ceiling = if self.cfg.detect_thrashing {
                    self.detector.ceiling().unwrap_or(self.cfg.max_map_slots)
                } else {
                    self.cfg.max_map_slots
                };
                let to = (map_target + 1).min(ceiling).min(self.cfg.max_map_slots);
                if to > map_target {
                    self.detector.on_slot_change(map_target, to, now);
                    self.map_target = Some(to);
                    self.record(now, Decision::IncrementMaps { to }, inputs);
                } else {
                    self.record(now, Decision::Hold, inputs);
                }
            }
            BalanceVerdict::ReduceHeavy => {
                let to = map_target.saturating_sub(1).max(self.cfg.min_map_slots);
                if to < map_target {
                    self.detector.on_slot_change(map_target, to, now);
                    self.map_target = Some(to);
                    self.record(now, Decision::DecrementMaps { to }, inputs);
                } else {
                    self.record(now, Decision::Hold, inputs);
                }
            }
            BalanceVerdict::Balanced | BalanceVerdict::Inconclusive => {
                self.record(now, Decision::Hold, inputs);
            }
        }
        self.directives(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::TrackerSnapshot;
    use mapreduce::stats::ClusterStats;
    use simgrid::cluster::NodeId;

    fn trackers(n: usize, m: usize, r: usize) -> Vec<TrackerSnapshot> {
        (0..n)
            .map(|i| TrackerSnapshot {
                node: NodeId(i),
                cores: 16.0,
                map_target: m,
                map_occupied: m,
                reduce_target: r,
                reduce_occupied: r,
            })
            .collect()
    }

    fn base_stats() -> ClusterStats {
        ClusterStats {
            total_maps: 200,
            completed_maps: 40, // past 10% slow start
            pending_maps: 100,
            running_maps: 60,
            total_reduces: 30,
            running_reduces: 30,
            shuffling_reduces: 30,
            pending_reduces: 0,
            map_input_rate: 500.0,
            map_output_rate: 100.0,
            shuffle_rate: 100.0, // f = 1.0 (> upper): map-heavy
            ..ClusterStats::default()
        }
    }

    /// A policy whose balance window degenerates to the current heartbeat,
    /// so single `decide` calls behave like steady state (the window-warm
    /// gate is exercised separately in `window_needs_history`).
    fn test_policy() -> SlotManagerPolicy {
        SlotManagerPolicy::new(SmrConfig {
            balance_window: simgrid::time::SimDuration::ZERO,
            ..SmrConfig::default()
        })
    }

    fn ctx<'a>(
        now: SimTime,
        stats: &'a ClusterStats,
        tr: &'a [TrackerSnapshot],
    ) -> PolicyContext<'a> {
        PolicyContext {
            now,
            stats,
            trackers: tr,
            init_map_slots: 3,
            init_reduce_slots: 2,
        }
    }

    #[test]
    fn map_heavy_increments_map_slots() {
        let mut p = test_policy();
        let stats = base_stats();
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert_eq!(ds.len(), 4);
        assert!(ds.iter().all(|d| d.map_slots == 4 && d.reduce_slots == 2));
        assert!(matches!(
            p.decisions.last(),
            Some((_, Decision::IncrementMaps { to: 4 }))
        ));
    }

    #[test]
    fn audit_log_captures_decision_inputs() {
        let mut p = test_policy();
        let sink = telemetry::Telemetry::with_capacity(16, 16);
        p.attach_telemetry(&sink);
        let stats = base_stats();
        let tr = trackers(4, 3, 2);
        let _ = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        let recs = p.audit.records();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert!(matches!(r.decision, Decision::IncrementMaps { to: 4 }));
        assert!(r.inputs.f.is_some(), "balance factor recorded");
        assert!(r.inputs.rs > 0.0 && r.inputs.rm > 0.0);
        assert!(r.inputs.gate_open && r.inputs.occupancy_settled);
        assert_eq!(r.map_target, 4, "target after the decision");
        let json = sink.chrome_trace().unwrap();
        assert!(json.contains("slot_decision"));
        assert!(json.contains("\"Rm\"") && json.contains("\"Rs\""));
    }

    #[test]
    fn reduce_heavy_decrements_map_slots() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.shuffle_rate = 20.0; // f = 0.2 < lower
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert!(!ds.is_empty(), "decrement must emit directives");
        assert!(ds.iter().all(|d| d.map_slots == 2));
    }

    #[test]
    fn balanced_band_holds() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.shuffle_rate = 70.0; // f = 0.7 in [0.55, 0.88]
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert!(ds.is_empty(), "balanced: no directives");
    }

    #[test]
    fn slow_start_holds_early() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.completed_maps = 5; // 2.5% < 10%
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(6), &stats, &tr));
        assert!(ds.is_empty());
        assert!(matches!(
            p.decisions.last(),
            Some((_, Decision::SlowStartHold))
        ));
    }

    #[test]
    fn disabled_slow_start_acts_early() {
        let mut p = SlotManagerPolicy::new(SmrConfig {
            balance_window: simgrid::time::SimDuration::ZERO,
            ..SmrConfig::without_slow_start()
        });
        let mut stats = base_stats();
        stats.completed_maps = 5;
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(6), &stats, &tr));
        assert!(!ds.is_empty(), "no gate: acts on the early (noisy) rates");
    }

    #[test]
    fn period_gating_between_decisions() {
        let mut p = test_policy();
        let stats = base_stats();
        let tr = trackers(2, 3, 2);
        let d1 = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert!(!d1.is_empty());
        // 3s later: not due; directives still pushed for stragglers whose
        // snapshot differs, but target unchanged (4)
        let tr_now = trackers(2, 4, 2);
        let d2 = p.decide(&ctx(SimTime::from_secs(33), &stats, &tr_now));
        assert!(d2.is_empty(), "no new decision inside the period");
        // after a full period: next increment
        let d3 = p.decide(&ctx(SimTime::from_secs(36), &stats, &tr_now));
        assert!(d3.iter().all(|d| d.map_slots == 5));
    }

    #[test]
    fn thrashing_confirmation_retreats_and_caps() {
        let cfg = SmrConfig {
            stabilise: simgrid::time::SimDuration::ZERO, // compare immediately
            balance_window: simgrid::time::SimDuration::ZERO,
            ..SmrConfig::default()
        };
        let mut p = SlotManagerPolicy::new(cfg);
        let mut stats = base_stats();
        let tr3 = trackers(2, 3, 2);
        // build baseline at 3 slots, then increment to 4
        stats.map_input_rate = 500.0;
        let _ = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr3));
        assert_eq!(p.map_target, Some(4));
        // rate falls at 4 slots: two consecutive suspicions confirm
        let tr4 = trackers(2, 4, 2);
        stats.map_input_rate = 100.0;
        let _ = p.decide(&ctx(SimTime::from_secs(36), &stats, &tr4));
        let _ = p.decide(&ctx(SimTime::from_secs(42), &stats, &tr4));
        let _ = p.decide(&ctx(SimTime::from_secs(48), &stats, &tr4));
        assert!(
            p.decisions
                .iter()
                .any(|(_, d)| matches!(d, Decision::ThrashingRetreat { to: 3 })),
            "decisions: {:?}",
            p.decisions
        );
        assert_eq!(p.map_target, Some(3));
        // further map-heavy signals cannot push past the ceiling
        stats.map_input_rate = 500.0;
        let tr3b = trackers(2, 3, 2);
        let _ = p.decide(&ctx(SimTime::from_secs(60), &stats, &tr3b));
        assert_eq!(p.map_target, Some(3), "ceiling holds");
    }

    #[test]
    fn without_detection_increments_unbounded_to_cap() {
        let mut p = SlotManagerPolicy::new(SmrConfig {
            balance_window: simgrid::time::SimDuration::ZERO,
            ..SmrConfig::without_thrashing_detection()
        });
        let stats = base_stats();
        let mut t = 30u64;
        loop {
            let m = p.map_target.unwrap_or(3);
            let tr = trackers(2, m, 2);
            let _ = p.decide(&ctx(SimTime::from_secs(t), &stats, &tr));
            t += 6;
            if t > 300 {
                break;
            }
        }
        assert_eq!(
            p.map_target,
            Some(SmrConfig::default().max_map_slots),
            "no detector: climbs to the configured cap even as rates fall"
        );
    }

    #[test]
    fn tail_switches_slots() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.pending_maps = 0;
        stats.running_maps = 4;
        stats.pending_reduces = 10;
        stats.running_reduces = 20;
        stats.est_shuffle_per_reduce_mb = 10.0;
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(60), &stats, &tr));
        assert!(!ds.is_empty());
        // ceil(4 running maps / 4 workers) = 1 map slot; reduces grow to 3
        assert!(ds.iter().all(|d| d.map_slots == 1 && d.reduce_slots == 3));
    }

    #[test]
    fn tail_jam_guard_blocks_reduce_growth() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.pending_maps = 0;
        stats.running_maps = 0;
        stats.pending_reduces = 10;
        stats.est_shuffle_per_reduce_mb = 5000.0;
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(60), &stats, &tr));
        assert!(ds.iter().all(|d| d.reduce_slots == 2), "guard holds");
    }

    #[test]
    fn idle_cluster_resets_to_init() {
        let mut p = test_policy();
        // drive a change first
        let stats = base_stats();
        let tr = trackers(2, 3, 2);
        let _ = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert_eq!(p.map_target, Some(4));
        // all jobs done
        let idle = ClusterStats::default();
        let tr4 = trackers(2, 4, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(90), &idle, &tr4));
        assert!(ds.iter().all(|d| d.map_slots == 3 && d.reduce_slots == 2));
        assert_eq!(p.map_target, Some(3));
    }

    #[test]
    fn overhead_is_configured() {
        let p = test_policy();
        assert_eq!(
            p.directive_overhead_ms(),
            SmrConfig::default().directive_overhead_ms
        );
        assert_eq!(p.name(), "SMapReduce");
    }

    #[test]
    fn window_needs_history_before_balance_decisions() {
        // default (48 s) window: a cold window must hold even on a clear
        // map-heavy signal
        let mut p = SlotManagerPolicy::paper_default();
        let stats = base_stats();
        let tr = trackers(4, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert!(ds.is_empty(), "cold window: hold");
        // feed heartbeats until the window warms, then the increment fires
        let mut t = 33;
        let mut acted = false;
        while t < 120 {
            let ds = p.decide(&ctx(SimTime::from_secs(t), &stats, &tr));
            if !ds.is_empty() {
                assert!(ds.iter().all(|d| d.map_slots == 4));
                acted = true;
                break;
            }
            t += 3;
        }
        assert!(acted, "warm window must allow the decision");
    }

    #[test]
    fn snapshot_restore_round_trips_manager_state() {
        let mut p = test_policy();
        let stats = base_stats();
        let tr = trackers(4, 3, 2);
        let _ = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        let _ = p.decide(&ctx(SimTime::from_secs(36), &stats, &tr));
        let snap = p.snapshot_state();

        let mut q = test_policy();
        q.restore_state(&snap).unwrap();
        assert_eq!(q.current_targets(), p.current_targets());
        assert_eq!(q.decisions, p.decisions);
        assert_eq!(q.audit.records(), p.audit.records());
        // both continue identically from the restored state
        let tr_now = trackers(4, p.map_target.unwrap(), 2);
        let a = p.decide(&ctx(SimTime::from_secs(42), &stats, &tr_now));
        let b = q.decide(&ctx(SimTime::from_secs(42), &stats, &tr_now));
        assert_eq!(a, b);
        assert_eq!(p.decisions, q.decisions);
    }

    #[test]
    fn restore_null_state_is_fresh() {
        let mut p = test_policy();
        p.restore_state(&serde::Value::Null).unwrap();
        assert_eq!(p.current_targets(), None);
        assert!(p.decisions.is_empty());
    }

    #[test]
    fn inconclusive_without_reduces_running() {
        let mut p = test_policy();
        let mut stats = base_stats();
        stats.running_reduces = 0;
        stats.shuffling_reduces = 0; // R_m = 0 -> f undefined
        let tr = trackers(2, 3, 2);
        let ds = p.decide(&ctx(SimTime::from_secs(30), &stats, &tr));
        assert!(ds.is_empty());
        assert!(matches!(p.decisions.last(), Some((_, Decision::Hold))));
    }
}

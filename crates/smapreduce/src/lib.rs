//! # smapreduce — dynamic working-slot management (the paper's contribution)
//!
//! SMapReduce (Liang & Lau, IPPS 2015) adds a *slot manager* to the
//! slot-based Hadoop 1.x design: instead of statically configured map and
//! reduce slot counts, the job tracker continuously decides the proper
//! number of concurrent tasks per node from runtime statistics, balancing
//! map throughput against shuffle throughput across the map→reduce
//! synchronisation barrier, while detecting (and retreating from) the
//! thrashing point.
//!
//! This crate implements that slot manager as a
//! [`mapreduce::policy::SlotPolicy`]:
//!
//! * [`balance`] — the balance factor `f = R_s/R_m` and the §III-B1 time
//!   model;
//! * [`thrashing`] — the suspected→confirmed thrashing state machine with
//!   the post-change stabilisation window;
//! * [`slow_start`] — the 10 % slow-start gate;
//! * [`tail`] — tail-stretch map→reduce slot switching with the
//!   network-jam guard;
//! * [`slot_manager`] — the decision loop tying them together;
//! * [`audit`] — the per-decision audit log (inputs + verdicts), mirrored
//!   into telemetry traces when a sink is attached;
//! * [`hetero`] — the §VII future-work extension: capacity-proportional
//!   targets for heterogeneous clusters.
//!
//! The *lazy* slot changer the paper pairs with the manager lives with the
//! task-tracker model, in [`mapreduce::slots`], because HadoopV1's trackers
//! host that mechanism.
//!
//! ```
//! use mapreduce::{Engine, EngineConfig, JobProfile, JobSpec};
//! use smapreduce::SlotManagerPolicy;
//! use simgrid::SimTime;
//!
//! let cfg = EngineConfig::small_test(4, 7);
//! let job = JobSpec::new(0, JobProfile::synthetic_map_heavy(), 2048.0, 8, SimTime::ZERO);
//! let mut policy = SlotManagerPolicy::paper_default();
//! let report = Engine::new(cfg).run(vec![job], &mut policy).unwrap();
//! assert!(report.slot_changes > 0, "the slot manager adapts at runtime");
//! ```

pub mod audit;
pub mod balance;
pub mod config;
pub mod hetero;
pub mod slot_manager;
pub mod slow_start;
pub mod tail;
pub mod thrashing;

pub use audit::{AuditLog, DecisionInputs, DecisionRecord};
pub use balance::{classify, BalanceVerdict};
pub use config::SmrConfig;
pub use hetero::HeteroSlotManagerPolicy;
pub use slot_manager::{Decision, SlotManagerPolicy};
pub use slow_start::SlowStartGate;
pub use thrashing::{ThrashVerdict, ThrashingDetector};

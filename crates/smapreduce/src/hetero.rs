//! Heterogeneous-cluster extension (the paper's §VII future work).
//!
//! "Currently, SMapReduce only considers the case where the cluster is
//! homogeneous … We are working to extend SMapReduce to the heterogeneous
//! environment, which may be a common setting in some small clusters."
//!
//! The uniform slot manager issues one slot target for every tracker; on a
//! mixed cluster that is wrong in both directions — the target that
//! saturates the strong machines thrashes the weak ones, and the target
//! that is safe for the weak ones starves the strong ones. (The detector
//! sees only the *aggregate* map rate, so climbing keeps paying off on the
//! strong half while quietly degrading the weak half.)
//!
//! [`HeteroSlotManagerPolicy`] keeps the paper's decision loop intact —
//! balance factor, thrashing detection, slow start, tail switching — and
//! adds one step: the uniform target is interpreted as *per reference
//! core* and scaled to each tracker's capacity:
//!
//! ```text
//! target_i = clamp(round(uniform_target × cores_i / reference_cores), 1, …)
//! ```
//!
//! so an 8-core node gets half the slots of a 16-core node. This is the
//! minimal capacity-proportional extension; per-node detectors would be
//! the next step.

use crate::config::SmrConfig;
use crate::slot_manager::SlotManagerPolicy;
use mapreduce::policy::{PolicyContext, SlotDirective, SlotPolicy};

/// Capacity-proportional wrapper around the paper's slot manager.
pub struct HeteroSlotManagerPolicy {
    inner: SlotManagerPolicy,
    /// Core count the uniform target is expressed against (the strongest
    /// machine class; defaults to the testbed's 16).
    reference_cores: f64,
}

impl HeteroSlotManagerPolicy {
    pub fn new(cfg: SmrConfig, reference_cores: f64) -> HeteroSlotManagerPolicy {
        assert!(reference_cores > 0.0);
        HeteroSlotManagerPolicy {
            inner: SlotManagerPolicy::new(cfg),
            reference_cores,
        }
    }

    /// Default configuration against the paper's 16-core workers.
    pub fn paper_default() -> HeteroSlotManagerPolicy {
        HeteroSlotManagerPolicy::new(SmrConfig::default(), 16.0)
    }

    /// Scale a uniform target to a tracker with `cores` cores.
    pub fn scaled(&self, uniform: usize, cores: f64) -> usize {
        let t = (uniform as f64 * cores / self.reference_cores).round() as usize;
        t.max(1)
    }

    /// Access the wrapped uniform manager (decision log, trace).
    pub fn inner(&self) -> &SlotManagerPolicy {
        &self.inner
    }
}

impl SlotPolicy for HeteroSlotManagerPolicy {
    fn name(&self) -> &'static str {
        "SMapReduce-hetero"
    }

    fn directive_overhead_ms(&self) -> u64 {
        self.inner.directive_overhead_ms()
    }

    fn attach_telemetry(&mut self, telem: &telemetry::Telemetry) {
        self.inner.attach_telemetry(telem);
    }

    // reference_cores is configuration; the mutable state is all the
    // wrapped uniform manager's
    fn snapshot_state(&self) -> serde::Value {
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.inner.restore_state(state)
    }

    fn decide(&mut self, ctx: &PolicyContext<'_>) -> Vec<SlotDirective> {
        // run the paper's decision loop; its own (uniform) directives are
        // discarded in favour of the capacity-scaled ones
        let _ = self.inner.decide(ctx);
        let Some((map_uniform, reduce_uniform)) = self.inner.current_targets() else {
            return Vec::new();
        };
        ctx.trackers
            .iter()
            .filter_map(|t| {
                let map_slots = self.scaled(map_uniform, t.cores);
                let reduce_slots = self.scaled(reduce_uniform, t.cores);
                (t.map_target != map_slots || t.reduce_target != reduce_slots).then_some(
                    SlotDirective {
                        node: t.node,
                        map_slots,
                        reduce_slots,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::policy::TrackerSnapshot;
    use mapreduce::stats::ClusterStats;
    use simgrid::cluster::NodeId;
    use simgrid::time::{SimDuration, SimTime};

    fn policy() -> HeteroSlotManagerPolicy {
        HeteroSlotManagerPolicy::new(
            SmrConfig {
                balance_window: SimDuration::ZERO,
                ..SmrConfig::default()
            },
            16.0,
        )
    }

    #[test]
    fn scaling_is_capacity_proportional() {
        let p = policy();
        assert_eq!(p.scaled(4, 16.0), 4);
        assert_eq!(p.scaled(4, 8.0), 2);
        assert_eq!(p.scaled(6, 8.0), 3);
        assert_eq!(p.scaled(3, 8.0), 2); // rounds
        assert_eq!(p.scaled(1, 4.0), 1); // floor at one slot
    }

    fn mixed_trackers() -> Vec<TrackerSnapshot> {
        // two 16-core and two 8-core trackers, all at the initial 3/2
        (0..4)
            .map(|i| TrackerSnapshot {
                node: NodeId(i),
                cores: if i < 2 { 16.0 } else { 8.0 },
                map_target: 3,
                map_occupied: 3,
                reduce_target: 2,
                reduce_occupied: 2,
            })
            .collect()
    }

    #[test]
    fn weak_nodes_get_proportionally_fewer_slots() {
        let mut p = policy();
        // a clear map-heavy signal past slow start
        let stats = ClusterStats {
            total_maps: 200,
            completed_maps: 40,
            pending_maps: 100,
            running_maps: 60,
            total_reduces: 30,
            running_reduces: 30,
            shuffling_reduces: 30,
            map_input_rate: 500.0,
            map_output_rate: 100.0,
            shuffle_rate: 100.0,
            ..ClusterStats::default()
        };
        let tr = mixed_trackers();
        let ctx = PolicyContext {
            now: SimTime::from_secs(30),
            stats: &stats,
            trackers: &tr,
            init_map_slots: 3,
            init_reduce_slots: 2,
        };
        let ds = p.decide(&ctx);
        // uniform target went 3 -> 4; strong nodes get 4, weak get 2
        let by_node = |n: usize| ds.iter().find(|d| d.node == NodeId(n)).expect("directive");
        assert_eq!(by_node(0).map_slots, 4);
        assert_eq!(by_node(1).map_slots, 4);
        assert_eq!(by_node(2).map_slots, 2);
        assert_eq!(by_node(3).map_slots, 2);
        assert_eq!(by_node(2).reduce_slots, 1);
    }

    #[test]
    fn no_targets_before_first_decision_context() {
        let p = policy();
        assert_eq!(p.name(), "SMapReduce-hetero");
        assert_eq!(
            p.directive_overhead_ms(),
            SmrConfig::default().directive_overhead_ms
        );
    }

    #[test]
    #[should_panic]
    fn zero_reference_cores_rejected() {
        let _ = HeteroSlotManagerPolicy::new(SmrConfig::default(), 0.0);
    }
}

//! The slow-start gate (§IV-A1).
//!
//! Right after submission the statistics flowing back from the trackers are
//! not "substantive" — e.g. the shuffle rate is zero while map output is
//! already non-zero, which would misclassify any job as reduce-heavy. The
//! slot manager therefore stays inert until a configured fraction of the
//! map tasks (10 % by default) have completed.

use serde::{Deserialize, Serialize};

/// Gate that opens once enough of the map work has finished.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SlowStartGate {
    fraction: f64,
    enabled: bool,
}

impl SlowStartGate {
    pub fn new(fraction: f64, enabled: bool) -> SlowStartGate {
        assert!((0.0..=1.0).contains(&fraction));
        SlowStartGate { fraction, enabled }
    }

    /// May the slot manager act, given current map completion?
    pub fn open(&self, completed_maps: usize, total_maps: usize) -> bool {
        if !self.enabled {
            return true;
        }
        if total_maps == 0 {
            return false; // nothing running: no decisions either
        }
        completed_maps as f64 / total_maps as f64 >= self.fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_opens_at_fraction() {
        let g = SlowStartGate::new(0.10, true);
        assert!(!g.open(0, 100));
        assert!(!g.open(9, 100));
        assert!(g.open(10, 100));
        assert!(g.open(100, 100));
    }

    #[test]
    fn disabled_gate_is_always_open() {
        let g = SlowStartGate::new(0.10, false);
        assert!(g.open(0, 100));
        assert!(g.open(0, 0));
    }

    #[test]
    fn no_maps_keeps_gate_closed() {
        let g = SlowStartGate::new(0.10, true);
        assert!(!g.open(0, 0));
    }

    #[test]
    fn zero_fraction_opens_immediately_with_work() {
        let g = SlowStartGate::new(0.0, true);
        assert!(g.open(0, 10));
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_rejected() {
        let _ = SlowStartGate::new(1.5, true);
    }
}

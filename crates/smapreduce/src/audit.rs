//! Decision audit log: every slot-manager verdict with the inputs that
//! produced it.
//!
//! The paper's evaluation reasons about *why* the manager moved — which
//! balance factor it saw, whether the slow-start gate was open, what the
//! thrashing detector believed about each slot level. [`AuditLog`] captures
//! exactly that: one [`DecisionRecord`] per decision, holding the balance
//! factor `f = R_s / R_m`, the window-averaged rates, the per-level EWMA
//! estimates, and the gating flags. Records are kept in memory for
//! programmatic analysis and, when a telemetry sink is attached, mirrored
//! as `audit` instants into the Chrome trace so they line up with the
//! engine's tick spans in Perfetto.

use crate::slot_manager::Decision;
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;

/// The measured inputs a decision was based on. `Copy` so call sites can
/// assemble it once and hand it to every decision branch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionInputs {
    /// Window-averaged total map output rate `R_t` (MB/s).
    pub rt: f64,
    /// Window-averaged shuffle rate `R_s` (MB/s).
    pub rs: f64,
    /// Required shuffle rate `R_m` (MB/s), §IV-A3's
    /// `(shuffling / total) · R_t`.
    pub rm: f64,
    /// Balance factor `f = R_s / R_m`; `None` when `R_m ≈ 0` (no reduces
    /// shuffling yet).
    pub f: Option<f64>,
    /// Slow-start gate state (§IV-A1).
    pub gate_open: bool,
    /// Whether actual occupancy had settled at the target (lazy shrinking
    /// makes mid-transition rates meaningless).
    pub occupancy_settled: bool,
    /// Whether the balance window held enough history to act.
    pub window_warm: bool,
}

/// One audited decision: verdict plus inputs plus detector state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    pub at: SimTime,
    pub decision: Decision,
    pub inputs: DecisionInputs,
    /// Uniform per-tracker map target *after* the decision applied.
    pub map_target: usize,
    /// Uniform per-tracker reduce target *after* the decision applied.
    pub reduce_target: usize,
    /// True while a slot increase is still under thrashing evaluation.
    pub check_pending: bool,
    /// Detector ceiling, if thrashing was ever confirmed.
    pub ceiling: Option<usize>,
    /// Per-slot-level stable rate estimates `(slots, MB/s)` the detector
    /// held at decision time.
    pub level_rates: Vec<(usize, f64)>,
}

/// Append-only decision log with an optional telemetry mirror.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    records: Vec<DecisionRecord>,
    sink: telemetry::Telemetry,
}

impl AuditLog {
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Mirror all subsequent records to `sink` as `audit` instants.
    pub fn set_sink(&mut self, sink: telemetry::Telemetry) {
        self.sink = sink;
    }

    pub fn push(&mut self, r: DecisionRecord) {
        self.mirror(&r);
        self.records.push(r);
    }

    fn mirror(&self, r: &DecisionRecord) {
        if !self.sink.is_enabled() {
            return;
        }
        use telemetry::ArgValue as V;
        let args = [
            ("decision", V::Str(r.decision.label())),
            ("f", V::F64(r.inputs.f.unwrap_or(f64::NAN))),
            ("Rs", V::F64(r.inputs.rs)),
            ("Rm", V::F64(r.inputs.rm)),
            ("Rt", V::F64(r.inputs.rt)),
            ("map_target", V::U64(r.map_target as u64)),
            ("reduce_target", V::U64(r.reduce_target as u64)),
            ("gate_open", V::Bool(r.inputs.gate_open)),
            ("occupancy_settled", V::Bool(r.inputs.occupancy_settled)),
            ("window_warm", V::Bool(r.inputs.window_warm)),
            ("check_pending", V::Bool(r.check_pending)),
            ("ceiling", V::I64(r.ceiling.map(|c| c as i64).unwrap_or(-1))),
        ];
        self.sink
            .instant("audit", "slot_decision", r.at.as_millis(), &args);
    }

    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

// A capsule carries the records only; the telemetry mirror is a live handle
// that the owner reattaches after restore (see `AuditLog::set_sink`).
impl Serialize for AuditLog {
    fn to_value(&self) -> serde::Value {
        self.records.to_value()
    }
}

impl Deserialize for AuditLog {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(AuditLog {
            records: Vec::<DecisionRecord>::deserialize(v)?,
            sink: telemetry::Telemetry::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: u64, decision: Decision) -> DecisionRecord {
        DecisionRecord {
            at: SimTime::from_secs(at),
            decision,
            inputs: DecisionInputs {
                rt: 100.0,
                rs: 80.0,
                rm: 90.0,
                f: Some(80.0 / 90.0),
                gate_open: true,
                occupancy_settled: true,
                window_warm: true,
            },
            map_target: 4,
            reduce_target: 2,
            check_pending: false,
            ceiling: None,
            level_rates: vec![(3, 95.0)],
        }
    }

    #[test]
    fn records_accumulate() {
        let mut log = AuditLog::new();
        assert!(log.is_empty());
        log.push(record(10, Decision::IncrementMaps { to: 4 }));
        log.push(record(16, Decision::Hold));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].map_target, 4);
    }

    #[test]
    fn sink_sees_decisions_with_inputs() {
        let sink = telemetry::Telemetry::with_capacity(8, 8);
        let mut log = AuditLog::new();
        log.set_sink(sink.clone());
        log.push(record(10, Decision::IncrementMaps { to: 4 }));
        assert_eq!(sink.instant_count(), 1);
        let json = sink.chrome_trace().unwrap();
        assert!(json.contains("slot_decision"));
        assert!(json.contains("\"Rs\""));
        assert!(json.contains("\"Rm\""));
        assert!(json.contains("\"f\""));
        assert!(json.contains("increment_maps"));
    }

    #[test]
    fn record_round_trips_through_serde() {
        let r = record(
            10,
            Decision::TailSwitch {
                maps: 1,
                reduces: 3,
            },
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: DecisionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

//! Thrashing detection (§III-B2, §IV-A2).
//!
//! For every per-tracker map-slot count the detector keeps the stable
//! average map processing rate observed at that count. After the manager
//! *increases* the slot count, the rate is known to dip briefly, so
//! observations inside a stabilisation window are discarded. Once stable,
//! if the rate at the new count is below the recorded rate of the previous
//! count the state is marked *suspected*; a configurable number of
//! consecutive suspicions confirms thrashing, the manager steps back to the
//! previous count and a **ceiling** prevents climbing past it again.

use serde::{Deserialize, Serialize};
use simgrid::metrics::Ewma;
use simgrid::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Outcome of feeding one observation to the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrashVerdict {
    /// Nothing learned (window not stable, or no previous level to compare).
    Inconclusive,
    /// Rate at the new level held up: the increase is accepted.
    Healthy,
    /// Rate dropped vs the previous level; within the grace chances.
    Suspected,
    /// Confirmed: the contained value is the last *good* slot count — the
    /// ceiling the manager must retreat to.
    Confirmed(usize),
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PendingCheck {
    from: usize,
    to: usize,
    since: SimTime,
}

/// The thrashing detector state machine.
///
/// ```
/// use smapreduce::thrashing::{ThrashingDetector, ThrashVerdict};
/// use simgrid::time::{SimDuration, SimTime};
///
/// let mut d = ThrashingDetector::new(SimDuration::from_secs(4), 2, 1, 1.0, 1.0);
/// let t = |s| SimTime::from_secs(s);
/// d.observe(3, 100.0, t(0), true);          // baseline at 3 slots
/// d.on_slot_change(3, 4, t(6));             // manager increments
/// d.observe(4, 80.0, t(8), true);           // still stabilising: ignored
/// assert_eq!(d.observe(4, 80.0, t(12), true), ThrashVerdict::Suspected);
/// assert_eq!(d.observe(4, 75.0, t(18), true), ThrashVerdict::Confirmed(3));
/// assert_eq!(d.ceiling(), Some(3));         // never climb past 3 again
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrashingDetector {
    stabilise: SimDuration,
    threshold: u32,
    healthy_threshold: u32,
    alpha: f64,
    /// Rate ratio below which an observation counts as suspected; slightly
    /// under 1.0 so measurement noise alone does not trigger.
    margin: f64,
    /// Stable mean map rate per slot count.
    rate_by_slots: BTreeMap<usize, Ewma>,
    pending: Option<PendingCheck>,
    suspected: u32,
    healthy_streak: u32,
    ceiling: Option<usize>,
    /// When the last recorded observation arrived, and the typical gap
    /// between recorded observations. Under adaptive stepping the manager
    /// samples at irregular sim-time intervals, so each observation is
    /// weighted by the span it actually covers (see [`Self::record`]).
    last_obs_at: Option<SimTime>,
    mean_gap: Ewma,
}

impl ThrashingDetector {
    pub fn new(
        stabilise: SimDuration,
        threshold: u32,
        healthy_threshold: u32,
        alpha: f64,
        margin: f64,
    ) -> ThrashingDetector {
        assert!(threshold >= 1);
        assert!(healthy_threshold >= 1);
        assert!(margin > 0.0 && margin <= 1.0, "margin in (0,1]");
        ThrashingDetector {
            stabilise,
            threshold,
            healthy_threshold,
            alpha,
            margin,
            rate_by_slots: BTreeMap::new(),
            pending: None,
            suspected: 0,
            healthy_streak: 0,
            ceiling: None,
            last_obs_at: None,
            mean_gap: Ewma::new(0.3),
        }
    }

    /// The maximum slot count the manager may use, if thrashing was
    /// confirmed.
    pub fn ceiling(&self) -> Option<usize> {
        self.ceiling
    }

    /// True while an increase is under evaluation (stabilising or within
    /// its grace chances). The manager must not increase further until the
    /// check resolves, or no level would ever accumulate a stable rate.
    pub fn check_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Forget everything (the active job mix changed, so past rates are no
    /// longer comparable).
    pub fn reset(&mut self) {
        self.rate_by_slots.clear();
        self.pending = None;
        self.suspected = 0;
        self.healthy_streak = 0;
        self.ceiling = None;
        self.last_obs_at = None;
        self.mean_gap.reset();
    }

    /// Inform the detector of a slot-target change. Only increases arm a
    /// thrashing check; a decrease cancels any pending check (the paper
    /// compares rates only when the count was incremented).
    pub fn on_slot_change(&mut self, from: usize, to: usize, now: SimTime) {
        if to > from {
            self.pending = Some(PendingCheck {
                from,
                to,
                since: now,
            });
        } else {
            self.pending = None;
        }
        self.suspected = 0;
        self.healthy_streak = 0;
    }

    /// Feed the current cluster map processing rate observed while running
    /// with `slots` map slots per tracker. `settled` must be false while
    /// the trackers' actual occupancy still differs from the target (lazy
    /// shrinking can take a whole task duration): rates measured mid-
    /// transition belong to no level and would poison the baselines.
    pub fn observe(
        &mut self,
        slots: usize,
        rate: f64,
        now: SimTime,
        settled: bool,
    ) -> ThrashVerdict {
        if !settled {
            return ThrashVerdict::Inconclusive;
        }
        match self.pending {
            Some(p) if p.to == slots => {
                if now.since(p.since) < self.stabilise {
                    // §IV-A2: the rate right after a change always dips;
                    // comparing now would "almost always give the result of
                    // the occurrence of thrashing".
                    return ThrashVerdict::Inconclusive;
                }
                let prev = self.rate_by_slots.get(&p.from).and_then(|e| e.value());
                self.record(slots, rate, now);
                let Some(prev_rate) = prev else {
                    self.pending = None;
                    return ThrashVerdict::Inconclusive;
                };
                // compare the *smoothed* estimate at the new level against
                // the previous level's stable estimate
                let now_rate = self
                    .rate_at(slots)
                    .expect("just recorded an observation at this level");
                if now_rate < prev_rate * self.margin {
                    self.suspected += 1;
                    self.healthy_streak = 0;
                    if self.suspected >= self.threshold {
                        self.ceiling = Some(p.from);
                        self.pending = None;
                        self.suspected = 0;
                        // the poisoned level's estimate would bias future
                        // comparisons made after the retreat
                        self.rate_by_slots.remove(&slots);
                        return ThrashVerdict::Confirmed(p.from);
                    }
                    ThrashVerdict::Suspected
                } else {
                    self.suspected = 0;
                    self.healthy_streak += 1;
                    if self.healthy_streak >= self.healthy_threshold {
                        self.pending = None;
                        self.healthy_streak = 0;
                        ThrashVerdict::Healthy
                    } else {
                        ThrashVerdict::Inconclusive
                    }
                }
            }
            _ => {
                // steady state at some level: keep its estimate fresh
                self.record(slots, rate, now);
                ThrashVerdict::Inconclusive
            }
        }
    }

    /// Fold one observation into the level's estimate, weighted by how
    /// much sim time it covers. Fixed-tick stepping samples on a uniform
    /// grid (every gap equals the mean, weight 1, plain EWMA); adaptive
    /// stepping samples wherever events land, so a sample arriving after a
    /// long quiet stretch speaks for that whole stretch and a burst of
    /// near-coincident samples must not triple-count one instant. The
    /// weight is clamped so a single outlier gap cannot erase or freeze
    /// the estimate.
    fn record(&mut self, slots: usize, rate: f64, now: SimTime) {
        let weight = match self.last_obs_at {
            Some(prev) => {
                let gap = now.since(prev).as_secs_f64();
                let mean = self.mean_gap.observe(gap);
                if mean > 0.0 {
                    (gap / mean).clamp(0.25, 4.0)
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        self.last_obs_at = Some(now);
        self.rate_by_slots
            .entry(slots)
            .or_insert_with(|| Ewma::new(self.alpha))
            .observe_weighted(rate, weight);
    }

    /// Stable rate estimate for a slot count, if any (for diagnostics).
    pub fn rate_at(&self, slots: usize) -> Option<f64> {
        self.rate_by_slots.get(&slots).and_then(|e| e.value())
    }

    /// All per-level stable rate estimates `(slots, rate)`, ascending by
    /// slot count (for the decision audit log).
    pub fn levels(&self) -> Vec<(usize, f64)> {
        self.rate_by_slots
            .iter()
            .filter_map(|(&s, e)| e.value().map(|v| (s, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn detector() -> ThrashingDetector {
        ThrashingDetector::new(SimDuration::from_secs(5), 2, 1, 1.0, 1.0)
    }

    #[test]
    fn healthy_increase_is_accepted() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(10));
        // inside stabilisation window: ignored
        assert_eq!(d.observe(4, 10.0, t(12), true), ThrashVerdict::Inconclusive);
        // stable and faster than before: healthy
        assert_eq!(d.observe(4, 120.0, t(16), true), ThrashVerdict::Healthy);
        assert_eq!(d.ceiling(), None);
    }

    #[test]
    fn two_suspicions_confirm() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(6));
        assert_eq!(d.observe(4, 90.0, t(12), true), ThrashVerdict::Suspected);
        assert_eq!(d.observe(4, 85.0, t(18), true), ThrashVerdict::Confirmed(3));
        assert_eq!(d.ceiling(), Some(3));
    }

    #[test]
    fn single_suspicion_recovers() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(6));
        assert_eq!(d.observe(4, 90.0, t(12), true), ThrashVerdict::Suspected);
        // second chance: rate recovered above the previous level
        assert_eq!(d.observe(4, 115.0, t(18), true), ThrashVerdict::Healthy);
        assert_eq!(d.ceiling(), None);
    }

    #[test]
    fn decrease_disarms_check() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 2, t(6));
        // lower rate at fewer slots is expected, not thrashing
        assert_eq!(d.observe(2, 70.0, t(12), true), ThrashVerdict::Inconclusive);
        assert_eq!(d.ceiling(), None);
    }

    #[test]
    fn no_baseline_no_verdict() {
        let mut d = detector();
        d.on_slot_change(3, 4, t(0));
        assert_eq!(d.observe(4, 50.0, t(10), true), ThrashVerdict::Inconclusive);
    }

    #[test]
    fn unsettled_observations_are_ignored() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(6));
        // rates measured while occupancy lags the target must not count
        for k in 0..10 {
            assert_eq!(
                d.observe(4, 1.0, t(12 + 6 * k), false),
                ThrashVerdict::Inconclusive
            );
        }
        assert_eq!(d.ceiling(), None);
        // once settled, the comparison proceeds normally
        assert_eq!(d.observe(4, 120.0, t(90), true), ThrashVerdict::Healthy);
    }

    #[test]
    fn reset_clears_ceiling() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(6));
        d.observe(4, 90.0, t(12), true);
        d.observe(4, 85.0, t(18), true);
        assert_eq!(d.ceiling(), Some(3));
        d.reset();
        assert_eq!(d.ceiling(), None);
        assert_eq!(d.rate_at(3), None);
    }

    #[test]
    fn confirmed_level_forgets_poisoned_rate() {
        let mut d = detector();
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(6));
        d.observe(4, 90.0, t(12), true);
        assert_eq!(d.observe(4, 80.0, t(18), true), ThrashVerdict::Confirmed(3));
        assert_eq!(d.rate_at(4), None, "poisoned estimate dropped");
        assert_eq!(d.rate_at(3), Some(100.0));
    }

    #[test]
    fn stabilisation_window_really_gates() {
        let mut d = ThrashingDetector::new(SimDuration::from_secs(30), 2, 1, 1.0, 1.0);
        d.observe(3, 100.0, t(0), true);
        d.on_slot_change(3, 4, t(10));
        for s in 11..39 {
            assert_eq!(d.observe(4, 1.0, t(s), true), ThrashVerdict::Inconclusive);
        }
        // at exactly since + stabilise, comparisons begin
        assert_eq!(d.observe(4, 1.0, t(40), true), ThrashVerdict::Suspected);
    }

    #[test]
    fn irregular_gaps_weight_observations_by_coverage() {
        // uniform spacing degenerates to the plain EWMA
        let mut uniform = ThrashingDetector::new(SimDuration::from_secs(5), 2, 1, 0.5, 1.0);
        for k in 0..4 {
            uniform.observe(3, [100.0, 80.0, 80.0, 80.0][k as usize], t(k * 10), true);
        }
        let mut plain = Ewma::new(0.5);
        for r in [100.0, 80.0, 80.0, 80.0] {
            plain.observe(r);
        }
        assert!((uniform.rate_at(3).unwrap() - plain.value().unwrap()).abs() < 1e-12);

        // a sample after a long quiet stretch pulls harder than one that
        // arrives right on the heels of its predecessor
        let mut long_gap = ThrashingDetector::new(SimDuration::from_secs(5), 2, 1, 0.5, 1.0);
        long_gap.observe(3, 100.0, t(0), true);
        long_gap.observe(3, 100.0, t(10), true);
        long_gap.observe(3, 80.0, t(50), true); // covers 40 s
        let mut short_gap = ThrashingDetector::new(SimDuration::from_secs(5), 2, 1, 0.5, 1.0);
        short_gap.observe(3, 100.0, t(0), true);
        short_gap.observe(3, 100.0, t(10), true);
        short_gap.observe(3, 80.0, t(11), true); // covers 1 s
        assert!(long_gap.rate_at(3).unwrap() < short_gap.rate_at(3).unwrap());
    }

    proptest::proptest! {
        /// The detector never confirms without at least `threshold` stable
        /// below-baseline observations in a row.
        #[test]
        fn prop_needs_threshold_consecutive(rates in proptest::collection::vec(0.0f64..200.0, 1..30)) {
            let mut d = detector();
            d.observe(3, 100.0, t(0), true);
            d.on_slot_change(3, 4, t(6));
            let mut consecutive = 0u32;
            let mut time = 12u64;
            for r in rates {
                let v = d.observe(4, r, t(time), true);
                time += 6;
                match v {
                    ThrashVerdict::Confirmed(_) => {
                        consecutive += 1;
                        proptest::prop_assert!(consecutive >= 2);
                        break;
                    }
                    ThrashVerdict::Suspected => consecutive += 1,
                    ThrashVerdict::Healthy => { break; } // check disarmed
                    ThrashVerdict::Inconclusive => {}
                }
            }
        }
    }
}

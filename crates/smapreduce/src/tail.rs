//! Tail-stretch slot switching (§III-B3).
//!
//! When the front stretch ends — no map tasks left to assign — fewer map
//! slots are needed; the manager shrinks the map target toward what the
//! still-running maps occupy and *may* grow the reduce target to speed up
//! the remaining reduces. Growth is guarded: "we will only increase the
//! reduce slots in the tail stretch when the job shuffle size is small",
//! because extra reduce slots mean extra copy threads that jam the network.

use mapreduce::stats::ClusterStats;

/// Is the workload in its tail stretch? True when every map task of every
/// active job has been assigned (the last wave is draining) — from then on
/// spare map slots can never be used.
pub fn in_tail_stretch(stats: &ClusterStats) -> bool {
    stats.total_maps > 0 && stats.pending_maps == 0
}

/// Map-slot target for the tail: just enough per-tracker slots to cover the
/// maps still running (never below `min_map_slots`, so a following job
/// finds slots to start on).
pub fn tail_map_target(stats: &ClusterStats, workers: usize, min_map_slots: usize) -> usize {
    let per_node = stats.running_maps.div_ceil(workers.max(1));
    per_node.max(min_map_slots)
}

/// Reduce-slot target for the tail. Grows by one over `current` when the
/// estimated shuffle per reduce is small (the jam guard) and there are
/// still reduces to place; otherwise holds.
pub fn tail_reduce_target(
    stats: &ClusterStats,
    workers: usize,
    current: usize,
    max_reduce_slots: usize,
    shuffle_per_reduce_max_mb: f64,
) -> usize {
    let waiting = stats.pending_reduces;
    if waiting == 0 {
        return current;
    }
    if stats.est_shuffle_per_reduce_mb > shuffle_per_reduce_max_mb {
        return current; // large shuffle: more copiers would jam the network
    }
    // grow one slot per decision, bounded by the cap and by what is useful
    let useful = (stats.running_reduces + waiting).div_ceil(workers.max(1));
    (current + 1).min(max_reduce_slots).min(useful.max(current))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pending_maps: usize, running_maps: usize) -> ClusterStats {
        ClusterStats {
            total_maps: 100,
            pending_maps,
            running_maps,
            completed_maps: 100 - pending_maps - running_maps,
            total_reduces: 30,
            pending_reduces: 10,
            running_reduces: 20,
            est_shuffle_per_reduce_mb: 50.0,
            ..ClusterStats::default()
        }
    }

    #[test]
    fn tail_detection() {
        assert!(!in_tail_stretch(&stats(5, 10)));
        assert!(in_tail_stretch(&stats(0, 10)));
        assert!(in_tail_stretch(&stats(0, 0)));
        // idle cluster (no jobs) is not "tail"
        assert!(!in_tail_stretch(&ClusterStats::default()));
    }

    #[test]
    fn map_target_covers_running_maps() {
        let s = stats(0, 9);
        assert_eq!(tail_map_target(&s, 4, 1), 3); // ceil(9/4)
        assert_eq!(tail_map_target(&stats(0, 0), 4, 1), 1); // floor at min
        assert_eq!(tail_map_target(&stats(0, 2), 4, 2), 2); // min wins
    }

    #[test]
    fn reduce_target_grows_when_shuffle_small() {
        let s = stats(0, 0);
        assert_eq!(tail_reduce_target(&s, 4, 2, 4, 256.0), 3);
        // capped at max
        assert_eq!(tail_reduce_target(&s, 4, 4, 4, 256.0), 4);
    }

    #[test]
    fn jam_guard_blocks_growth_for_big_shuffles() {
        let mut s = stats(0, 0);
        s.est_shuffle_per_reduce_mb = 2000.0;
        assert_eq!(tail_reduce_target(&s, 4, 2, 4, 256.0), 2);
    }

    #[test]
    fn no_waiting_reduces_no_growth() {
        let mut s = stats(0, 0);
        s.pending_reduces = 0;
        assert_eq!(tail_reduce_target(&s, 4, 2, 4, 256.0), 2);
    }

    #[test]
    fn growth_capped_by_usefulness() {
        let mut s = stats(0, 0);
        s.running_reduces = 2;
        s.pending_reduces = 1;
        // ceil(3/4) = 1 useful per node; current 2 already exceeds it
        assert_eq!(tail_reduce_target(&s, 4, 2, 4, 256.0), 2);
    }
}

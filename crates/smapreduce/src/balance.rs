//! Balancing map and shuffle throughput (§III-B1, §IV-A3).
//!
//! The slot manager estimates the map output rate of the partitions owned
//! by the *running* reduces, `R_m = (n/N)·R_t`, compares it to the achieved
//! shuffle rate `R_s` through the balance factor `f = R_s/R_m`, and
//! classifies the instant as map-heavy (`f` above the upper bound: shuffle
//! keeps up, push maps harder), reduce-heavy (`f` below the lower bound:
//! shuffle drowning, back off maps) or balanced.
//!
//! This module also encodes the paper's §III-B1 front-stretch time model,
//! used in tests to check the argument SMapReduce is built on and exported
//! for the analytical cross-checks in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Classification of the current balance state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceVerdict {
    /// Shuffle keeps up with map output: allocate more map slots.
    MapHeavy,
    /// Shuffle cannot keep up: shed map slots.
    ReduceHeavy,
    /// In the [lower, upper] band: the balanced state, do nothing.
    Balanced,
    /// No meaningful signal (no map output flowing, or no reduces running).
    Inconclusive,
}

/// Classify a balance factor against the configured bounds.
pub fn classify(f: Option<f64>, lower: f64, upper: f64) -> BalanceVerdict {
    debug_assert!(lower < upper);
    match f {
        None => BalanceVerdict::Inconclusive,
        Some(f) if f > upper => BalanceVerdict::MapHeavy,
        Some(f) if f < lower => BalanceVerdict::ReduceHeavy,
        Some(_) => BalanceVerdict::Balanced,
    }
}

/// §III-B1, matched case: when the shuffle rate can match the map output
/// rate the front stretch takes `t = M / T_m`.
pub fn front_stretch_matched(map_workload: f64, map_throughput: f64) -> f64 {
    assert!(map_throughput > 0.0);
    map_workload / map_throughput
}

/// §III-B1, unmatched case: shuffle left over after the barrier runs at
/// `T_r2`: `t = M/T_m + (R − (M/T_m)·T_r1) / T_r2`.
pub fn front_stretch_unmatched(
    map_workload: f64,
    map_throughput: f64,
    shuffle_workload: f64,
    shuffle_rate_during_maps: f64,
    shuffle_rate_after_maps: f64,
) -> f64 {
    assert!(map_throughput > 0.0 && shuffle_rate_after_maps > 0.0);
    let map_time = map_workload / map_throughput;
    let shuffled_during = map_time * shuffle_rate_during_maps;
    let residual = (shuffle_workload - shuffled_during).max(0.0);
    map_time + residual / shuffle_rate_after_maps
}

/// The paper's simplified form under the constant-total-throughput
/// assumption `T = T_m + T_r1` (resources shift between map and shuffle):
/// `t = (R+M)/T_r2 − (T − T_r2)·M / (T_m·T_r2)`.
pub fn front_stretch_simplified(
    map_workload: f64,
    map_throughput: f64,
    shuffle_workload: f64,
    total_throughput: f64,
    shuffle_rate_after_maps: f64,
) -> f64 {
    assert!(map_throughput > 0.0 && shuffle_rate_after_maps > 0.0);
    (shuffle_workload + map_workload) / shuffle_rate_after_maps
        - (total_throughput - shuffle_rate_after_maps) * map_workload
            / (map_throughput * shuffle_rate_after_maps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_bands() {
        assert_eq!(classify(None, 0.5, 0.9), BalanceVerdict::Inconclusive);
        assert_eq!(classify(Some(1.2), 0.5, 0.9), BalanceVerdict::MapHeavy);
        assert_eq!(classify(Some(0.3), 0.5, 0.9), BalanceVerdict::ReduceHeavy);
        assert_eq!(classify(Some(0.7), 0.5, 0.9), BalanceVerdict::Balanced);
        // boundary values are balanced (strict inequalities in the paper)
        assert_eq!(classify(Some(0.9), 0.5, 0.9), BalanceVerdict::Balanced);
        assert_eq!(classify(Some(0.5), 0.5, 0.9), BalanceVerdict::Balanced);
    }

    #[test]
    fn matched_case_is_inverse_in_throughput() {
        // map-heavy argument: faster maps => shorter front stretch
        let slow = front_stretch_matched(1000.0, 10.0);
        let fast = front_stretch_matched(1000.0, 20.0);
        assert!(fast < slow);
        assert!((slow - 100.0).abs() < 1e-12);
    }

    #[test]
    fn unmatched_reduces_to_matched_when_shuffle_keeps_up() {
        // if everything is shuffled by the time maps end, t = M/Tm
        let t = front_stretch_unmatched(1000.0, 10.0, 500.0, 10.0, 50.0);
        assert!((t - 100.0).abs() < 1e-12);
    }

    #[test]
    fn unmatched_adds_residual_shuffle_time() {
        // maps end at 100s having shuffled 100*2=200 of 500; residual 300
        // at 30 MB/s = 10s extra
        let t = front_stretch_unmatched(1000.0, 10.0, 500.0, 2.0, 30.0);
        assert!((t - 110.0).abs() < 1e-12);
    }

    #[test]
    fn papers_core_argument_slower_maps_help_reduce_heavy_jobs() {
        // Under the constant-total-throughput assumption T = Tm + Tr1:
        // decreasing Tm (shifting resources to shuffle) shortens the front
        // stretch while the shuffle is the bottleneck. This is the
        // paper's justification for *decrementing* map slots (§III-B1).
        let total = 60.0;
        let tr2 = 40.0;
        let (m, r) = (1000.0, 2000.0);
        let t_fast_maps = front_stretch_simplified(m, 50.0, r, total, tr2);
        let t_slow_maps = front_stretch_simplified(m, 30.0, r, total, tr2);
        assert!(
            t_slow_maps < t_fast_maps,
            "slower maps must shorten the unmatched front stretch: {t_slow_maps} vs {t_fast_maps}"
        );
    }

    #[test]
    fn simplified_equals_unmatched_under_assumption() {
        // with Tr1 = T - Tm the two formulations agree
        let (m, r, total, tr2) = (1200.0, 1800.0, 70.0, 45.0);
        for tm in [20.0_f64, 30.0, 40.0, 55.0] {
            let tr1 = total - tm;
            let a = front_stretch_unmatched(m, tm, r, tr1, tr2);
            let b = front_stretch_simplified(m, tm, r, total, tr2);
            // only equal while the residual is positive (unmatched regime)
            if r - (m / tm) * tr1 > 0.0 {
                assert!((a - b).abs() < 1e-9, "tm={tm}: {a} vs {b}");
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_classify_total(f in 0.0f64..5.0) {
            let v = classify(Some(f), 0.55, 0.88);
            let expected = if f > 0.88 { BalanceVerdict::MapHeavy }
                else if f < 0.55 { BalanceVerdict::ReduceHeavy }
                else { BalanceVerdict::Balanced };
            proptest::prop_assert_eq!(v, expected);
        }

        #[test]
        fn prop_matched_monotone(m in 1.0f64..1e6, tm1 in 0.1f64..1e3, dtm in 0.1f64..1e3) {
            let t1 = front_stretch_matched(m, tm1);
            let t2 = front_stretch_matched(m, tm1 + dtm);
            proptest::prop_assert!(t2 <= t1);
        }
    }
}

//! Configuration of the SMapReduce slot manager.

use serde::{Deserialize, Serialize};
use simgrid::time::SimDuration;

/// All knobs of the slot manager. Defaults follow the paper where it gives
/// values (10 % slow start, two suspected-thrashing chances) and otherwise
/// use values calibrated on the reproduction testbed; the Fig. 7 ablations
/// flip `detect_thrashing` / `slow_start_enabled`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmrConfig {
    /// Decision period of the slot-manager thread. The paper runs it
    /// "after every time period" long enough for all trackers to have
    /// reported; two heartbeats is the natural choice.
    pub period: SimDuration,
    /// Fraction of map tasks that must have completed before the manager
    /// starts acting (§IV-A1; default 10 %).
    pub slow_start_fraction: f64,
    /// Master switch for the slow-start gate (Fig. 7 ablation).
    pub slow_start_enabled: bool,
    /// Upper bound on the balance factor `f = R_s/R_m`: above it the
    /// shuffle is keeping up and the job is treated as map-heavy (§IV-A3).
    ///
    /// Note on calibration: `R_s` is the *achieved* fetch rate, so "keeping
    /// up" manifests as `f ≈ 1`, not `f ≫ 1`; the bound therefore sits just
    /// below 1.
    pub f_upper: f64,
    /// Lower bound on `f`: below it the shuffle cannot keep up
    /// (reduce-heavy).
    pub f_lower: f64,
    /// EWMA weight for smoothing the heartbeat rates before computing `f`.
    pub rate_alpha: f64,
    /// Horizon over which the balance rates `R_s`/`R_t` are averaged.
    /// Shuffle traffic is bursty (a completed map's output is fetched in
    /// one gulp), so `f` is only meaningful over several burst cycles.
    pub balance_window: SimDuration,
    /// Time the map rate is given to re-stabilise after a slot change
    /// before it may be used in thrashing comparisons (§IV-A2).
    pub stabilise: SimDuration,
    /// Consecutive suspected observations before thrashing is confirmed
    /// (§IV-A2: "give the system another chance" ⇒ 2).
    pub suspect_threshold: u32,
    /// Consecutive healthy observations accepting an increase (1: with
    /// settled-occupancy gating a single stable good window suffices, and
    /// climbing speed is what converts into map-heavy speedup).
    pub healthy_threshold: u32,
    /// EWMA weight of the detector's per-slot-count rate estimates (kept
    /// snappier than `rate_alpha`: each level sees few samples).
    pub detector_alpha: f64,
    /// Rate ratio under which a stable observation counts as suspected.
    pub suspect_margin: f64,
    /// Master switch for thrashing detection (Fig. 7 ablation).
    pub detect_thrashing: bool,
    /// Bounds on the per-tracker map slot target.
    pub min_map_slots: usize,
    pub max_map_slots: usize,
    /// Cap on the per-tracker reduce slot target (kept small: "a large
    /// number of reduce slots can cause network jam", §IV-A2).
    pub max_reduce_slots: usize,
    /// Master switch for tail-stretch map→reduce slot switching (§III-B3).
    pub tail_switching: bool,
    /// Grow reduce slots in the tail only when the estimated shuffle
    /// volume per reduce task is below this (MB) — the "job shuffle size
    /// is small" guard of §III-B3.
    pub tail_shuffle_per_reduce_max_mb: f64,
    /// Management overhead charged to a tracker per applied slot change
    /// (equivalent stall milliseconds) — the small cost visible on
    /// Terasort in Fig. 3.
    pub directive_overhead_ms: u64,
}

impl Default for SmrConfig {
    fn default() -> Self {
        SmrConfig {
            period: SimDuration::from_secs(6),
            slow_start_fraction: 0.10,
            slow_start_enabled: true,
            f_upper: 0.88,
            f_lower: 0.50,
            rate_alpha: 0.30,
            balance_window: SimDuration::from_secs(48),
            stabilise: SimDuration::from_secs(4),
            suspect_threshold: 2,
            healthy_threshold: 1,
            detector_alpha: 0.5,
            suspect_margin: 0.97,
            detect_thrashing: true,
            min_map_slots: 1,
            max_map_slots: 16,
            max_reduce_slots: 4,
            tail_switching: true,
            tail_shuffle_per_reduce_max_mb: 256.0,
            directive_overhead_ms: 25,
        }
    }
}

impl SmrConfig {
    /// The Fig. 7 "without detecting thrashing" ablation.
    pub fn without_thrashing_detection() -> SmrConfig {
        SmrConfig {
            detect_thrashing: false,
            ..SmrConfig::default()
        }
    }

    /// The Fig. 7 "without slow start" ablation.
    pub fn without_slow_start() -> SmrConfig {
        SmrConfig {
            slow_start_enabled: false,
            ..SmrConfig::default()
        }
    }

    /// Panics on nonsensical settings; called by the policy constructor.
    pub fn validate(&self) {
        assert!(self.period.as_millis() > 0, "period must be positive");
        assert!(
            (0.0..=1.0).contains(&self.slow_start_fraction),
            "slow-start fraction in [0,1]"
        );
        assert!(
            self.f_lower < self.f_upper,
            "balance bounds must satisfy lower < upper"
        );
        assert!(self.rate_alpha > 0.0 && self.rate_alpha <= 1.0);
        assert!(self.min_map_slots >= 1, "min map slots >= 1");
        assert!(
            self.min_map_slots <= self.max_map_slots,
            "map slot bounds inverted"
        );
        assert!(self.max_reduce_slots >= 1);
        assert!(self.suspect_threshold >= 1);
        assert!(self.healthy_threshold >= 1);
        assert!(self.detector_alpha > 0.0 && self.detector_alpha <= 1.0);
        assert!(self.suspect_margin > 0.0 && self.suspect_margin <= 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper_constants() {
        let c = SmrConfig::default();
        c.validate();
        assert!((c.slow_start_fraction - 0.10).abs() < 1e-12, "paper: 10%");
        assert_eq!(c.suspect_threshold, 2, "paper: one extra chance");
        assert!(c.detect_thrashing && c.slow_start_enabled && c.tail_switching);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!SmrConfig::without_thrashing_detection().detect_thrashing);
        assert!(SmrConfig::without_thrashing_detection().slow_start_enabled);
        assert!(!SmrConfig::without_slow_start().slow_start_enabled);
        assert!(SmrConfig::without_slow_start().detect_thrashing);
    }

    #[test]
    #[should_panic(expected = "lower < upper")]
    fn inverted_bounds_rejected() {
        let c = SmrConfig {
            f_lower: 1.0,
            f_upper: 0.5,
            ..SmrConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "min map slots")]
    fn zero_min_map_slots_rejected() {
        let c = SmrConfig {
            min_map_slots: 0,
            ..SmrConfig::default()
        };
        c.validate();
    }
}
